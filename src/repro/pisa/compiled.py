"""One-time lowering of placed unit bodies into execution plans.

The tree-walking interpreter (:mod:`repro.pisa.interp`) re-resolves
field keys, register instances, and hash seeds on every packet. This
module performs that resolution *once*, at :class:`~repro.pisa.pipeline.
Pipeline` construction, translating each placed unit's AST into a flat
tuple of Python closures:

* field keys (``meta.cms_index[2]``) are folded to strings at lowering
  time whenever the index is static — which it always is for unrolled
  elastic loops, since iteration variables were substituted as
  ``IntLit`` during instantiation — with a dynamic-key fallback;
* register references resolve to bound :class:`RegisterArray` methods;
* ``hash(seed, ...)`` calls with a static seed bind the concrete
  :class:`HashFunction` instance (shared with the pipeline's
  control-plane cache, so ``Pipeline.hash_value`` stays bit-identical);
* constant subexpressions fold through the same ALU semantics the
  interpreter uses;
* table applies precompile every declared action's body, binding action
  parameters positionally to the entry's action data.

Error behavior is preserved: constructs the interpreter would reject at
execution time (float literals, unknown register methods, unsupported
statements) lower to closures that raise the same
:class:`SimulationError` when — and only when — they actually run.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..lang import ast
from ..lang.pretty import pretty_expr
from .alu import apply_binary, apply_unary
from .hashing import MultiplyShiftHash
from .interp import SimulationError
from .plan import PipelinePlan, StagePlan, UnitPlan
from .registers import RegisterArray, RegisterError

__all__ = ["build_plan"]

_HASH_WIDTH = 1 << 32
_MASK32 = _HASH_WIDTH - 1
_MASK64 = (1 << 64) - 1
_MISSING = object()


def _specialize_hash(fn) -> Optional[Callable]:
    """Flatten a single-argument multiply-shift hash at width 2**32 into
    one function call (the splitmix64 finalizer inlined, the modulo
    strength-reduced to a mask). Bit-identical to
    ``fn(v, width=1 << 32)``; returns None for other hash kinds, which
    keep going through the generic ``__call__``."""
    if type(fn) is not MultiplyShiftHash:
        return None
    mult = fn._multiplier(0)
    addend = fn._addend

    def fast(v, _m=mult, _a=addend):
        acc = (_a + _m * (int(v) & _MASK64)) & _MASK64
        acc ^= acc >> 30
        acc = acc * 0xBF58476D1CE4E5B9 & _MASK64
        acc ^= acc >> 27
        acc = acc * 0x94D049BB133111EB & _MASK64
        acc ^= acc >> 31
        return acc & _MASK32

    return fast


# ---------------------------------------------------------------------------
# Static folding
# ---------------------------------------------------------------------------


class _NotStatic(Exception):
    """Internal: expression depends on per-packet state."""


def _fold(expr: ast.Expr, consts: dict[str, int],
          shadowed: dict[str, int] = {}) -> int:
    """Evaluate an expression made only of literals/consts; raises
    :class:`_NotStatic` otherwise. ``shadowed`` names (bound action
    params) are per-packet even when a same-named const exists. Mirrors
    the interpreter's semantics (every ALU op is total, so folding
    cannot change error behavior)."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return int(expr.value)
    if isinstance(expr, ast.Name):
        if expr.ident not in shadowed and expr.ident in consts:
            return consts[expr.ident]
        raise _NotStatic
    if isinstance(expr, ast.UnaryOp):
        return apply_unary(expr.op, _fold(expr.operand, consts, shadowed))
    if isinstance(expr, ast.BinaryOp):
        return apply_binary(
            expr.op,
            _fold(expr.left, consts, shadowed),
            _fold(expr.right, consts, shadowed),
        )
    if isinstance(expr, ast.Ternary):
        branch = (expr.if_true if _fold(expr.cond, consts, shadowed)
                  else expr.if_false)
        return _fold(branch, consts, shadowed)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.ident == "min":
            return min(_fold(a, consts, shadowed) for a in expr.args)
        if expr.func.ident == "max":
            return max(_fold(a, consts, shadowed) for a in expr.args)
    raise _NotStatic


def _const_expr(value: int) -> Callable:
    return lambda phv, local, args, _v=value: _v


def _raising_expr(message: str) -> Callable:
    def fail(phv, local, args, _m=message):
        raise SimulationError(_m)

    return fail


def _raising_step(message: str) -> Callable:
    def fail(phv, local, args, hits, _m=message):
        raise SimulationError(_m)

    return fail


def _field_reader(key: str) -> Callable:
    def read(phv, local, args, _k=key):
        value = local.get(_k, _MISSING)
        if value is _MISSING:
            return phv.get(_k, 0)
        return value

    return read


# ---------------------------------------------------------------------------
# The lowering context
# ---------------------------------------------------------------------------


class _Lowering:
    """Shared state for lowering one compiled program."""

    def __init__(self, consts, registers, tables, actions,
                 hash_fns, hash_factory):
        self.consts = consts
        self.registers = registers
        self.tables = tables
        self.actions = actions
        self.hash_fns = hash_fns
        self.hash_factory = hash_factory
        self._hash_fast: dict[int, Optional[Callable]] = {}
        #: action name -> (param count, step tuple); closures look this
        #: up at call time, so mutually recursive applies are fine.
        self.action_fns: dict[str, tuple[int, tuple]] = {}
        for name, decl in actions.items():
            self.action_fns[name] = self._compile_action(decl)

    # -- hashing ---------------------------------------------------------------
    def hash_fn(self, seed: int):
        """Resolve a static seed to the pipeline's shared hash instance."""
        fn = self.hash_fns.get(seed)
        if fn is None:
            fn = self.hash_factory(seed)
            self.hash_fns[seed] = fn
        return fn

    def fast_hash(self, seed: int) -> Optional[Callable]:
        """Per-seed cache over :func:`_specialize_hash`."""
        fast = self._hash_fast.get(seed, _MISSING)
        if fast is _MISSING:
            fast = _specialize_hash(self.hash_fn(seed))
            self._hash_fast[seed] = fast
        return fast

    # -- field keys ------------------------------------------------------------
    def field_key(self, expr: ast.Expr, scalars: dict[str, int]):
        """Resolve an lvalue/field reference to a key: a ``str`` when all
        indices are static, else a closure computing it per packet."""
        if not isinstance(expr, ast.Index):
            return pretty_expr(expr)
        base = self.field_key(expr.base, scalars)
        try:
            idx = _fold(expr.index, self.consts, scalars)
        except _NotStatic:
            idx = None
        if idx is not None and isinstance(base, str):
            return f"{base}[{idx}]"
        base_fn = base if callable(base) else _const_str(base)
        idx_fn = self.expr(expr.index, scalars)

        def key(phv, local, args, _b=base_fn, _i=idx_fn):
            return f"{_b(phv, local, args)}[{_i(phv, local, args)}]"

        return key

    def reader(self, key) -> Callable:
        """Compile a field read from a resolved key (str or closure)."""
        if isinstance(key, str):
            return _field_reader(key)

        def read(phv, local, args, _k=key):
            name = _k(phv, local, args)
            value = local.get(name, _MISSING)
            if value is _MISSING:
                return phv.get(name, 0)
            return value

        return read

    def writer(self, key) -> Callable:
        """Compile ``(phv, local, args, value) -> None`` for a key."""
        if isinstance(key, str):
            def write(phv, local, args, value, _k=key):
                local[_k] = value
        else:
            def write(phv, local, args, value, _k=key):
                local[_k(phv, local, args)] = value
        return write

    # -- registers -------------------------------------------------------------
    def register_array(self, expr: ast.Expr, scalars: dict[str, int]):
        """Resolve a register reference. Returns the concrete
        :class:`RegisterArray` when the instance is static and exists,
        else a closure resolving (and possibly failing) per packet."""
        if isinstance(expr, ast.Name):
            instance = f"{expr.ident}[0]"
        elif isinstance(expr, ast.Index) and isinstance(expr.base, ast.Name):
            try:
                idx = _fold(expr.index, self.consts, scalars)
            except _NotStatic:
                idx_fn = self.expr(expr.index, scalars)
                registers = self.registers

                def resolve(phv, local, args, _base=expr.base.ident, _i=idx_fn):
                    return registers.get(f"{_base}[{_i(phv, local, args)}]")

                return resolve
            instance = f"{expr.base.ident}[{idx}]"
        else:
            message = f"bad register reference: {pretty_expr(expr)}"

            def bad(phv, local, args, _m=message):
                raise SimulationError(_m)

            return bad
        try:
            return self.registers.get(instance)
        except RegisterError:
            registers = self.registers

            def late(phv, local, args, _n=instance):
                return registers.get(_n)  # raises RegisterError, as interp does

            return late

    # -- expressions -----------------------------------------------------------
    def expr(self, expr: ast.Expr, scalars: dict[str, int]) -> Callable:
        """Lower one expression to a closure ``(phv, local, args) -> int``."""
        if not isinstance(expr, (ast.Name,)) or expr.ident not in scalars:
            try:
                return _const_expr(_fold(expr, self.consts, scalars))
            except _NotStatic:
                pass
        if isinstance(expr, ast.FloatLit):
            return _raising_expr("float literals cannot appear in data-plane code")
        if isinstance(expr, ast.Name):
            if expr.ident in scalars:
                pos = scalars[expr.ident]
                return lambda phv, local, args, _p=pos: args[_p]
            return _field_reader(expr.ident)
        if isinstance(expr, (ast.Member, ast.Index)):
            return self.reader(self.field_key(expr, scalars))
        if isinstance(expr, ast.UnaryOp):
            operand = self.expr(expr.operand, scalars)
            if expr.op == "-":
                return lambda phv, local, args: -operand(phv, local, args)
            if expr.op == "~":
                return lambda phv, local, args: ~operand(phv, local, args)
            if expr.op == "!":
                return (lambda phv, local, args:
                        0 if operand(phv, local, args) else 1)
            op = expr.op
            return (lambda phv, local, args:
                    apply_unary(op, operand(phv, local, args)))
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, scalars)
        if isinstance(expr, ast.Ternary):
            cond = self.expr(expr.cond, scalars)
            if_true = self.expr(expr.if_true, scalars)
            if_false = self.expr(expr.if_false, scalars)
            return (lambda phv, local, args:
                    if_true(phv, local, args) if cond(phv, local, args)
                    else if_false(phv, local, args))
        if isinstance(expr, ast.Call):
            return self._call(expr, scalars)
        return _raising_expr(f"cannot evaluate {type(expr).__name__}")

    def _binary(self, expr: ast.BinaryOp, scalars) -> Callable:
        a = self.expr(expr.left, scalars)
        b = self.expr(expr.right, scalars)
        op = expr.op
        # Specialized closures keep the hot loop free of dict dispatch;
        # semantics match repro.pisa.alu exactly (including /0 == 0 and
        # the 64-bit shift clamp). Logical operators short-circuit.
        if op == "+":
            return lambda p, l, g: a(p, l, g) + b(p, l, g)
        if op == "-":
            return lambda p, l, g: a(p, l, g) - b(p, l, g)
        if op == "*":
            return lambda p, l, g: a(p, l, g) * b(p, l, g)
        if op == "&":
            return lambda p, l, g: a(p, l, g) & b(p, l, g)
        if op == "|":
            return lambda p, l, g: a(p, l, g) | b(p, l, g)
        if op == "^":
            return lambda p, l, g: a(p, l, g) ^ b(p, l, g)
        if op == "/":
            def div(p, l, g):
                rhs = b(p, l, g)
                return a(p, l, g) // rhs if rhs else 0
            return div
        if op == "%":
            def mod(p, l, g):
                rhs = b(p, l, g)
                return a(p, l, g) % rhs if rhs else 0
            return mod
        if op == "<<":
            return lambda p, l, g: a(p, l, g) << min(b(p, l, g), 64)
        if op == ">>":
            return lambda p, l, g: a(p, l, g) >> min(b(p, l, g), 64)
        if op == "==":
            return lambda p, l, g: 1 if a(p, l, g) == b(p, l, g) else 0
        if op == "!=":
            return lambda p, l, g: 1 if a(p, l, g) != b(p, l, g) else 0
        if op == "<":
            return lambda p, l, g: 1 if a(p, l, g) < b(p, l, g) else 0
        if op == ">":
            return lambda p, l, g: 1 if a(p, l, g) > b(p, l, g) else 0
        if op == "<=":
            return lambda p, l, g: 1 if a(p, l, g) <= b(p, l, g) else 0
        if op == ">=":
            return lambda p, l, g: 1 if a(p, l, g) >= b(p, l, g) else 0
        if op == "&&":
            return lambda p, l, g: 1 if a(p, l, g) and b(p, l, g) else 0
        if op == "||":
            return lambda p, l, g: 1 if a(p, l, g) or b(p, l, g) else 0
        return lambda p, l, g: apply_binary(op, a(p, l, g), b(p, l, g))

    def _call(self, call: ast.Call, scalars) -> Callable:
        func = call.func
        if isinstance(func, ast.Name):
            if func.ident == "hash":
                if not call.args:
                    return _raising_expr("hash() needs a seed argument")
                value_fns = tuple(self.expr(a, scalars) for a in call.args[1:])
                try:
                    seed = _fold(call.args[0], self.consts, scalars)
                except _NotStatic:
                    seed_fn = self.expr(call.args[0], scalars)
                    resolve = self.hash_fn

                    def dyn_hash(p, l, g, _s=seed_fn, _v=value_fns):
                        fn = resolve(_s(p, l, g))
                        return fn(*[v(p, l, g) for v in _v], width=_HASH_WIDTH)

                    return dyn_hash
                fn = self.hash_fn(seed)
                if len(value_fns) == 1:
                    v0 = value_fns[0]
                    fast = self.fast_hash(seed)
                    if fast is not None:
                        return (lambda p, l, g, _f=fast, _v=v0:
                                _f(_v(p, l, g)))
                    return (lambda p, l, g, _f=fn, _v=v0:
                            _f(_v(p, l, g), width=_HASH_WIDTH))

                def static_hash(p, l, g, _f=fn, _v=value_fns):
                    return _f(*[v(p, l, g) for v in _v], width=_HASH_WIDTH)

                return static_hash
            if func.ident == "min":
                fns = tuple(self.expr(a, scalars) for a in call.args)
                return lambda p, l, g: min(f(p, l, g) for f in fns)
            if func.ident == "max":
                fns = tuple(self.expr(a, scalars) for a in call.args)
                return lambda p, l, g: max(f(p, l, g) for f in fns)
        return _raising_expr(f"cannot evaluate call {pretty_expr(call)}")

    # -- statements ------------------------------------------------------------
    def stmt(self, stmt: ast.Stmt, scalars: dict[str, int]) -> Callable:
        """Lower one statement to a step ``(phv, local, args, hits)``."""
        if isinstance(stmt, ast.Assign):
            value_fn = self.expr(stmt.value, scalars)
            key = self.field_key(stmt.target, scalars)
            if isinstance(key, str):
                def assign(phv, local, args, hits, _k=key, _v=value_fn):
                    local[_k] = _v(phv, local, args)
            else:
                def assign(phv, local, args, hits, _k=key, _v=value_fn):
                    local[_k(phv, local, args)] = _v(phv, local, args)
            return assign
        if isinstance(stmt, ast.CallStmt):
            func = stmt.call.func
            if isinstance(func, ast.Member):
                if func.name == "apply" and isinstance(func.base, ast.Name):
                    return self.table_step(func.base.ident)
                return self._register_step(stmt.call, func, scalars)
        return _raising_step(
            f"cannot execute {type(stmt).__name__} in a unit body"
        )

    def _register_step(self, call: ast.Call, func: ast.Member,
                       scalars) -> Callable:
        # ``array`` is either a RegisterArray (static) or a resolver
        # closure; the per-method closures stay specialized for the
        # common static case.
        array = self.register_array(func.base, scalars)
        static = not callable(array)
        method = func.name
        arg = lambda i: self.expr(call.args[i], scalars)

        def dest(i):
            return self.writer(self.field_key(call.args[i], scalars))

        if method == "read":
            w, i = dest(0), arg(1)
            if static:
                return (lambda p, l, g, h, _w=w, _i=i, _a=array:
                        _w(p, l, g, _a.read(_i(p, l, g))))
            return (lambda p, l, g, h, _w=w, _i=i, _a=array:
                    _w(p, l, g, _a(p, l, g).read(_i(p, l, g))))
        if method == "write":
            i, v = arg(0), arg(1)
            if static:
                return (lambda p, l, g, h, _i=i, _v=v, _a=array:
                        _a.write(_i(p, l, g), _v(p, l, g)))
            return (lambda p, l, g, h, _i=i, _v=v, _a=array:
                    _a(p, l, g).write(_i(p, l, g), _v(p, l, g)))
        if method == "add":
            i, v = arg(0), arg(1)
            if static:
                add = array.add
                return (lambda p, l, g, h, _i=i, _v=v, _add=add:
                        _add(_i(p, l, g), _v(p, l, g)))
            return (lambda p, l, g, h, _i=i, _v=v, _a=array:
                    _a(p, l, g).add(_i(p, l, g), _v(p, l, g)))
        if method == "add_read":
            w, i, v = dest(0), arg(1), arg(2)
            if static:
                add = array.add
                return (lambda p, l, g, h, _w=w, _i=i, _v=v, _add=add:
                        _w(p, l, g, _add(_i(p, l, g), _v(p, l, g))))
            return (lambda p, l, g, h, _w=w, _i=i, _v=v, _a=array:
                    _w(p, l, g, _a(p, l, g).add(_i(p, l, g), _v(p, l, g))))
        if method == "max_update":
            i, v = arg(0), arg(1)
            if static:
                return (lambda p, l, g, h, _i=i, _v=v, _a=array:
                        _a.max_update(_i(p, l, g), _v(p, l, g)))
            return (lambda p, l, g, h, _i=i, _v=v, _a=array:
                    _a(p, l, g).max_update(_i(p, l, g), _v(p, l, g)))
        if method == "min_update":
            i, v = arg(0), arg(1)
            if static:
                return (lambda p, l, g, h, _i=i, _v=v, _a=array:
                        _a.min_update(_i(p, l, g), _v(p, l, g)))
            return (lambda p, l, g, h, _i=i, _v=v, _a=array:
                    _a(p, l, g).min_update(_i(p, l, g), _v(p, l, g)))
        if method == "swap":
            w, i, v = dest(0), arg(1), arg(2)
            if static:
                return (lambda p, l, g, h, _w=w, _i=i, _v=v, _a=array:
                        _w(p, l, g, _a.swap(_i(p, l, g), _v(p, l, g))))
            return (lambda p, l, g, h, _w=w, _i=i, _v=v, _a=array:
                    _w(p, l, g, _a(p, l, g).swap(_i(p, l, g), _v(p, l, g))))
        if method == "cond_add":
            i, c, v = arg(0), arg(1), arg(2)
            if static:
                return (lambda p, l, g, h, _i=i, _c=c, _v=v, _a=array:
                        _a.cond_add(_i(p, l, g), bool(_c(p, l, g)),
                                    _v(p, l, g)))
            return (lambda p, l, g, h, _i=i, _c=c, _v=v, _a=array:
                    _a(p, l, g).cond_add(_i(p, l, g), bool(_c(p, l, g)),
                                         _v(p, l, g)))
        if method == "cond_add_read":
            w, i, c, v = dest(0), arg(1), arg(2), arg(3)
            if static:
                return (lambda p, l, g, h, _w=w, _i=i, _c=c, _v=v, _a=array:
                        _w(p, l, g, _a.cond_add(_i(p, l, g),
                                                bool(_c(p, l, g)),
                                                _v(p, l, g))))
            return (lambda p, l, g, h, _w=w, _i=i, _c=c, _v=v, _a=array:
                    _w(p, l, g, _a(p, l, g).cond_add(_i(p, l, g),
                                                     bool(_c(p, l, g)),
                                                     _v(p, l, g))))
        return _raising_step(f"unknown register method {method!r}")

    # -- tables ----------------------------------------------------------------
    def table_step(self, table_name: str) -> Callable:
        table = self.tables.get(table_name)
        if table is None:
            # Interp fails with a KeyError at execution time; defer alike.
            tables = self.tables

            def missing(phv, local, args, hits, _n=table_name):
                tables[_n]  # raises KeyError

            return missing
        key_readers = tuple(_field_reader(k) for k in table.key_fields)
        action_fns = self.action_fns
        lookup = table.lookup

        def step(phv, local, args, hits, _n=table_name):
            key_values = [r(phv, local, args) for r in key_readers]
            result = lookup(key_values)
            hits[_n] = result.hit
            name = result.action
            if name is None or name == "NoAction":
                return
            entry = action_fns.get(name)
            if entry is None:
                raise SimulationError(
                    f"table {_n!r} selected unknown action {name!r}"
                )
            nparams, steps = entry
            data = result.action_data
            if len(data) != nparams:
                raise SimulationError(
                    f"action {name!r} expects {nparams} data values, "
                    f"entry carries {len(data)}"
                )
            bound = tuple(int(v) for v in data)
            for action_step in steps:
                action_step(phv, local, bound, hits)

        return step

    def _compile_action(self, decl: ast.ActionDecl) -> tuple[int, tuple]:
        scalars = {param.name: pos for pos, param in enumerate(decl.params)}
        steps = tuple(self.stmt(s, scalars) for s in decl.body.stmts)
        return (len(decl.params), steps)


def _const_str(value: str) -> Callable:
    return lambda phv, local, args, _v=value: _v


def _interp_fallback(pipeline, unit) -> Callable:
    """A step that defers one whole unit to the tree-walking interpreter."""
    from .interp import ExecContext, exec_unit_body

    instance = unit.instance

    def step(phv, local, args, hits):
        ctx = ExecContext(
            snapshot=phv,
            registers=pipeline.registers,
            tables=pipeline.tables,
            hash_fns=pipeline._hash_fns,
            hash_factory=pipeline._hash_factory,
            actions=pipeline.info.actions,
            consts=pipeline.info.consts,
        )
        ran = exec_unit_body(instance.body, instance.guard, instance.table, ctx)
        hits.update(ctx.table_hits)
        if ran:
            local.update(ctx.local_writes)

    return step


# ---------------------------------------------------------------------------
# Source codegen: the inline fast path
# ---------------------------------------------------------------------------


class _NotInlinable(Exception):
    """Internal: construct needs the generic closure tier."""


def _div(a: int, b: int) -> int:
    return a // b if b else 0


def _mod(a: int, b: int) -> int:
    return a % b if b else 0


_INLINE_ARITH = {"+", "-", "*", "&", "|", "^"}
_INLINE_CMP = {"==", "!=", "<", ">", "<=", ">="}
#: register method -> position of the PHV destination argument (or None)
_REG_METHODS = {
    "read": 0,
    "write": None,
    "add": None,
    "add_read": 0,
    "max_update": None,
    "min_update": None,
    "swap": 0,
    "cond_add": None,
    "cond_add_read": 0,
}


class _SourceGen:
    """Generates one ``compile()``-able function for the whole pipeline.

    Fully static stages — no table applies, no dynamic field keys or
    register indices, pairwise-disjoint write-sets — are inlined as
    straight-line Python: reads are dict lookups, commits are
    ``phv[key] = value & <literal mask>``, registers and hash units are
    pre-bound methods. Anything else compiles to a call into the closure
    plan's :meth:`~repro.pisa.plan.PipelinePlan.run_stage`.
    """

    def __init__(self, lowering: _Lowering, plan: PipelinePlan, pipeline,
                 skip: frozenset = frozenset()):
        self.low = lowering
        self.plan = plan
        self.pipeline = pipeline
        self.skip = skip                     # stages with interp fallbacks
        self.ns: dict[str, object] = {}
        self._bound: dict[tuple, str] = {}   # (id(obj), attr) -> name
        self._n = 0

    def _bind(self, obj, prefix: str) -> str:
        name = f"_{prefix}{self._n}"
        self._n += 1
        self.ns[name] = obj
        return name

    def _bind_method(self, array, method: str) -> str:
        key = (id(array), method)
        name = self._bound.get(key)
        if name is None:
            name = self._bind(getattr(array, method), "r")
            self._bound[key] = name
        return name

    def _bind_fn(self, fn) -> str:
        key = (id(fn), "fn")
        name = self._bound.get(key)
        if name is None:
            name = self._bind(fn, "f")
            self._bound[key] = name
        return name

    # -- expressions -----------------------------------------------------------
    def expr(self, expr: ast.Expr, env: dict[str, str]) -> str:
        """Emit a Python expression; ``env`` maps field keys written
        earlier in this unit to their local variable names."""
        try:
            return repr(_fold(expr, self.low.consts))
        except _NotStatic:
            pass
        if isinstance(expr, ast.Name):
            return self._read(expr.ident, env)
        if isinstance(expr, (ast.Member, ast.Index)):
            key = self.low.field_key(expr, {})
            if not isinstance(key, str):
                raise _NotInlinable
            return self._read(key, env)
        if isinstance(expr, ast.UnaryOp):
            a = self.expr(expr.operand, env)
            if expr.op == "-":
                return f"(-{a})"
            if expr.op == "~":
                return f"(~{a})"
            if expr.op == "!":
                return f"(0 if {a} else 1)"
            raise _NotInlinable
        if isinstance(expr, ast.BinaryOp):
            op = expr.op
            a = self.expr(expr.left, env)
            b = self.expr(expr.right, env)
            if op in _INLINE_ARITH:
                return f"({a} {op} {b})"
            if op in _INLINE_CMP:
                return f"(1 if {a} {op} {b} else 0)"
            if op == "&&":
                return f"(1 if {a} and {b} else 0)"
            if op == "||":
                return f"(1 if {a} or {b} else 0)"
            if op in ("<<", ">>"):
                return f"({a} {op} min({b}, 64))"
            if op in ("/", "%"):
                helper = self._bind_fn(_div if op == "/" else _mod)
                return f"{helper}({a}, {b})"
            raise _NotInlinable
        if isinstance(expr, ast.Ternary):
            c = self.expr(expr.cond, env)
            t = self.expr(expr.if_true, env)
            f = self.expr(expr.if_false, env)
            return f"({t} if {c} else {f})"
        if isinstance(expr, ast.Call):
            return self._call(expr, env)
        raise _NotInlinable

    def _read(self, key: str, env: dict[str, str]) -> str:
        var = env.get(key)
        if var is not None:
            return var
        return f"phv.get({key!r}, 0)"

    def _call(self, call: ast.Call, env: dict[str, str]) -> str:
        func = call.func
        if not isinstance(func, ast.Name):
            raise _NotInlinable
        if func.ident == "hash" and call.args:
            try:
                seed = _fold(call.args[0], self.low.consts)
            except _NotStatic:
                raise _NotInlinable from None
            fn = self.low.hash_fn(seed)
            values = [self.expr(a, env) for a in call.args[1:]]
            if len(values) == 1:
                fast = self.low.fast_hash(seed)
                if fast is not None:
                    return f"{self._bind_fn(fast)}({values[0]})"
            inner = ", ".join(values + [f"width={_HASH_WIDTH}"])
            return f"{self._bind_fn(fn)}({inner})"
        if func.ident in ("min", "max") and call.args:
            values = ", ".join(self.expr(a, env) for a in call.args)
            return f"{func.ident}({values})"
        raise _NotInlinable

    # -- units and stages ------------------------------------------------------
    def _unit_lines(self, uidx: int, inst,
                    writes: dict[str, str]) -> tuple[list[str], str]:
        """Emit one unit's body; fills ``writes`` (key -> local var) and
        returns (lines, ran-flag expression or "")."""
        if inst.table is not None:
            raise _NotInlinable
        counter = [0]
        tcounter = [0]

        def var_for(target) -> str:
            key = self.low.field_key(target, {})
            if not isinstance(key, str) or key not in self.plan.masks:
                raise _NotInlinable
            var = writes.get(key)
            if var is None:
                var = f"u{uidx}_v{counter[0]}"
                counter[0] += 1
                writes[key] = var
            return var

        def temp() -> str:
            var = f"u{uidx}_t{tcounter[0]}"
            tcounter[0] += 1
            return var

        env = writes  # reads resolve against this unit's earlier writes
        body: list[str] = []
        for stmt in inst.body:
            if isinstance(stmt, ast.Assign):
                value = self.expr(stmt.value, env)
                body.append(f"{var_for(stmt.target)} = {value}")
                continue
            if not (isinstance(stmt, ast.CallStmt)
                    and isinstance(stmt.call.func, ast.Member)):
                raise _NotInlinable
            call, func = stmt.call, stmt.call.func
            if func.name not in _REG_METHODS:
                raise _NotInlinable
            array = self.low.register_array(func.base, {})
            if callable(array):           # dynamic or unresolved instance
                raise _NotInlinable
            dest_pos = _REG_METHODS[func.name]
            method = func.name
            # The counter-increment op dominates sketch workloads; open-code
            # it (same read-add-write as RegisterArray.add, literal mask and
            # modulo) instead of paying two calls per packet.
            if (method in ("add", "add_read")
                    and type(array) is RegisterArray):
                base = 1 if method == "add_read" else 0
                try:
                    idx = self.expr(call.args[base], env)
                    amount = self.expr(call.args[base + 1], env)
                except IndexError:
                    raise _NotInlinable from None
                data = self._bind_method(array, "_data")
                slot = temp()
                body.append(f"{slot} = ({idx}) % {array.cells}")
                update = f"(int({data}[{slot}]) + ({amount})) & {array.mask}"
                if method == "add_read":
                    var = var_for(call.args[0])
                    body.append(f"{var} = {update}")
                    body.append(f"{data}[{slot}] = {var}")
                else:
                    body.append(f"{data}[{slot}] = {update}")
                continue
            if method == "add_read":
                method = "add"
            elif method == "cond_add_read":
                method = "cond_add"
            bound = self._bind_method(array, method)
            try:
                if func.name == "read":
                    call_src = f"{bound}({self.expr(call.args[1], env)})"
                elif func.name in ("cond_add", "cond_add_read"):
                    base = 1 if func.name == "cond_add_read" else 0
                    idx = self.expr(call.args[base], env)
                    cond = self.expr(call.args[base + 1], env)
                    amount = self.expr(call.args[base + 2], env)
                    call_src = f"{bound}({idx}, bool({cond}), {amount})"
                else:
                    base = 1 if dest_pos == 0 else 0
                    idx = self.expr(call.args[base], env)
                    value = self.expr(call.args[base + 1], env)
                    call_src = f"{bound}({idx}, {value})"
            except IndexError:
                raise _NotInlinable from None
            if dest_pos is None:
                body.append(call_src)
            else:
                body.append(f"{var_for(call.args[dest_pos])} = {call_src}")
        ran = ""
        if inst.guard is not None:
            ran = self.expr(inst.guard, {})
        return body, ran

    def _stage_lines(self, splan: StagePlan, units) -> list[str]:
        """Inline one stage, or raise :class:`_NotInlinable`."""
        emitted = []                     # (uidx, body, ran_expr, writes)
        for uidx, unit in enumerate(units):
            writes: dict[str, str] = {}
            body, ran = self._unit_lines(uidx, unit.instance, writes)
            emitted.append((uidx, body, ran, writes))
        # Overlapping write-sets need the generic tier's conflict check.
        seen: set[str] = set()
        for _, _, _, writes in emitted:
            if seen & writes.keys():
                raise _NotInlinable
            seen |= writes.keys()
        lines: list[str] = [f"# stage {splan.stage}"]
        for uidx, body, ran, writes in emitted:
            if not body:
                continue
            if ran:
                lines.append(f"u{uidx}_ran = 1 if {ran} else 0")
                lines.append(f"if u{uidx}_ran:")
                lines.extend(f"    {line}" for line in body)
            else:
                lines.extend(body)
        # All commits after all bodies: stage-entry read semantics.
        for uidx, body, ran, writes in emitted:
            if not writes:
                continue
            indent = ""
            if ran:
                lines.append(f"if u{uidx}_ran:")
                indent = "    "
            for key, var in writes.items():
                mask = self.plan.masks[key]
                lines.append(f"{indent}phv[{key!r}] = {var} & {mask}")
        return lines

    def build(self):
        """Generate and compile the fast-path function, or return None
        when nothing is inlinable (the closure plan runs as-is)."""
        body: list[str] = []
        inlined = 0
        runner = self._bind(self.plan.run_stage, "stage")
        for splan in self.plan.stages:
            units = self.pipeline._stage_units[splan.stage]
            try:
                if splan.stage in self.skip:
                    raise _NotInlinable   # unit(s) lowered via interp fallback
                body.extend(self._stage_lines(splan, units))
                inlined += 1
            except _NotInlinable:
                sp = self._bind(splan, "plan")
                body.append(f"# stage {splan.stage}: generic tier")
                body.append(f"{runner}({sp}, phv, hits)")
        if not inlined:
            return None, ""
        if not body:
            body = ["pass"]
        source = "\n".join(
            ["def _fast_run(phv, hits):"] + [f"    {line}" for line in body]
        )
        code = compile(source, "<pisa-execution-plan>", "exec")
        namespace = dict(self.ns)
        exec(code, namespace)
        return namespace["_fast_run"], source


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_plan(pipeline) -> PipelinePlan:
    """Lower a pipeline's placed program into a :class:`PipelinePlan`.

    Called once from ``Pipeline.__init__`` (engine ``"compiled"``); the
    result shares the pipeline's register file, tables, and hash-function
    cache, so control-plane mutations (table entries, register writes)
    are visible to already-compiled closures with no re-lowering.
    """
    lowering = _Lowering(
        consts=pipeline.info.consts,
        registers=pipeline.registers,
        tables=pipeline.tables,
        actions=pipeline.info.actions,
        hash_fns=pipeline._hash_fns,
        hash_factory=pipeline._hash_factory,
    )
    # Module attribution (for the plan-level taint pass) — local import:
    # analysis imports pisa.resources, so a top-level import would cycle.
    from ..analysis.ir import module_of_instance

    namespace = getattr(pipeline.info, "namespace", None)
    plan = PipelinePlan(masks=pipeline.phv_layout.width_masks())
    no_scalars: dict[str, int] = {}
    fallback_stages: set[int] = set()
    for stage, units in enumerate(pipeline._stage_units):
        if not units:
            continue
        unit_plans = []
        for unit in units:
            inst = unit.instance
            try:
                guard = (lowering.expr(inst.guard, no_scalars)
                         if inst.guard is not None else None)
                if inst.table is not None:
                    steps: tuple = (lowering.table_step(inst.table),)
                else:
                    steps = tuple(
                        lowering.stmt(s, no_scalars) for s in inst.body
                    )
            except Exception:
                # Escape hatch: anything the lowerer cannot handle runs
                # through the reference interpreter, unit-by-unit, with
                # identical snapshot/commit semantics.
                guard, steps = None, (_interp_fallback(pipeline, unit),)
                fallback_stages.add(stage)
            unit_plans.append(UnitPlan(
                label=unit.label,
                guard=guard,
                steps=steps,
                reads=frozenset(inst.reads),
                writes=frozenset(inst.writes),
                registers=frozenset(f for f, _ in inst.registers),
                module=(module_of_instance(inst, namespace)
                        if namespace is not None else None),
            ))
        plan.stages.append(StagePlan(
            stage=stage,
            units=tuple(unit_plans),
            reads=frozenset().union(*(u.reads for u in unit_plans)),
            writes=frozenset().union(*(u.writes for u in unit_plans)),
        ))
    # Second tier: inline fully static stages into one generated function.
    try:
        gen = _SourceGen(lowering, plan, pipeline,
                         skip=frozenset(fallback_stages))
        plan.fast_run, plan.fast_source = gen.build()
    except Exception:
        # Codegen is an optimization; the closure plan is always valid.
        plan.fast_run, plan.fast_source = None, ""
    return plan
