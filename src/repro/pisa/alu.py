"""Stateless ALU operation semantics.

Centralizes the arithmetic the pipeline interpreter uses so that width
masking and unsigned wraparound behave identically everywhere. All
operands are Python ints treated as unsigned; ``width`` masking is applied
by the caller (PHV writes mask on store).
"""

from __future__ import annotations

__all__ = ["BINARY_OPS", "UNARY_OPS", "apply_binary", "apply_unary", "AluError"]


class AluError(Exception):
    """Unknown operation or invalid operand."""


def _logical(value: bool) -> int:
    return 1 if value else 0


BINARY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if b else 0,   # hardware saturates; we define /0 = 0
    "%": lambda a, b: a % b if b else 0,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << min(b, 64),
    ">>": lambda a, b: a >> min(b, 64),
    "==": lambda a, b: _logical(a == b),
    "!=": lambda a, b: _logical(a != b),
    "<": lambda a, b: _logical(a < b),
    ">": lambda a, b: _logical(a > b),
    "<=": lambda a, b: _logical(a <= b),
    ">=": lambda a, b: _logical(a >= b),
    "&&": lambda a, b: _logical(bool(a) and bool(b)),
    "||": lambda a, b: _logical(bool(a) or bool(b)),
}

UNARY_OPS = {
    "-": lambda a: -a,
    "!": lambda a: _logical(not a),
    "~": lambda a: ~a,
}


def apply_binary(op: str, left: int, right: int) -> int:
    """Apply a binary ALU op to unsigned operands (result unmasked)."""
    try:
        fn = BINARY_OPS[op]
    except KeyError:
        raise AluError(f"unknown binary op {op!r}") from None
    return fn(int(left), int(right))


def apply_unary(op: str, operand: int) -> int:
    """Apply a unary ALU op (result unmasked)."""
    try:
        fn = UNARY_OPS[op]
    except KeyError:
        raise AluError(f"unknown unary op {op!r}") from None
    return fn(int(operand))
