"""Execution-plan IR for the compiled pipeline engine.

A :class:`PipelinePlan` is what the one-time lowering pass in
:mod:`repro.pisa.compiled` produces from a placed program: per stage, a
flat list of :class:`UnitPlan` closures with every static decision —
field keys, register instances, hash seeds, constant subexpressions,
guard predicates — already resolved, so the per-packet hot loop does no
AST walking, no name resolution, and no full-PHV snapshots.

Closure calling conventions (shared with :mod:`compiled`):

* expression: ``fn(phv, local, args) -> int`` — ``phv`` is the committed
  PHV dict (read-only during a stage), ``local`` the unit's buffered
  writes, ``args`` the bound action-data tuple (``()`` at unit level);
* step (statement): ``fn(phv, local, args, hits) -> None`` — ``hits``
  collects per-packet table-hit flags.

Stage semantics are preserved without copying: commits are deferred to
stage exit, so reads against the live ``phv`` dict during a stage *are*
stage-entry reads. The per-stage read/write sets (lifted from the
dependency analysis) document exactly which fields a stage touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .interp import SimulationError
from .phv import PhvError

__all__ = ["UnitPlan", "StagePlan", "PipelinePlan", "plan_taint"]


@dataclass(frozen=True)
class UnitPlan:
    """One placed unit lowered to closures."""

    label: str
    guard: Optional[Callable]        # predicate or None (always runs)
    steps: tuple                     # step closures, in statement order
    reads: frozenset = frozenset()   # static read-set (field keys)
    writes: frozenset = frozenset()  # static write-set (field keys)
    registers: frozenset = frozenset()  # touched register families
    module: Optional[str] = None     # owning module (linked programs)


@dataclass(frozen=True)
class StagePlan:
    """All units of one (non-empty) stage plus its touched-field sets."""

    stage: int
    units: tuple
    reads: frozenset = frozenset()
    writes: frozenset = frozenset()


@dataclass
class PipelinePlan:
    """The compiled program's per-stage execution plan.

    Two execution tiers share this structure:

    * :meth:`run` walks the closure plan — the generic tier, able to
      execute anything the interpreter can;
    * ``fast_run``, when set by the lowering pass, is a
      ``compile()``-generated function that inlines every fully static
      stage (direct dict operations, literal width masks, bound
      register/hash methods) and calls back into :meth:`run_stage` for
      stages with table applies, dynamic keys, or potentially
      conflicting write-sets. ``fast_source`` keeps the generated code
      for inspection.
    """

    stages: list[StagePlan] = field(default_factory=list)
    masks: dict[str, int] = field(default_factory=dict)  # field key -> width mask
    fast_run: Optional[Callable] = field(default=None, repr=False)
    fast_source: str = field(default="", repr=False)

    def run(self, phv: dict, hits: dict) -> None:
        """Execute one packet: mutate ``phv`` in place, record ``hits``.

        Matches the interpreter's snapshot/commit semantics exactly:
        every unit reads stage-entry values (the live dict, since
        commits are deferred), writes buffer in a unit-local dict (a
        unit's later statements see its earlier writes, unmasked), and
        conflicting same-stage writes raise :class:`SimulationError`.
        """
        for splan in self.stages:
            self.run_stage(splan, phv, hits)

    def run_stage(self, splan: StagePlan, phv: dict, hits: dict) -> None:
        """Execute one stage of the closure plan (the generic tier)."""
        masks = self.masks
        units = splan.units
        if len(units) == 1:
            unit = units[0]
            local: dict = {}
            if unit.guard is not None and not unit.guard(phv, local, ()):
                return
            for step in unit.steps:
                step(phv, local, (), hits)
            for key, value in local.items():
                mask = masks.get(key)
                if mask is None:
                    raise PhvError(f"PHV field {key!r} was never allocated")
                phv[key] = int(value) & mask
            return
        commits: dict = {}
        owners: dict = {}
        for unit in units:
            local = {}
            if unit.guard is not None and not unit.guard(phv, local, ()):
                continue
            for step in unit.steps:
                step(phv, local, (), hits)
            for key, value in local.items():
                if key in commits:
                    if commits[key] != value:
                        raise SimulationError(
                            f"stage {splan.stage}: units {owners[key]!r} and "
                            f"{unit.label!r} write different values to {key!r}"
                        )
                else:
                    commits[key] = value
                    owners[key] = unit.label
        for key, value in commits.items():
            mask = masks.get(key)
            if mask is None:
                raise PhvError(f"PHV field {key!r} was never allocated")
            phv[key] = int(value) & mask

    def taint_map(self, register_owner: dict, app_module: str = "(app)"):
        """Plan-level taint labels (see :func:`plan_taint`)."""
        units = [u for splan in self.stages for u in splan.units]
        return plan_taint(units, register_owner, app_module)

    def describe(self) -> str:
        """Human-readable plan summary (stages, units, touched fields)."""
        fast = " (codegen fast path active)" if self.fast_run is not None else ""
        lines = [f"execution plan: {len(self.stages)} active stages{fast}"]
        for splan in self.stages:
            lines.append(
                f"  stage {splan.stage}: "
                + ", ".join(u.label for u in splan.units)
            )
            if splan.reads:
                lines.append(f"    reads:  {', '.join(sorted(splan.reads))}")
            if splan.writes:
                lines.append(f"    writes: {', '.join(sorted(splan.writes))}")
        return "\n".join(lines)


def plan_taint(
    units,
    register_owner: dict,
    app_module: str = "(app)",
) -> tuple[dict, dict]:
    """Module-taint fixpoint over lowered plan units.

    An independent re-implementation of the depgraph-level pass in
    :mod:`repro.analysis.taint`, written against the execution-plan IR
    (``module``/``reads``/``writes``/``registers`` on each unit) instead
    of the elaborated action instances. The compiler driver cross-checks
    the two: because both are monotone may-analyses over a finite
    lattice, chaotic iteration converges to the same least fixpoint, so
    any disagreement means lowering changed the dataflow — a bug worth
    failing the compile over.

    ``units`` is any iterable of objects with ``module`` (owning module
    name or ``None``), ``reads``/``writes`` (PHV field keys), and
    ``registers`` (register family names). ``register_owner`` maps
    family name to owning module. Returns ``(field_taint,
    register_taint)`` with only non-empty label sets.
    """
    units = list(units)
    field_taint: dict[str, frozenset] = {}
    register_taint: dict[str, frozenset] = {}
    for family, owner in register_owner.items():
        if owner != app_module:
            register_taint[family] = frozenset((owner,))

    changed = True
    while changed:
        changed = False
        for unit in units:
            module = unit.module
            if module is None or module == app_module:
                continue  # app glue declassifies
            carried = {module}
            for key in unit.reads:
                carried |= field_taint.get(key, frozenset())
            for family in unit.registers:
                carried |= register_taint.get(family, frozenset())
            for key in unit.writes:
                have = field_taint.get(key, frozenset())
                if not carried <= have:
                    field_taint[key] = have | carried
                    changed = True
            for family in unit.registers:
                have = register_taint.get(family, frozenset())
                if not carried <= have:
                    register_taint[family] = have | carried
                    changed = True
    return (
        {k: v for k, v in field_taint.items() if v},
        {k: v for k, v in register_taint.items() if v},
    )
