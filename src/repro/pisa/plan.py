"""Execution-plan IR for the compiled pipeline engine.

A :class:`PipelinePlan` is what the one-time lowering pass in
:mod:`repro.pisa.compiled` produces from a placed program: per stage, a
flat list of :class:`UnitPlan` closures with every static decision —
field keys, register instances, hash seeds, constant subexpressions,
guard predicates — already resolved, so the per-packet hot loop does no
AST walking, no name resolution, and no full-PHV snapshots.

Closure calling conventions (shared with :mod:`compiled`):

* expression: ``fn(phv, local, args) -> int`` — ``phv`` is the committed
  PHV dict (read-only during a stage), ``local`` the unit's buffered
  writes, ``args`` the bound action-data tuple (``()`` at unit level);
* step (statement): ``fn(phv, local, args, hits) -> None`` — ``hits``
  collects per-packet table-hit flags.

Stage semantics are preserved without copying: commits are deferred to
stage exit, so reads against the live ``phv`` dict during a stage *are*
stage-entry reads. The per-stage read/write sets (lifted from the
dependency analysis) document exactly which fields a stage touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .interp import SimulationError
from .phv import PhvError

__all__ = ["UnitPlan", "StagePlan", "PipelinePlan"]


@dataclass(frozen=True)
class UnitPlan:
    """One placed unit lowered to closures."""

    label: str
    guard: Optional[Callable]        # predicate or None (always runs)
    steps: tuple                     # step closures, in statement order
    reads: frozenset = frozenset()   # static read-set (field keys)
    writes: frozenset = frozenset()  # static write-set (field keys)


@dataclass(frozen=True)
class StagePlan:
    """All units of one (non-empty) stage plus its touched-field sets."""

    stage: int
    units: tuple
    reads: frozenset = frozenset()
    writes: frozenset = frozenset()


@dataclass
class PipelinePlan:
    """The compiled program's per-stage execution plan.

    Two execution tiers share this structure:

    * :meth:`run` walks the closure plan — the generic tier, able to
      execute anything the interpreter can;
    * ``fast_run``, when set by the lowering pass, is a
      ``compile()``-generated function that inlines every fully static
      stage (direct dict operations, literal width masks, bound
      register/hash methods) and calls back into :meth:`run_stage` for
      stages with table applies, dynamic keys, or potentially
      conflicting write-sets. ``fast_source`` keeps the generated code
      for inspection.
    """

    stages: list[StagePlan] = field(default_factory=list)
    masks: dict[str, int] = field(default_factory=dict)  # field key -> width mask
    fast_run: Optional[Callable] = field(default=None, repr=False)
    fast_source: str = field(default="", repr=False)

    def run(self, phv: dict, hits: dict) -> None:
        """Execute one packet: mutate ``phv`` in place, record ``hits``.

        Matches the interpreter's snapshot/commit semantics exactly:
        every unit reads stage-entry values (the live dict, since
        commits are deferred), writes buffer in a unit-local dict (a
        unit's later statements see its earlier writes, unmasked), and
        conflicting same-stage writes raise :class:`SimulationError`.
        """
        for splan in self.stages:
            self.run_stage(splan, phv, hits)

    def run_stage(self, splan: StagePlan, phv: dict, hits: dict) -> None:
        """Execute one stage of the closure plan (the generic tier)."""
        masks = self.masks
        units = splan.units
        if len(units) == 1:
            unit = units[0]
            local: dict = {}
            if unit.guard is not None and not unit.guard(phv, local, ()):
                return
            for step in unit.steps:
                step(phv, local, (), hits)
            for key, value in local.items():
                mask = masks.get(key)
                if mask is None:
                    raise PhvError(f"PHV field {key!r} was never allocated")
                phv[key] = int(value) & mask
            return
        commits: dict = {}
        owners: dict = {}
        for unit in units:
            local = {}
            if unit.guard is not None and not unit.guard(phv, local, ()):
                continue
            for step in unit.steps:
                step(phv, local, (), hits)
            for key, value in local.items():
                if key in commits:
                    if commits[key] != value:
                        raise SimulationError(
                            f"stage {splan.stage}: units {owners[key]!r} and "
                            f"{unit.label!r} write different values to {key!r}"
                        )
                else:
                    commits[key] = value
                    owners[key] = unit.label
        for key, value in commits.items():
            mask = masks.get(key)
            if mask is None:
                raise PhvError(f"PHV field {key!r} was never allocated")
            phv[key] = int(value) & mask

    def describe(self) -> str:
        """Human-readable plan summary (stages, units, touched fields)."""
        fast = " (codegen fast path active)" if self.fast_run is not None else ""
        lines = [f"execution plan: {len(self.stages)} active stages{fast}"]
        for splan in self.stages:
            lines.append(
                f"  stage {splan.stage}: "
                + ", ".join(u.label for u in splan.units)
            )
            if splan.reads:
                lines.append(f"    reads:  {', '.join(sorted(splan.reads))}")
            if splan.writes:
                lines.append(f"    writes: {', '.join(sorted(splan.writes))}")
        return "\n".join(lines)
