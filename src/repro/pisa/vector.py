"""Columnar (struct-of-arrays) batch execution: the ``vector`` engine.

The compiled engine (:mod:`repro.pisa.compiled`) removed per-packet AST
walking but still pushes one packet at a time through Python frames. A
PISA stage is data-parallel by construction — the same stage program
applies independently to every packet — so this module lowers each
placed unit *once more*, from its AST into whole-batch numpy kernels:

* the PHV becomes a struct-of-arrays batch (:class:`PhvBatch`): one
  ``int64`` column per field plus a presence mask, values always stored
  post-width-mask;
* expressions evaluate in the signed-``int64`` domain with static range
  tracking — any subexpression whose value range could leave ``int64``
  (or any construct the lowering cannot prove total) demotes the whole
  stage to a *scalar island*;
* ``hash(seed, ...)`` vectorizes through
  :meth:`~repro.pisa.hashing.MultiplyShiftHash.vector_multi` (uint64
  wraparound, bit-identical to the scalar finalizer);
* register operations become gather/scatter kernels that reproduce the
  *sequential* per-packet semantics exactly, including same-key
  collisions inside one batch: ``add``/``cond_add`` use ``np.add.at``
  (commutative mod :math:`2^{64}`), ``add_read`` a segmented prefix sum
  over index-sorted lanes, ``swap`` a group-chained shift, ``write``
  last-writer-wins dedup, ``max/min_update`` ``np.maximum.at``;
* single-exact-key table applies use a sorted-key ``searchsorted``
  cache (invalidated by :attr:`MatchActionTable.version`); entries
  whose actions cannot be vectorized trigger a per-batch
  :class:`_VectorBail` — the stage re-runs on the scalar plan.

Mixed-mode execution: vector stages feed scalar islands and resume.
Islands materialize per-packet dicts, run the compiled closure plan's
:meth:`~repro.pisa.plan.PipelinePlan.run_stage`, and scatter the dicts
back into columns — bit-for-bit the scalar semantics, paid only for
stages the static analysis rejects (intra-batch same-register hazards
across steps, dynamic keys, unsupported constructs, 64-bit fields).

Safety of stage-at-a-time reordering rests on the pipeline invariant
that a register lives in (and is only touched from) exactly one stage;
:class:`VectorPlan` re-checks it and refuses to vectorize otherwise.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..lang import ast
from .compiled import _REG_METHODS, _Lowering, _NotStatic, _fold
from .hashing import MultiplyShiftHash
from .interp import SimulationError
from .registers import RegisterArray

__all__ = ["VectorPlan", "PhvBatch"]

_MASK64 = (1 << 64) - 1
#: int64 domain, excluding INT64_MIN for negation/abs headroom.
_I64_MAX = (1 << 63) - 1
_I64_MIN = -_I64_MAX
#: Action-data values assumed in range by the static analysis; entries
#: carrying anything else flip the per-batch scalar bail instead.
_ACTION_DATA_MAX = (1 << 31) - 1
_HASH_WIDTH = 1 << 32
_ZERO = np.int64(0)
_ADDITIVE_METHODS = frozenset({"add", "add_read", "cond_add", "cond_add_read"})


class _NotVectorizable(Exception):
    """Static: this stage needs the scalar engine (becomes an island)."""


class _VectorBail(Exception):
    """Runtime: discard this stage's buffered work, re-run it scalar.

    Only raised before any register mutation of the stage (statically
    guaranteed: stages with table applies carry no register-mutating
    steps), so the island re-run sees untouched state.
    """


def _as_array(value, n: int) -> np.ndarray:
    """Broadcast a scalar kernel result to a full batch column."""
    if np.ndim(value) == 0:
        return np.full(n, value, dtype=np.int64)
    return value


def _check_range(lo: int, hi: int) -> tuple[int, int]:
    if lo < _I64_MIN or hi > _I64_MAX:
        raise _NotVectorizable(f"value range [{lo}, {hi}] leaves int64")
    return lo, hi


def _bit_range(alo, ahi, blo, bhi) -> tuple[int, int]:
    """Sound range for ``&``/``|``/``^`` (int64 two's complement is exact
    for any in-range operands, so only a covering bound is needed)."""
    m = max(abs(alo), abs(ahi), abs(blo), abs(bhi))
    bound = (1 << m.bit_length()) - 1
    if alo >= 0 and blo >= 0:
        return (0, bound)
    return (-bound - 1, bound)


class PhvBatch:
    """Struct-of-arrays PHV: one int64 column per field, post-mask values.

    ``present`` tracks which lanes carry the field at all (scalar engines
    materialize per-packet dicts containing only loaded + committed
    keys, and the differential suite compares those dicts exactly).
    Columns hold 0 in non-present lanes, so reads never consult the
    presence mask — ``phv.get(key, 0)`` is just the column.
    """

    __slots__ = ("cols", "present", "n", "_all_true")

    def __init__(self, cols: dict, present: dict, n: int):
        self.cols = cols
        self.present = present
        self.n = n
        self._all_true: Optional[np.ndarray] = None

    def all_true(self) -> np.ndarray:
        if self._all_true is None:
            self._all_true = np.ones(self.n, dtype=bool)
        return self._all_true


class _Cx:
    """Per-batch evaluation context one unit sees."""

    __slots__ = ("cols", "local", "wmask", "args", "n", "hits")

    def __init__(self, cols, n, hits):
        self.cols = cols
        self.local: dict[str, np.ndarray] = {}
        #: key -> lanes a table action actually wrote. Absent for
        #: unit-level writes, which cover every guarded lane; present
        #: for action writes, which cover only the selecting lanes —
        #: the stage commit must not mark miss lanes as carrying the
        #: field (scalar engines leave them unallocated).
        self.wmask: dict[str, np.ndarray] = {}
        self.args: tuple = ()
        self.n = n
        self.hits = hits


def _merge_hits(buf: dict, name: str, hit: np.ndarray,
                ran: Optional[np.ndarray], n: int) -> None:
    """Overwrite ``buf[name]`` under the ``ran`` lanes (None = all)."""
    prev = buf.get(name)
    if prev is None:
        h = np.zeros(n, dtype=bool)
        r = np.zeros(n, dtype=bool)
        buf[name] = (h, r)
    else:
        h, r = prev
    if ran is None:
        h[:] = hit
        r[:] = True
    else:
        h[ran] = hit[ran]
        r |= ran


# ---------------------------------------------------------------------------
# Register kernels — sequential semantics over whole-batch arrays
# ---------------------------------------------------------------------------


def _lane_select(arr: np.ndarray, g: Optional[np.ndarray]) -> np.ndarray:
    return arr if g is None else arr[g]


def _dest_merge(cx: _Cx, key: str, values: np.ndarray,
                g: Optional[np.ndarray]) -> None:
    """Write a register result into the unit-local buffer under ``g``.

    Always produces a fresh array: local entries may alias committed
    columns (identity assigns), which in-place merges must not corrupt.
    """
    if g is None:
        cx.local[key] = values.copy() if values.base is not None else values
        return
    base = cx.local.get(key)
    if base is None:
        base = cx.cols.get(key)
    out = base.copy() if base is not None else np.zeros(cx.n, dtype=np.int64)
    out[g] = values[g]
    cx.local[key] = out


def _segmented_groups(ii: np.ndarray):
    """Stable index-sort + group structure for collision-exact kernels."""
    order = np.argsort(ii, kind="stable")
    si = ii[order]
    k = si.size
    boundary = np.empty(k, dtype=bool)
    boundary[0] = True
    np.not_equal(si[1:], si[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    gidx = np.cumsum(boundary) - 1
    ends = np.empty(starts.size, dtype=np.int64)
    ends[:-1] = starts[1:] - 1
    ends[-1] = k - 1
    return order, si, boundary, starts, ends, gidx


class _RegKernels:
    """Builds step closures ``step(cx, g)`` for one bound RegisterArray."""

    def __init__(self, array: RegisterArray):
        if array.width >= 64:
            raise _NotVectorizable("64-bit register cells exceed int64")
        self.array = array
        self.data = array._data
        self.cells = array.cells
        self.mask = np.int64(array.mask)
        self.mask_u = np.uint64(array.mask)

    def _indices(self, cx, g, idx_fn) -> np.ndarray:
        idx = _as_array(idx_fn(cx), cx.n) % self.cells
        return _lane_select(idx, g)

    def read(self, dest: str, idx_fn) -> Callable:
        data, cells = self.data, self.cells

        def step(cx, g):
            idx = _as_array(idx_fn(cx), cx.n) % cells
            _dest_merge(cx, dest, data[idx].astype(np.int64), g)

        return step

    def write(self, idx_fn, val_fn) -> Callable:
        data, mask = self.data, self.mask

        def step(cx, g):
            ii = self._indices(cx, g, idx_fn)
            if not ii.size:
                return
            vv = _lane_select(_as_array(val_fn(cx), cx.n) & mask, g)
            # Last writer wins; duplicate fancy-index assignment order is
            # unspecified, so dedupe explicitly via the reversed lanes.
            uniq, first_in_rev = np.unique(ii[::-1], return_index=True)
            last = ii.size - 1 - first_in_rev
            data[uniq] = vv[last].astype(np.uint64)

        return step

    def add(self, idx_fn, amt_fn, cond_fn=None) -> Callable:
        """``add``/``cond_add`` without a destination: pure scatter-add.

        Per-packet masking commutes with summation because the cell
        width divides 2**64, so one wraparound ``np.add.at`` plus a
        final mask of the touched cells is bit-exact.
        """
        data, mask_u = self.data, self.mask_u

        def step(cx, g):
            ii = self._indices(cx, g, idx_fn)
            if not ii.size:
                return
            amt = _lane_select(_as_array(amt_fn(cx), cx.n), g)
            if cond_fn is not None:
                cond = _lane_select(
                    _as_array(cond_fn(cx), cx.n), g) != 0
                amt = np.where(cond, amt, 0)
            np.add.at(data, ii, amt.astype(np.uint64))
            data[np.unique(ii)] &= mask_u

        return step

    def add_read(self, dest: str, idx_fn, amt_fn, cond_fn=None) -> Callable:
        """``add_read``/``cond_add_read``: every lane must observe the
        running post-increment value its sequential position implies —
        a segmented inclusive prefix sum over index-sorted lanes.

        ``cond_add_read`` reduces to ``add_read`` with the amount zeroed
        where the condition fails (the scalar false branch *reads* the
        running cell, which is exactly a +0 in the running sum).
        """
        data, mask_u, cells = self.data, self.mask_u, self.cells

        def step(cx, g):
            n = cx.n
            idx_full = _as_array(idx_fn(cx), n) % cells
            amt_full = _as_array(amt_fn(cx), n)
            if cond_fn is not None:
                cond = _as_array(cond_fn(cx), n) != 0
                amt_full = np.where(cond, amt_full, 0)
            ii = _lane_select(idx_full, g)
            if not ii.size:
                _dest_merge(cx, dest, np.zeros(n, dtype=np.int64),
                            g if g is not None else np.zeros(n, dtype=bool))
                return
            aa = _lane_select(amt_full, g).astype(np.uint64)
            order, si, _b, starts, ends, gidx = _segmented_groups(ii)
            sa = aa[order]
            cs = np.cumsum(sa)                      # wraps mod 2**64 — exact
            base_excl = (cs - sa)[starts][gidx]     # prefix before each group
            seg = cs - base_excl                    # inclusive within-group sum
            init = data[si[starts]][gidx]
            post = (init + seg) & mask_u
            data[si[ends]] = post[ends]
            res = np.empty(ii.size, dtype=np.uint64)
            res[order] = post
            res64 = res.astype(np.int64)
            if g is None:
                _dest_merge(cx, dest, res64, None)
            else:
                full = np.zeros(n, dtype=np.int64)
                full[g] = res64
                _dest_merge(cx, dest, full, g)

        return step

    def swap(self, dest: str, idx_fn, val_fn) -> Callable:
        """Per-lane old value = previous lane's write within its index
        group (the group head reads the pre-batch cell)."""
        data, mask = self.data, self.mask

        def step(cx, g):
            n = cx.n
            idx_full = _as_array(idx_fn(cx), n) % self.cells
            val_full = _as_array(val_fn(cx), n) & mask
            ii = _lane_select(idx_full, g)
            if not ii.size:
                _dest_merge(cx, dest, np.zeros(n, dtype=np.int64),
                            g if g is not None else np.zeros(n, dtype=bool))
                return
            vv = _lane_select(val_full, g).astype(np.uint64)
            order, si, boundary, starts, ends, gidx = _segmented_groups(ii)
            sv = vv[order]
            shifted = np.empty_like(sv)
            shifted[0] = 0
            shifted[1:] = sv[:-1]
            init = data[si[starts]][gidx]
            old = np.where(boundary, init, shifted)
            data[si[ends]] = sv[ends]
            res = np.empty(ii.size, dtype=np.uint64)
            res[order] = old
            res64 = res.astype(np.int64)
            if g is None:
                _dest_merge(cx, dest, res64, None)
            else:
                full = np.zeros(n, dtype=np.int64)
                full[g] = res64
                _dest_merge(cx, dest, full, g)

        return step

    def extremum(self, idx_fn, val_fn, is_max: bool) -> Callable:
        """``max_update``/``min_update`` (no destination): order-free."""
        data, mask = self.data, self.mask
        scatter = np.maximum.at if is_max else np.minimum.at

        def step(cx, g):
            ii = self._indices(cx, g, idx_fn)
            if not ii.size:
                return
            vv = _lane_select(_as_array(val_fn(cx), cx.n) & mask, g)
            scatter(data, ii, vv.astype(np.uint64))

        return step


# ---------------------------------------------------------------------------
# Table kernel — searchsorted over a version-cached exact index
# ---------------------------------------------------------------------------


class _VecAction:
    """One declared action vector-compiled (or marked bail-only)."""

    __slots__ = ("name", "nparams", "steps", "written", "ok")

    def __init__(self, name, nparams, steps, written, ok):
        self.name = name
        self.nparams = nparams
        self.steps = steps          # list of (cx, m) closures
        self.written = written      # key -> (lo, hi) post-ranges
        self.ok = ok                # False: selecting it bails to scalar


class _TableCache:
    """Sorted-key lookup state for one table version."""

    __slots__ = ("version", "keys", "aid", "bail", "data", "row",
                 "default_aid", "default_bail")

    def __init__(self, version):
        self.version = version
        self.keys = np.empty(0, dtype=np.int64)
        self.aid = np.empty(0, dtype=np.int64)     # action id per entry
        self.bail = np.empty(0, dtype=bool)        # entry forces scalar
        self.data: dict[int, np.ndarray] = {}      # aid -> (rows, nparams)
        self.row = np.empty(0, dtype=np.int64)     # entry -> row in data[aid]
        self.default_aid = -1                      # -1: miss runs nothing
        self.default_bail = False


class _VecTable:
    """Vectorized apply of a single-exact-key table."""

    def __init__(self, table, key_fn, actions: dict[str, _VecAction],
                 action_ids: dict[str, int]):
        self.table = table
        self.key_fn = key_fn
        self.actions = actions          # name -> _VecAction
        self.by_id = {i: actions[n] for n, i in action_ids.items()}
        self.action_ids = action_ids
        self._cache: Optional[_TableCache] = None
        self._errors: dict[int, str] = {}   # pseudo-aid -> error message

    def _action_id(self, name: str):
        """Resolve an entry's action: id, bail flag, or error message."""
        act = self.actions.get(name)
        if act is None:
            return None, False, (
                f"table {self.table.name!r} selected unknown action {name!r}"
            )
        return self.action_ids[name], not act.ok, None

    def _build_cache(self) -> _TableCache:
        table = self.table
        cache = _TableCache(table.version)
        entries = []
        for key, entry in table._exact_index.items():
            k = key[0]
            if not (_I64_MIN <= k <= _I64_MAX):
                continue                     # unmatchable by any int64 lane
            entries.append((k, entry))
        entries.sort(key=lambda it: it[0])
        n = len(entries)
        cache.keys = np.fromiter((k for k, _ in entries), dtype=np.int64,
                                 count=n)
        aid = np.empty(n, dtype=np.int64)
        bail = np.zeros(n, dtype=bool)
        row = np.zeros(n, dtype=np.int64)
        grouped: dict[int, list] = {}
        err_id = -10
        self._errors = {}
        for pos, (_k, entry) in enumerate(entries):
            a, b, err = self._action_id(entry.action)
            data = tuple(int(v) for v in entry.action_data)
            if err is None and not b:
                act = self.by_id[a]
                if len(data) != act.nparams:
                    err = (f"action {entry.action!r} expects {act.nparams} "
                           f"data values, entry carries {len(data)}")
                elif any(not (0 <= v <= _ACTION_DATA_MAX) for v in data):
                    b = True                 # outside the assumed range
            if err is not None:
                err_id -= 1
                self._errors[err_id] = err
                aid[pos] = err_id
                continue
            aid[pos] = a
            bail[pos] = b
            if not b:
                rows = grouped.setdefault(a, [])
                row[pos] = len(rows)
                rows.append(data)
        cache.aid, cache.bail, cache.row = aid, bail, row
        for a, rows in grouped.items():
            nparams = self.by_id[a].nparams
            cache.data[a] = np.array(rows, dtype=np.int64).reshape(
                len(rows), nparams)
        default = table.default_action or "NoAction"
        if default != "NoAction":
            a, b, err = self._action_id(default)
            if err is None and not b and self.by_id[a].nparams != 0:
                err = (f"action {default!r} expects "
                       f"{self.by_id[a].nparams} data values, "
                       f"entry carries 0")
            if err is not None:
                err_id -= 1
                self._errors[err_id] = err
                cache.default_aid = err_id
            else:
                cache.default_aid = a
                cache.default_bail = b
                if b:
                    cache.default_bail = True
        return cache

    def step(self, cx: _Cx, g: Optional[np.ndarray]) -> None:
        table = self.table
        cache = self._cache
        if cache is None or cache.version != table.version:
            cache = self._cache = self._build_cache()
        n = cx.n
        keys = _as_array(self.key_fn(cx), n)
        nkeys = cache.keys.size
        if nkeys:
            pos = np.searchsorted(cache.keys, keys)
            pos_c = np.minimum(pos, nkeys - 1)
            hit = cache.keys[pos_c] == keys
            entry = np.where(hit, pos_c, -1)
            lane_aid = np.where(hit, cache.aid[pos_c],
                                np.int64(cache.default_aid))
        else:
            hit = np.zeros(n, dtype=bool)
            entry = np.full(n, -1, dtype=np.int64)
            lane_aid = np.full(n, cache.default_aid, dtype=np.int64)
        _merge_hits(cx.hits, table.name, hit, g, n)
        live = hit if g is None else (hit & g)
        ran = g if g is not None else None
        # Any lane selecting a bail-flagged entry → scalar re-run.
        if nkeys and np.any(cache.bail[entry[live]] if live.any() else False):
            raise _VectorBail
        miss = ~hit if g is None else (~hit & g)
        if cache.default_aid != -1 and miss.any():
            if cache.default_aid in self._errors:
                raise SimulationError(self._errors[cache.default_aid])
            if cache.default_bail:
                raise _VectorBail
        sel_aids = lane_aid if ran is None else lane_aid[ran]
        for a in np.unique(sel_aids).tolist():
            if a == -1:
                continue
            if a in self._errors:
                raise SimulationError(self._errors[a])
            act = self.by_id[a]
            m = lane_aid == a
            if ran is not None:
                m &= ran
            if not m.any():
                continue
            if act.nparams:
                rows = cache.row[entry[m]]
                mat = cache.data[a]
                args = []
                for j in range(act.nparams):
                    col = np.zeros(n, dtype=np.int64)
                    col[m] = mat[rows, j]
                    args.append(col)
                cx.args = tuple(args)
            else:
                cx.args = ()
            try:
                for astep in act.steps:
                    astep(cx, m)
            finally:
                cx.args = ()


# ---------------------------------------------------------------------------
# Expression + statement lowering with range tracking
# ---------------------------------------------------------------------------


class _VecLowering:
    """Lowers unit ASTs to whole-batch kernels (shared per pipeline)."""

    def __init__(self, pipeline, plan):
        self.pipeline = pipeline
        self.plan = plan
        self.masks = plan.masks
        self.consts = pipeline.info.consts
        self.low = _Lowering(
            consts=pipeline.info.consts,
            registers=pipeline.registers,
            tables=pipeline.tables,
            actions=pipeline.info.actions,
            hash_fns=pipeline._hash_fns,
            hash_factory=pipeline._hash_factory,
        )
        self.wide = {k for k, m in self.masks.items() if m > _I64_MAX}
        self.mask_i64 = {
            k: (np.int64(-1) if k in self.wide else np.int64(m))
            for k, m in self.masks.items()
        }
        #: action name -> _VecAction (compiled on demand per table)
        self._vec_actions: dict[str, _VecAction] = {}
        self._action_ids: dict[str, int] = {}

    # -- expressions -----------------------------------------------------------
    def expr(self, e: ast.Expr, scalars: dict[str, int],
             env: dict[str, tuple[int, int]]):
        """Lower to ``(fn(cx) -> int64 array-or-scalar, lo, hi)``."""
        if not isinstance(e, ast.Name) or e.ident not in scalars:
            try:
                value = _fold(e, self.consts, scalars)
            except _NotStatic:
                pass
            else:
                _check_range(value, value)
                const = np.int64(value)
                return (lambda cx, _v=const: _v), value, value
        if isinstance(e, ast.Name):
            if e.ident in scalars:
                pos = scalars[e.ident]
                return ((lambda cx, _p=pos: cx.args[_p]),
                        0, _ACTION_DATA_MAX)
            return self._field_read(e.ident, env)
        if isinstance(e, (ast.Member, ast.Index)):
            key = self.low.field_key(e, scalars)
            if not isinstance(key, str):
                raise _NotVectorizable("dynamic field key")
            return self._field_read(key, env)
        if isinstance(e, ast.UnaryOp):
            return self._unary(e, scalars, env)
        if isinstance(e, ast.BinaryOp):
            return self._binary(e, scalars, env)
        if isinstance(e, ast.Ternary):
            cf, _cl, _ch = self.expr(e.cond, scalars, env)
            tf, tlo, thi = self.expr(e.if_true, scalars, env)
            ff, flo, fhi = self.expr(e.if_false, scalars, env)

            def tern(cx, _c=cf, _t=tf, _f=ff):
                return np.where(np.asarray(_c(cx)) != 0, _t(cx), _f(cx))

            return tern, min(tlo, flo), max(thi, fhi)
        if isinstance(e, ast.Call):
            return self._call(e, scalars, env)
        raise _NotVectorizable(f"cannot vectorize {type(e).__name__}")

    def _field_read(self, key: str, env):
        if env is not None and key in env:
            lo, hi = env[key]

            # The local may be missing at runtime even though the env
            # says "written earlier": table actions only materialize
            # their writes for batches whose lanes select them.
            def read_local(cx, _k=key):
                val = cx.local.get(_k)
                if val is not None:
                    return val
                col = cx.cols.get(_k)
                return _ZERO if col is None else col

            return read_local, lo, hi
        mask = self.masks.get(key)
        if mask is None:
            # Never allocated: scalar reads yield 0 forever.
            return (lambda cx: _ZERO), 0, 0
        if mask > _I64_MAX:
            raise _NotVectorizable("64-bit PHV field")

        def read(cx, _k=key):
            col = cx.cols.get(_k)
            return _ZERO if col is None else col

        return read, 0, mask

    def _unary(self, e: ast.UnaryOp, scalars, env):
        af, lo, hi = self.expr(e.operand, scalars, env)
        if e.op == "-":
            _check_range(-hi, -lo)
            return (lambda cx: -np.asarray(af(cx))), -hi, -lo
        if e.op == "~":
            _check_range(-hi - 1, -lo - 1)
            return (lambda cx: ~np.asarray(af(cx))), -hi - 1, -lo - 1
        if e.op == "!":
            return ((lambda cx:
                     (np.asarray(af(cx)) == 0).astype(np.int64)), 0, 1)
        raise _NotVectorizable(f"unary {e.op!r}")

    def _binary(self, e: ast.BinaryOp, scalars, env):
        af, alo, ahi = self.expr(e.left, scalars, env)
        bf, blo, bhi = self.expr(e.right, scalars, env)
        op = e.op
        if op == "+":
            lo, hi = _check_range(alo + blo, ahi + bhi)
            return (lambda cx: af(cx) + bf(cx)), lo, hi
        if op == "-":
            lo, hi = _check_range(alo - bhi, ahi - blo)
            return (lambda cx: af(cx) - bf(cx)), lo, hi
        if op == "*":
            corners = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
            lo, hi = _check_range(min(corners), max(corners))
            return (lambda cx: af(cx) * bf(cx)), lo, hi
        if op in ("&", "|", "^"):
            lo, hi = _check_range(*_bit_range(alo, ahi, blo, bhi))
            fn = {"&": (lambda cx: af(cx) & bf(cx)),
                  "|": (lambda cx: af(cx) | bf(cx)),
                  "^": (lambda cx: af(cx) ^ bf(cx))}[op]
            return fn, lo, hi
        if op == "/":
            m = max(abs(alo), abs(ahi))
            lo, hi = _check_range(-m, m)

            def div(cx):
                a = _as_array(af(cx), cx.n)
                b = _as_array(bf(cx), cx.n)
                out = np.zeros(cx.n, dtype=np.int64)
                np.floor_divide(a, b, out=out, where=b != 0)
                return out

            return div, lo, hi
        if op == "%":
            m = max(abs(blo), abs(bhi))
            lo, hi = _check_range(-m, m)

            def mod(cx):
                a = _as_array(af(cx), cx.n)
                b = _as_array(bf(cx), cx.n)
                out = np.zeros(cx.n, dtype=np.int64)
                np.mod(a, b, out=out, where=b != 0)
                return out

            return mod, lo, hi
        if op in ("<<", ">>"):
            if blo < 0:
                # Negative shifts raise per-packet in the scalar engines.
                raise _NotVectorizable("possibly negative shift amount")
            s_lo, s_hi = min(blo, 64), min(bhi, 64)
            if op == "<<":
                corners = [v << s for v in (alo, ahi) for s in (s_lo, s_hi)]
            else:
                corners = [v >> s for v in (alo, ahi)
                           for s in (min(s_lo, 63), min(s_hi, 63))]
            lo, hi = _check_range(min(corners), max(corners))
            # min(b, 63) is exact in the int64 domain: a 63-bit shift
            # already saturates (>> to the sign, << range-checked to 0).
            if op == "<<":
                def shl(cx):
                    return np.left_shift(
                        np.asarray(af(cx)), np.minimum(bf(cx), 63))
                return shl, lo, hi

            def shr(cx):
                return np.right_shift(
                    np.asarray(af(cx)), np.minimum(bf(cx), 63))

            return shr, lo, hi
        if op in ("==", "!=", "<", ">", "<=", ">="):
            cmp = {"==": np.equal, "!=": np.not_equal, "<": np.less,
                   ">": np.greater, "<=": np.less_equal,
                   ">=": np.greater_equal}[op]
            return ((lambda cx, _c=cmp:
                     _c(af(cx), bf(cx)).astype(np.int64)), 0, 1)
        if op == "&&":
            return ((lambda cx:
                     ((np.asarray(af(cx)) != 0)
                      & (np.asarray(bf(cx)) != 0)).astype(np.int64)), 0, 1)
        if op == "||":
            return ((lambda cx:
                     ((np.asarray(af(cx)) != 0)
                      | (np.asarray(bf(cx)) != 0)).astype(np.int64)), 0, 1)
        raise _NotVectorizable(f"binary {op!r}")

    def _call(self, call: ast.Call, scalars, env):
        func = call.func
        if not isinstance(func, ast.Name):
            raise _NotVectorizable("computed call")
        if func.ident == "hash":
            if not call.args:
                raise _NotVectorizable("hash() without seed")
            try:
                seed = _fold(call.args[0], self.consts, scalars)
            except _NotStatic:
                raise _NotVectorizable("dynamic hash seed") from None
            fn = self.low.hash_fn(seed)
            if type(fn) is not MultiplyShiftHash:
                raise _NotVectorizable("non-multiply-shift hash family")
            value_fns = [self.expr(a, scalars, env)[0]
                         for a in call.args[1:]]
            if not value_fns:
                value = fn(width=_HASH_WIDTH)
                const = np.int64(value)
                return (lambda cx, _v=const: _v), value, value

            def vhash(cx, _f=fn, _v=value_fns):
                cols = [_as_array(vf(cx), cx.n) for vf in _v]
                return _f.vector_multi(cols, width=_HASH_WIDTH)

            return vhash, 0, _HASH_WIDTH - 1
        if func.ident in ("min", "max") and call.args:
            lowered = [self.expr(a, scalars, env) for a in call.args]
            fns = [f for f, _lo, _hi in lowered]
            los = [lo for _f, lo, _hi in lowered]
            his = [hi for _f, _lo, hi in lowered]
            reducer = np.minimum if func.ident == "min" else np.maximum
            pick = min if func.ident == "min" else max

            def mm(cx, _fns=fns, _r=reducer):
                acc = _fns[0](cx)
                for f in _fns[1:]:
                    acc = _r(acc, f(cx))
                return acc

            return mm, pick(los), pick(his)
        raise _NotVectorizable(f"call {func.ident!r}")

    # -- statements ------------------------------------------------------------
    def stmt(self, s: ast.Stmt, scalars, env, effects: list):
        """Lower one statement to ``step(cx, g)``; appends its register/
        table effects to ``effects`` as ``("reg", name, mutates)`` /
        ``("table", name)`` tuples for the stage-level hazard rules."""
        if isinstance(s, ast.Assign):
            key = self.low.field_key(s.target, scalars)
            if not isinstance(key, str):
                raise _NotVectorizable("dynamic assignment target")
            if key not in self.masks:
                # Scalar engines raise PhvError at commit, per packet.
                raise _NotVectorizable("assignment to unallocated field")
            vf, lo, hi = self.expr(s.value, scalars, env)
            env[key] = (lo, hi)

            def step(cx, g, _k=key, _v=vf):
                cx.local[_k] = _as_array(_v(cx), cx.n)

            return step
        if (isinstance(s, ast.CallStmt)
                and isinstance(s.call.func, ast.Member)):
            func = s.call.func
            if func.name == "apply" and isinstance(func.base, ast.Name):
                return self._table_stmt(func.base.ident, scalars, env,
                                        effects)
            return self._register_stmt(s.call, func, scalars, env, effects)
        raise _NotVectorizable(f"statement {type(s).__name__}")

    def _register_stmt(self, call, func, scalars, env, effects):
        method = func.name
        if method not in _REG_METHODS:
            raise _NotVectorizable(f"register method {method!r}")
        array = self.low.register_array(func.base, scalars)
        if callable(array) or type(array) is not RegisterArray:
            raise _NotVectorizable("dynamic or unresolved register")
        kern = _RegKernels(array)
        dest_pos = _REG_METHODS[method]
        dest = None
        if dest_pos is not None:
            dest = self.low.field_key(call.args[dest_pos], scalars)
            if not isinstance(dest, str) or dest not in self.masks:
                raise _NotVectorizable("dynamic register destination")
        arg = lambda i: self.expr(call.args[i], scalars, env)[0]
        effects.append(("reg", array.name, method != "read"))
        if method == "read":
            step = kern.read(dest, arg(1))
        elif method == "write":
            step = kern.write(arg(0), arg(1))
        elif method == "add":
            step = kern.add(arg(0), arg(1))
        elif method == "cond_add":
            step = kern.add(arg(0), arg(2), cond_fn=arg(1))
        elif method == "add_read":
            step = kern.add_read(dest, arg(1), arg(2))
        elif method == "cond_add_read":
            step = kern.add_read(dest, arg(1), arg(3), cond_fn=arg(2))
        elif method == "swap":
            step = kern.swap(dest, arg(1), arg(2))
        elif method == "max_update":
            step = kern.extremum(arg(0), arg(1), is_max=True)
        else:  # min_update
            step = kern.extremum(arg(0), arg(1), is_max=False)
        if dest is not None:
            env[dest] = (0, array.mask)
        return step

    # -- tables ----------------------------------------------------------------
    def _vec_action(self, name: str) -> _VecAction:
        """Vector-compile one declared action (memoized). Failure does
        not island the stage: the action is marked bail-only and only
        batches whose lanes actually select it fall back to scalar."""
        act = self._vec_actions.get(name)
        if act is not None:
            return act
        decl = self.pipeline.info.actions[name]
        scalars = {p.name: pos for pos, p in enumerate(decl.params)}
        steps: list = []
        written: dict[str, tuple[int, int]] = {}
        ok = True
        try:
            env: dict[str, tuple[int, int]] = {}
            for s in decl.body.stmts:
                if not isinstance(s, ast.Assign):
                    raise _NotVectorizable(
                        "non-assignment in table action")
                key = self.low.field_key(s.target, scalars)
                if not isinstance(key, str) or key not in self.masks:
                    raise _NotVectorizable("dynamic action target")
                vf, lo, hi = self.expr(s.value, scalars, env)
                env[key] = (lo, hi)

                def astep(cx, m, _k=key, _v=vf):
                    v = _as_array(_v(cx), cx.n)
                    base = cx.local.get(_k)
                    if base is None:
                        base = cx.cols.get(_k)
                    out = (base.copy() if base is not None
                           else np.zeros(cx.n, dtype=np.int64))
                    out[m] = v[m]
                    cx.local[_k] = out
                    prev = cx.wmask.get(_k)
                    if prev is None:
                        cx.wmask[_k] = m.copy()
                    else:
                        prev |= m

                steps.append(astep)
            written = env
        except Exception:
            steps, written, ok = [], {}, False
        act = _VecAction(name, len(decl.params), steps, written, ok)
        self._vec_actions[name] = act
        self._action_ids.setdefault(name, len(self._action_ids))
        return act

    def _table_stmt(self, table_name: str, scalars, env, effects):
        table = self.pipeline.tables.get(table_name)
        if table is None:
            raise _NotVectorizable("unknown table")   # interp raises KeyError
        if table.match_kinds != ["exact"] or len(table.key_fields) != 1:
            raise _NotVectorizable("non single-exact-key table")
        key_fn, _lo, _hi = self._field_read(table.key_fields[0], env)
        actions = {name: self._vec_action(name)
                   for name in self.pipeline.info.actions}
        vt = _VecTable(table, key_fn, actions, self._action_ids)
        effects.append(("table", table_name))
        # After the apply, any key any action may have written holds
        # either its prior value or the action's — union the ranges.
        for act in actions.values():
            for key, (lo, hi) in act.written.items():
                if key in self.wide:
                    # The no-action-ran fallback reads the committed
                    # column — an unbounded bit pattern. Reads after
                    # this point must island, so drop the env entry.
                    env.pop(key, None)
                    continue
                prev = env.get(key)
                if prev is None:
                    mask = self.masks.get(key)
                    prev = (0, mask if mask is not None else 0)
                env[key] = (min(prev[0], lo), max(prev[1], hi))
        return vt.step

    # -- stages ----------------------------------------------------------------
    def stage_kernel(self, splan, units):
        """Build one whole-batch stage kernel, or raise
        :class:`_NotVectorizable` to demote the stage to an island."""
        no_scalars: dict[str, int] = {}
        unit_kernels = []
        effects: list[tuple] = []
        for unit in units:
            inst = unit.instance
            env: dict[str, tuple[int, int]] = {}
            guard_fn = None
            guard_static = True
            if inst.guard is not None:
                gf, glo, ghi = self.expr(inst.guard, no_scalars, {})
                if glo == ghi:
                    if glo == 0:
                        continue            # unit never runs
                    guard_fn = None         # unit always runs
                else:
                    guard_fn = gf
                    guard_static = False
            steps = []
            if inst.table is not None:
                steps.append(self._table_stmt(inst.table, no_scalars, env,
                                              effects))
            else:
                for s in inst.body:
                    steps.append(self.stmt(s, no_scalars, env, effects))
            unit_kernels.append((unit.label, guard_fn, steps))
            del guard_static
        # Hazard rules: a register touched by >1 step (any of them
        # mutating) needs per-packet interleaving; a table sharing a
        # stage with a register mutation would make _VectorBail unsafe.
        reg_steps: dict[str, int] = {}
        reg_mut: dict[str, int] = {}
        has_table = False
        for eff in effects:
            if eff[0] == "table":
                has_table = True
                continue
            _kind, name, mutates = eff
            reg_steps[name] = reg_steps.get(name, 0) + 1
            if mutates:
                reg_mut[name] = reg_mut.get(name, 0) + 1
        for name, count in reg_steps.items():
            if count > 1 and reg_mut.get(name, 0) > 0:
                raise _NotVectorizable(
                    f"register {name!r}: same-stage read/update interleaving"
                )
        if has_table and reg_mut:
            raise _NotVectorizable("table apply beside register mutation")
        mask_i64 = self.mask_i64
        stage_no = splan.stage

        def kernel(batch: PhvBatch, hits: dict):
            n = batch.n
            stage_hits: dict = {}
            ran_units = []
            for label, guard_fn, steps in unit_kernels:
                cx = _Cx(batch.cols, n, stage_hits)
                g = None
                if guard_fn is not None:
                    gv = guard_fn(cx)
                    if np.ndim(gv) == 0:
                        if int(gv) == 0:
                            continue
                    else:
                        g = np.asarray(gv) != 0
                        if not g.any():
                            continue
                for step in steps:
                    step(cx, g)
                if cx.local:
                    ran_units.append((label, g, cx.local, cx.wmask))
            # Conflict-checked stage-exit commit (matches run_stage).
            commits: dict[str, tuple] = {}
            for label, g, local, wmask in ran_units:
                unit_mask = batch.all_true() if g is None else g
                for key, vals in local.items():
                    gm = wmask.get(key, unit_mask)
                    vals = _as_array(vals, n)
                    prior = commits.get(key)
                    if prior is None:
                        commits[key] = (vals, gm.copy(), label)
                        continue
                    pv, pm, owner = prior
                    both = pm & gm
                    if both.any() and np.any(pv[both] != vals[both]):
                        raise SimulationError(
                            f"stage {stage_no}: units {owner!r} and "
                            f"{label!r} write different values to {key!r}"
                        )
                    merged = pv.copy()
                    new_lanes = gm & ~pm
                    merged[new_lanes] = vals[new_lanes]
                    commits[key] = (merged, pm | gm, owner)
            for key, (vals, m, _owner) in commits.items():
                masked = vals & mask_i64[key]
                col = batch.cols.get(key)
                if col is None:
                    batch.cols[key] = np.where(m, masked, _ZERO)
                    batch.present[key] = m.copy()
                else:
                    batch.cols[key] = np.where(m, masked, col)
                    batch.present[key] = batch.present[key] | m
            for name, (h, r) in stage_hits.items():
                _merge_hits(hits, name, h, r if not r.all() else None, n)

        return kernel


# ---------------------------------------------------------------------------
# The vector plan: per-stage kernels + scalar islands + batch front end
# ---------------------------------------------------------------------------


class VectorPlan:
    """Per-stage vector kernels over a pipeline's compiled closure plan.

    ``ok`` is False when the whole program must stay scalar (a register
    reachable from more than one stage — the stage-at-a-time batch
    reordering would not be sequence-equivalent); :meth:`run_batch` must
    not be called in that case.

    64-bit PHV fields are carried as int64 *bit patterns* (value mod
    2**64 in two's complement): loads, commits, and pure writes are
    exact under that encoding, while any stage that *reads* such a field
    islands (the lowering cannot bound the signed value).
    """

    def __init__(self, pipeline):
        self.pipeline = pipeline
        self.plan = pipeline.plan
        self.masks = self.plan.masks
        #: Fields wider than 63 bits: stored as wrapped bit patterns.
        self.wide = {k for k, m in self.masks.items() if m > _I64_MAX}
        self.mask_i64 = {
            k: (np.int64(-1) if k in self.wide else np.int64(m))
            for k, m in self.masks.items()
        }
        self.ok = True
        self.reason = ""
        self.island_stages: list[int] = []
        self.island_reasons: dict[int, str] = {}
        self.stage_exec: list[tuple] = []
        reg_stages: dict[tuple, set[int]] = {}
        for units in pipeline._stage_units:
            for unit in units:
                for ref in unit.instance.registers:
                    reg_stages.setdefault(tuple(ref), set()).add(unit.stage)
        shared = [r for r, stages in reg_stages.items() if len(stages) > 1]
        if shared:
            self.ok = False
            self.reason = f"register {shared[0]} spans multiple stages"
            return
        lowering = _VecLowering(pipeline, self.plan)
        for splan in self.plan.stages:
            units = pipeline._stage_units[splan.stage]
            try:
                kernel = lowering.stage_kernel(splan, units)
            except Exception as exc:
                kernel = None
                self.island_stages.append(splan.stage)
                self.island_reasons[splan.stage] = str(exc) or type(exc).__name__
            self.stage_exec.append((splan, kernel))

    # -- batch loading ---------------------------------------------------------
    def _load(self, packets) -> PhvBatch:
        pipeline = self.pipeline
        resolve = pipeline._packet_key
        masks = self.masks
        n = len(packets)
        names = list(packets[0].fields)
        cols: dict[str, np.ndarray] = {}
        present: dict[str, np.ndarray] = {}
        uniform = all(len(p.fields) == len(names) for p in packets)
        if uniform:
            try:
                for name in names:
                    key = resolve(name)
                    col = np.fromiter((p.fields[name] for p in packets),
                                      dtype=np.int64, count=n)
                    # For 64-bit fields the mask is the int64 identity:
                    # the column keeps the value's wrapped bit pattern.
                    cols[key] = col & self.mask_i64[key]
                    present[key] = np.ones(n, dtype=bool)
                return PhvBatch(cols, present, n)
            except (KeyError, OverflowError, ValueError):
                cols.clear()
                present.clear()
        # Ragged batches / out-of-int64 raw values: mask in Python (the
        # masked value is in [0, 2**64), so go through uint64 and C-cast
        # down to the int64 bit pattern).
        union: dict[str, None] = {}
        for p in packets:
            for name in p.fields:
                union.setdefault(name)
        for name in union:
            key = resolve(name)
            mask = masks[key]
            cols[key] = np.fromiter(
                ((int(p.fields[name]) & mask) if name in p.fields else 0
                 for p in packets),
                dtype=np.uint64, count=n).astype(np.int64)
            present[key] = np.fromiter((name in p.fields for p in packets),
                                       dtype=bool, count=n)
        return PhvBatch(cols, present, n)

    # -- scalar islands --------------------------------------------------------
    def _run_island(self, splan, batch: PhvBatch, hits: dict) -> None:
        """Materialize per-packet dicts, run the compiled closure plan's
        stage, scatter results back into columns."""
        n = batch.n
        wide = self.wide
        dicts: list[dict] = [dict() for _ in range(n)]
        for key, col in batch.cols.items():
            pres = batch.present[key]
            if key in wide:
                col = col.astype(np.uint64)   # bit pattern -> value
            vals = col.tolist()
            if pres.all():
                for i, v in enumerate(vals):
                    dicts[i][key] = v
            else:
                for i in np.nonzero(pres)[0].tolist():
                    dicts[i][key] = vals[i]
        run_stage = self.plan.run_stage
        hit_rows: list[dict] = []
        for phv in dicts:
            row: dict = {}
            run_stage(splan, phv, row)
            hit_rows.append(row)
        keys: dict[str, None] = dict.fromkeys(batch.cols)
        for d in dicts:
            for key in d:
                keys.setdefault(key)
        for key in keys:
            dtype = np.uint64 if key in wide else np.int64
            batch.cols[key] = np.fromiter(
                (d.get(key, 0) for d in dicts), dtype=dtype,
                count=n).astype(np.int64, copy=False)
            batch.present[key] = np.fromiter(
                (key in d for d in dicts), dtype=bool, count=n)
        names: dict[str, None] = {}
        for row in hit_rows:
            for name in row:
                names.setdefault(name)
        for name in names:
            hit = np.fromiter((row.get(name, False) for row in hit_rows),
                              dtype=bool, count=n)
            ran = np.fromiter((name in row for row in hit_rows),
                              dtype=bool, count=n)
            _merge_hits(hits, name, hit, ran if not ran.all() else None, n)

    # -- execution -------------------------------------------------------------
    def run_stages(self, batch: PhvBatch, hits: dict) -> None:
        """Run a pre-built batch through every stage, in place.

        The persistent worker pool (:mod:`repro.pisa.pool`) calls this
        directly on shared-memory column slices; :meth:`run_batch` wraps
        it with packet loading and result materialization.
        """
        for splan, kernel in self.stage_exec:
            if kernel is None:
                self._run_island(splan, batch, hits)
            else:
                try:
                    kernel(batch, hits)
                except _VectorBail:
                    self._run_island(splan, batch, hits)

    def run_batch(self, packets, collect: bool = True):
        """Run a packet list through all stages; returns results or count."""
        if not isinstance(packets, list):
            packets = list(packets)
        n = len(packets)
        if n == 0:
            return [] if collect else 0
        batch = self._load(packets)
        hits: dict = {}
        self.run_stages(batch, hits)
        self.pipeline.packets_processed += n
        if not collect:
            return n
        return self._materialize(batch, hits)

    def _materialize(self, batch: PhvBatch, hits: dict):
        from .pipeline import PipelineResult

        n = batch.n
        phvs: list[dict] = [dict() for _ in range(n)]
        for key, col in batch.cols.items():
            pres = batch.present[key]
            if key in self.wide:
                col = col.astype(np.uint64)   # bit pattern -> value
            vals = col.tolist()
            if pres.all():
                for i, v in enumerate(vals):
                    phvs[i][key] = v
            else:
                for i in np.nonzero(pres)[0].tolist():
                    phvs[i][key] = vals[i]
        hit_dicts: list[dict] = [dict() for _ in range(n)]
        for name, (h, r) in hits.items():
            hl = h.tolist()
            if r.all():
                for i in range(n):
                    hit_dicts[i][name] = hl[i]
            else:
                for i in np.nonzero(r)[0].tolist():
                    hit_dicts[i][name] = hl[i]
        return [PipelineResult(phv=p, table_hits=t)
                for p, t in zip(phvs, hit_dicts)]

    # -- introspection ---------------------------------------------------------
    def describe(self) -> str:
        """Human-readable vectorization summary."""
        if not self.ok:
            return f"vector plan disabled: {self.reason}"
        total = len(self.stage_exec)
        vec = total - len(self.island_stages)
        lines = [f"vector plan: {vec}/{total} stages vectorized"]
        for stage in self.island_stages:
            lines.append(
                f"  stage {stage}: scalar island"
                f" ({self.island_reasons.get(stage, 'unsupported')})"
            )
        return "\n".join(lines)
