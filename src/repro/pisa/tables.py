"""Match-action tables.

Each pipeline stage holds tables of match-action rules (§2). The
simulator supports the three classic match kinds:

* ``exact``   — all key fields equal the entry's values;
* ``ternary`` — per-entry value/mask pairs with priorities;
* ``lpm``     — longest-prefix match on a single key field.

Entries are installed by the "control plane" (application harnesses and
tests). A lookup returns the winning entry's action name and action data,
or the table's default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TableEntry", "MatchActionTable", "TableError"]


class TableError(Exception):
    """Invalid entry shape, overfull table, or bad match kind."""


@dataclass
class TableEntry:
    """One installed rule.

    ``match`` holds one element per key field:

    * exact: the required value;
    * ternary: ``(value, mask)``;
    * lpm: ``(value, prefix_len)`` — only for the single lpm field.

    ``action`` names the action to run; ``action_data`` are its runtime
    arguments; higher ``priority`` wins among ternary matches.
    """

    match: tuple
    action: str
    action_data: tuple = ()
    priority: int = 0


@dataclass
class _Lookup:
    action: str
    action_data: tuple
    hit: bool


class MatchActionTable:
    """A match-action table with bounded capacity."""

    def __init__(
        self,
        name: str,
        key_fields: list[str],
        match_kinds: list[str],
        size: int = 1024,
        default_action: str | None = None,
    ):
        if len(key_fields) != len(match_kinds):
            raise TableError(f"table {name!r}: keys and match kinds differ in length")
        for kind in match_kinds:
            if kind not in ("exact", "ternary", "lpm"):
                raise TableError(f"table {name!r}: unknown match kind {kind!r}")
        if match_kinds.count("lpm") > 1:
            raise TableError(f"table {name!r}: at most one lpm key field")
        if size <= 0:
            raise TableError(f"table {name!r}: size must be positive")
        self.name = name
        self.key_fields = list(key_fields)
        self.match_kinds = list(match_kinds)
        self.size = size
        self.default_action = default_action
        self._entries: list[TableEntry] = []
        self._exact_index: dict[tuple, TableEntry] | None = (
            {} if all(k == "exact" for k in match_kinds) else None
        )
        #: Bumped on every entry mutation; lets compiled lookup caches
        #: (the vector engine's searchsorted index) invalidate cheaply.
        self.version = 0

    @property
    def entries(self) -> list[TableEntry]:
        return list(self._entries)

    def add_entry(self, entry: TableEntry) -> None:
        """Install a rule; raises :class:`TableError` when full."""
        if len(self._entries) >= self.size:
            raise TableError(f"table {self.name!r} is full ({self.size} entries)")
        if len(entry.match) != len(self.key_fields):
            raise TableError(
                f"table {self.name!r}: entry has {len(entry.match)} match fields, "
                f"expected {len(self.key_fields)}"
            )
        self._entries.append(entry)
        if self._exact_index is not None:
            self._exact_index[tuple(int(v) for v in entry.match)] = entry
        self.version += 1

    def remove_entry(self, match: tuple) -> bool:
        """Remove the first rule whose match equals ``match``; True if found."""
        for i, entry in enumerate(self._entries):
            if entry.match == match:
                del self._entries[i]
                if self._exact_index is not None:
                    self._exact_index.pop(tuple(int(v) for v in match), None)
                self.version += 1
                return True
        return False

    def clear(self) -> None:
        self._entries.clear()
        if self._exact_index is not None:
            self._exact_index.clear()
        self.version += 1

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup ---------------------------------------------------------------
    def lookup(self, key_values: list[int]) -> _Lookup:
        """Match ``key_values`` (one per key field) against the rules."""
        if len(key_values) != len(self.key_fields):
            raise TableError(
                f"table {self.name!r}: lookup with {len(key_values)} values, "
                f"expected {len(self.key_fields)}"
            )
        if self._exact_index is not None:
            entry = self._exact_index.get(tuple(int(v) for v in key_values))
            if entry is not None:
                return _Lookup(entry.action, entry.action_data, hit=True)
            return self._miss()

        best: TableEntry | None = None
        best_rank = (-1, -1)  # (lpm prefix length, priority)
        for entry in self._entries:
            rank = self._entry_matches(entry, key_values)
            if rank is not None and rank > best_rank:
                best, best_rank = entry, rank
        if best is None:
            return self._miss()
        return _Lookup(best.action, best.action_data, hit=True)

    def _entry_matches(self, entry: TableEntry, key_values: list[int]):
        prefix_len = 0
        for kind, pattern, value in zip(self.match_kinds, entry.match, key_values):
            value = int(value)
            if kind == "exact":
                if value != int(pattern):
                    return None
            elif kind == "ternary":
                want, mask = pattern
                if (value & int(mask)) != (int(want) & int(mask)):
                    return None
            else:  # lpm
                want, plen = pattern
                plen = int(plen)
                shift = max(0, 32 - plen)
                if (value >> shift) != (int(want) >> shift):
                    return None
                prefix_len = plen
        return (prefix_len, entry.priority)

    def _miss(self) -> _Lookup:
        return _Lookup(self.default_action or "NoAction", (), hit=False)

    def __repr__(self) -> str:
        return (
            f"MatchActionTable({self.name!r}, keys={self.key_fields}, "
            f"{len(self._entries)}/{self.size} entries)"
        )
