"""Loading/saving target specifications.

The P4All compiler "takes a target specification (that summarizes the
target's capabilities and resources) as input" (§1). Predefined specs
live in :mod:`repro.pisa.resources`; this module adds a JSON interchange
format so users can describe their own targets::

    {
        "name": "my-switch",
        "stages": 12,
        "memory_bits_per_stage": 1048576,
        "stateful_alus_per_stage": 4,
        "stateless_alus_per_stage": 64,
        "phv_bits": 2048,
        "hash_units_per_stage": 6
    }
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from .resources import TargetSpec

__all__ = ["target_from_dict", "target_to_dict", "load_target", "save_target"]

_REQUIRED = (
    "name",
    "stages",
    "memory_bits_per_stage",
    "stateful_alus_per_stage",
    "stateless_alus_per_stage",
    "phv_bits",
)
_OPTIONAL = (
    "hash_units_per_stage",
    "stateful_weight",
    "stateless_weight",
    "hash_weight",
    "notes",
)


def target_from_dict(data: dict) -> TargetSpec:
    """Build a :class:`TargetSpec` from a plain dict (validated)."""
    missing = [key for key in _REQUIRED if key not in data]
    if missing:
        raise ValueError(f"target spec missing fields: {', '.join(missing)}")
    unknown = [k for k in data if k not in _REQUIRED + _OPTIONAL]
    if unknown:
        raise ValueError(f"target spec has unknown fields: {', '.join(unknown)}")
    kwargs = {key: data[key] for key in data}
    return TargetSpec(**kwargs)


def target_to_dict(target: TargetSpec) -> dict:
    """Serialize a spec (dataclass fields, insertion-ordered)."""
    return dataclasses.asdict(target)


def load_target(path: str | Path) -> TargetSpec:
    """Read a JSON target specification from disk."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: target spec must be a JSON object")
    return target_from_dict(data)


def save_target(target: TargetSpec, path: str | Path) -> None:
    """Write a spec as JSON (round-trips through :func:`load_target`)."""
    Path(path).write_text(json.dumps(target_to_dict(target), indent=2) + "\n")
