"""Flow-hash-sharded multiprocess fan-out for ``Pipeline.process_many``.

Workers partition the batch by the shard ring's key hash
(:func:`repro.fabric.shard.key_hash`, the same splitmix64 the fleet
uses), so every worker owns a disjoint slice of the *flow keyspace* —
the same invariant the multi-switch fabric relies on. Register cells
are still shared arrays indexed by hashes of those keys, so two workers
can land on the same cell; the per-register merge discipline makes the
join exact where the algebra allows it:

* **additive** registers (touched only via ``add``/``add_read``/
  ``cond_add``/``cond_add_read``) merge by summing per-worker deltas
  mod 2**64 and re-masking — bit-exact even for cross-shard cell
  collisions, because counter addition commutes;
* **max** / **min** registers (only ``max_update`` / ``min_update``)
  merge via ``np.maximum``/``np.minimum`` against the parent cell —
  also exact (the extremum over any partition of the updates is the
  extremum of the per-partition extrema);
* everything else (``write``, ``swap``, or mixed methods) merges by
  overwriting the parent's cells with each worker's changed cells in
  worker order — exact when workers touch disjoint cells (the common
  case under flow sharding), last-worker-wins on a collision. The docs
  call this caveat out; workloads needing stronger semantics should
  stay single-process.

Three execution modes share that merge discipline, selected by
``REPRO_PISA_SHARD_MODE`` (default ``auto``):

* ``pool`` — the persistent shared-memory worker pool
  (:mod:`repro.pisa.pool`): workers forked once per pipeline, PHV
  columns scattered through shared memory, vector plans cached across
  batches. The fast path, and what ``auto`` picks whenever the
  pipeline has a usable vector plan and the platform can fork.
* ``fork`` — fork-per-batch: each batch forks fresh children that
  inherit the pipeline by memory image — nothing is pickled on the way
  in, and per-worker results/deltas return over a pipe. Engine-
  independent (works for ``compiled``/``interp`` pipelines the pool
  cannot serve) but pays copy-on-write and pickling tax every batch.
* ``inline`` — the partitions run sequentially in-process: merely
  slower, never wrong. The fallback on platforms without ``fork``.

A mode the caller asked for (explicitly or via ``auto``'s preference
order) that cannot be honored **degrades loudly**: a
``pisa.shard.degraded`` trace event plus the
``p4all_shard_degraded_total`` counter fire, and the report records
``requested_mode`` next to the actual ``mode`` — callers can always
tell they got sequential execution. Each worker reports its busy
seconds so callers (the throughput benchmark, the fleet controller)
can compute a makespan-modeled aggregate next to honest wall-clock
numbers; the parent records both on ``pipeline.last_shard_report``.
"""

from __future__ import annotations

import os
import time
from typing import Optional

import numpy as np

from ..lang import ast
from ..obs import merge_worker_obs
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..obs.aggregate import WorkerObsCapture
from .compiled import _REG_METHODS, _NotStatic, _fold

__all__ = ["run_sharded", "classify_registers", "shard_assignments",
           "SHARD_MODES"]

#: Recognized REPRO_PISA_SHARD_MODE values.
SHARD_MODES = ("auto", "pool", "fork", "inline")

_MASK64 = (1 << 64) - 1
_ADDITIVE = frozenset({"add", "add_read", "cond_add", "cond_add_read"})
_MAX_ONLY = frozenset({"max_update"})
_MIN_ONLY = frozenset({"min_update"})


# ---------------------------------------------------------------------------
# Register merge classification (static, per pipeline)
# ---------------------------------------------------------------------------


def _static_instance(expr, consts) -> Optional[str]:
    """Resolve a register reference AST to an instance name, or None."""
    if isinstance(expr, ast.Name):
        return f"{expr.ident}[0]"
    if isinstance(expr, ast.Index) and isinstance(expr.base, ast.Name):
        try:
            idx = _fold(expr.index, consts)
        except _NotStatic:
            return None
        return f"{expr.base.ident}[{idx}]"
    return None


def classify_registers(pipeline) -> dict[str, str]:
    """Map register instance -> merge class: ``"additive"``, ``"max"``,
    ``"min"``, or ``"overwrite"``.

    Scans every placed unit body *and* every declared table action for
    register method calls. A reference whose index cannot be folded
    (e.g. ``counts[r]`` with ``r`` an action parameter) attributes the
    method to every instance of that family; a reference whose family is
    itself unknown makes the whole classification conservative
    (everything merges by overwrite).
    """
    consts = pipeline.info.consts
    methods: dict[str, set[str]] = {}
    family_methods: dict[str, set[str]] = {}
    dynamic = False

    def scan(stmts) -> None:
        nonlocal dynamic
        for stmt in stmts:
            for node in ast.walk(stmt):
                # Register calls appear both as statements and as
                # expressions (``meta.x = reg.add_read(...)``), so match
                # the Call node itself, not just CallStmt wrappers.
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Member)):
                    continue
                func = node.func
                if func.name not in _REG_METHODS:
                    continue
                name = _static_instance(func.base, consts)
                if name is not None:
                    methods.setdefault(name, set()).add(func.name)
                elif (isinstance(func.base, ast.Index)
                      and isinstance(func.base.base, ast.Name)):
                    family_methods.setdefault(
                        func.base.base.ident, set()).add(func.name)
                else:
                    dynamic = True

    for units in pipeline._stage_units:
        for unit in units:
            scan(unit.instance.body)
    for decl in pipeline.info.actions.values():
        scan(decl.body.stmts)

    classes: dict[str, str] = {}
    for name in pipeline.registers.names():
        family = name.rsplit("[", 1)[0]
        used = methods.get(name, set()) | family_methods.get(family, set())
        if dynamic:
            classes[name] = "overwrite"
        elif used and used <= _ADDITIVE:
            classes[name] = "additive"
        elif used and used <= _MAX_ONLY:
            classes[name] = "max"
        elif used and used <= _MIN_ONLY:
            classes[name] = "min"
        else:
            classes[name] = "overwrite"
    return classes


# ---------------------------------------------------------------------------
# Shard assignment
# ---------------------------------------------------------------------------


def shard_assignments(packets, workers: int,
                      shard_field: Optional[str] = None) -> np.ndarray:
    """Worker index per packet: ``splitmix64(key) % workers``.

    The shard field defaults to ``flow_id`` when present, else the first
    field of the first packet. Packets missing the field hash key 0.
    """
    from ..fabric.shard import key_hash

    if shard_field is None:
        first = packets[0].fields
        shard_field = "flow_id" if "flow_id" in first else next(iter(first))
    keys = np.fromiter(
        ((int(p.fields.get(shard_field, 0)) & _MASK64) for p in packets),
        dtype=np.uint64, count=len(packets))
    return (key_hash(keys) % np.uint64(workers)).astype(np.int64)


# ---------------------------------------------------------------------------
# Worker execution + merge
# ---------------------------------------------------------------------------


def _run_partition(pipeline, packets, collect: bool, worker: int = 0,
                   shard_mode: str = "inline"):
    """Run one worker's packets; returns (count, busy_s, deltas, results).

    ``busy_s`` is the worker's *CPU* seconds for its partition, not wall
    time: on a host with fewer free cores than workers the forked
    children time-slice, and a child's wall clock would charge it for
    time spent descheduled. CPU seconds are what the makespan model
    (``packets / max(busy)``) needs — the completion time on a host
    where every worker gets a core.

    ``deltas`` maps register instance -> (changed_idx, payload) where
    the payload is delta values (additive) or new values (other
    classes), relative to the register state at call time.
    """
    registers = pipeline.registers
    before = {name: registers.get(name).dump() for name in registers.names()}
    start = time.process_time()
    with trace.span("pisa.worker.batch", worker=worker,
                    shard_mode=shard_mode) as span:
        result = pipeline._process_many(packets, collect, None)
        span.set_attrs(packets=len(packets))
    busy = time.process_time() - start
    obs_metrics.counter(
        "p4all_worker_packets_total",
        help="Packets executed inside worker processes.",
        labels=("worker", "shard_mode"),
    ).inc(len(packets), worker=worker, shard_mode=shard_mode)
    deltas: dict[str, tuple] = {}
    for name, snap in before.items():
        data = registers.get(name)._data
        changed = np.nonzero(data != snap)[0]
        if changed.size:
            # new - old in uint64 wraps mod 2**64: exactly the summed
            # increments for additive registers, and recoverable new
            # values for every class (parent keeps the payload raw).
            deltas[name] = (changed, data[changed] - snap[changed],
                            data[changed])
    count = result if isinstance(result, int) else len(result)
    results = result if collect else None
    return count, busy, deltas, results


def _merge_deltas(pipeline, classes: dict[str, str],
                  worker_deltas: list[dict]) -> None:
    """Fold per-worker register changes into the parent, in worker order."""
    registers = pipeline.registers
    for deltas in worker_deltas:
        for name, (idx, delta, new) in deltas.items():
            array = registers.get(name)
            kind = classes.get(name, "overwrite")
            if kind == "additive":
                array.merge_delta(idx, delta)
            elif kind in ("max", "min"):
                array.merge_extremum(idx, new, kind)
            else:
                array.overwrite_cells(idx, new)


def run_sharded(pipeline, packets, collect: bool, workers: int,
                shard_field: Optional[str] = None):
    """Partition ``packets`` by flow hash, run each shard in a forked
    worker, merge register deltas on join. Returns results (lane order
    preserved) or the packet count, and records per-worker stats on
    ``pipeline.last_shard_report``.
    """
    if not isinstance(packets, list):
        packets = list(packets)
    n = len(packets)
    if n == 0:
        pipeline.last_shard_report = {
            "workers": workers, "counts": [], "busy_seconds": [],
            "mode": "empty",
        }
        return [] if collect else 0
    # Deferred quiesce callbacks queued before the fan-out (e.g. by the
    # iterable that produced the packets) must fire at the worker-join
    # boundary, in the parent — never inside a worker, where their
    # effects would be discarded with the child process. Stash them so
    # forked children inherit an empty queue; restored below, they run
    # in process_many's end-of-batch drain, which follows the join.
    stash = pipeline._quiesce_pending[:]
    pipeline._quiesce_pending.clear()
    try:
        return _run_sharded_body(pipeline, packets, collect, workers,
                                 shard_field)
    finally:
        pipeline._quiesce_pending[:0] = stash


def _count_batch(mode: str) -> None:
    obs_metrics.counter(
        "p4all_shard_batches_total",
        help="Sharded process_many batches by execution mode actually used.",
        labels=("shard_mode",),
    ).inc(shard_mode=mode)


def _note_degraded(requested: str, actual: str, reason: str) -> None:
    """A parallel mode the caller asked for could not be honored."""
    trace.event("pisa.shard.degraded", requested=requested, actual=actual,
                reason=reason)
    obs_metrics.counter(
        "p4all_shard_degraded_total",
        help="Sharded batches that fell back from the requested mode.",
        labels=("shard_mode", "reason"),
    ).inc(shard_mode=actual, reason=reason)


_POOL_MISSED = object()


def _try_pool(pipeline, packets, collect, workers, shard_field, want):
    """Run the batch on the persistent pool, or return ``_POOL_MISSED``.

    Pool *attach* failures (no fork, dead spawn) degrade; failures
    *during* a pooled batch are real simulation errors and propagate.
    """
    from .pool import PoolUnavailable, ensure_pool

    vplan = pipeline.vplan
    if vplan is None or not vplan.ok:
        if want == "pool":
            _note_degraded(want, "fork", "no_vector_plan")
        return _POOL_MISSED
    try:
        pool = ensure_pool(pipeline, workers)
    except PoolUnavailable as exc:
        _note_degraded(want, "fork", f"pool_unavailable: {exc}")
        return _POOL_MISSED
    result, report = pool.run(pipeline, packets, collect, shard_field)
    report["requested_mode"] = want
    pipeline.last_shard_report = report
    _count_batch("pool")
    return result


def _run_sharded_body(pipeline, packets, collect, workers, shard_field):
    n = len(packets)
    # REPRO_PISA_SHARD_MODE picks the execution mode (see module doc):
    # auto prefers the persistent pool when the pipeline has a usable
    # vector plan, falling back fork -> inline; pool/fork/inline insist,
    # degrading loudly when the platform cannot honor them. inline is
    # also what the throughput benchmark uses to measure per-worker busy
    # seconds without fork copy-on-write noise.
    want = os.environ.get("REPRO_PISA_SHARD_MODE", "auto")
    if want not in SHARD_MODES:
        raise ValueError(
            f"REPRO_PISA_SHARD_MODE={want!r} is not one of {SHARD_MODES}")
    if want in ("auto", "pool"):
        result = _try_pool(pipeline, packets, collect, workers,
                           shard_field, want)
        if result is not _POOL_MISSED:
            return result
    assign = shard_assignments(packets, workers, shard_field)
    lanes = [np.nonzero(assign == w)[0] for w in range(workers)]
    shards = [[packets[i] for i in lane.tolist()] for lane in lanes]
    classes = classify_registers(pipeline)

    import multiprocessing as mp

    if want == "inline":
        ctx = None
    else:
        try:
            ctx = mp.get_context("fork")
        except ValueError:
            ctx = None
        if ctx is None:
            _note_degraded(want, "inline", "fork_unavailable")

    counts: list[int] = []
    busys: list[float] = []
    worker_deltas: list[dict] = []
    worker_results: list = []
    mode = "fork"
    if ctx is None:
        # No fork on this platform: run the partitions sequentially.
        # Same partitioning, same merge discipline, no parallelism.
        mode = "inline"
        for w, shard in enumerate(shards):
            before = {
                name: pipeline.registers.get(name).dump()
                for name in pipeline.registers.names()
            }
            count, busy, deltas, results = _run_partition(
                pipeline, shard, collect, worker=w, shard_mode="inline")
            # The partition already ran in-place; undo and re-apply via
            # the merge path so inline and fork joins are bit-identical.
            for name, snap in before.items():
                pipeline.registers.get(name)._data[:] = snap
            counts.append(count)
            busys.append(busy)
            worker_deltas.append(deltas)
            worker_results.append(results)
        _merge_deltas(pipeline, classes, worker_deltas)
    else:
        procs = []
        for w, shard in enumerate(shards):
            parent_conn, child_conn = ctx.Pipe(duplex=False)

            def child_main(conn=child_conn, shard=shard, w=w):
                try:
                    # Forked at batch time, so the inherited tracer
                    # state (enablement, epoch) is already the
                    # parent's; capture just needs a metrics baseline.
                    capture = WorkerObsCapture()
                    capture.begin()
                    payload = _run_partition(pipeline, shard, collect,
                                             worker=w, shard_mode="fork")
                    conn.send(("ok", payload + (capture.finish(),)))
                except BaseException as exc:  # surfaced in the parent
                    conn.send(("err", repr(exc)))
                finally:
                    conn.close()

            proc = ctx.Process(target=child_main, daemon=True)
            proc.start()
            child_conn.close()
            procs.append((proc, parent_conn))
        failures: list[str] = []
        for w, (proc, conn) in enumerate(procs):
            try:
                status, payload = conn.recv()
            except EOFError:
                status, payload = "err", "worker exited without a result"
            proc.join()
            if status != "ok":
                failures.append(str(payload))
                counts.append(0)
                busys.append(0.0)
                worker_deltas.append({})
                worker_results.append([] if collect else None)
                continue
            count, busy, deltas, results, obs_payload = payload
            merge_worker_obs(obs_payload, worker=w,
                             track=1_000_000 + w,
                             track_name=f"shard-worker-{w}")
            counts.append(count)
            busys.append(busy)
            worker_deltas.append(deltas)
            worker_results.append(results)
        if failures:
            from .interp import SimulationError

            raise SimulationError(
                f"sharded workers failed: {'; '.join(failures)}"
            )
        _merge_deltas(pipeline, classes, worker_deltas)
        pipeline.packets_processed += sum(counts)
    pipeline.last_shard_report = {
        "workers": workers,
        "counts": counts,
        "busy_seconds": busys,
        "mode": mode,
        "requested_mode": want,
        "register_classes": classes,
    }
    _count_batch(mode)
    if not collect:
        return n
    out: list = [None] * n
    for lane, results in zip(lanes, worker_results):
        for pos, i in enumerate(lane.tolist()):
            out[i] = results[pos]
    return out
