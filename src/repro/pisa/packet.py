"""Packet representation for the pipeline simulator.

A :class:`Packet` is a bag of named header fields (``"ipv4.src"``,
``"flow_id"``, ...) with unsigned integer values, plus bookkeeping the
applications use (arrival time, byte length, an opaque payload tag).
Parsing — in real PISA, the programmable parser populating the PHV — is
modeled by :class:`repro.pisa.pipeline.Parser`, which copies a declared
subset of these fields into PHV slots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field

__all__ = ["Packet", "make_flow_packets"]

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One packet entering the switch.

    ``fields`` maps header-field names to unsigned integers. ``length``
    is the wire length in bytes (used by byte-counting applications),
    ``timestamp`` an arbitrary monotonic arrival time.
    """

    fields: dict[str, int] = dc_field(default_factory=dict)
    length: int = 64
    timestamp: float = 0.0
    packet_id: int = dc_field(default_factory=lambda: next(_packet_ids))

    def field(self, name: str, default: int | None = None) -> int:
        """Read a header field; raises ``KeyError`` unless a default is given."""
        if default is None:
            return self.fields[name]
        return self.fields.get(name, default)

    def with_fields(self, **updates: int) -> "Packet":
        """Copy of this packet with some fields replaced."""
        merged = dict(self.fields)
        merged.update(updates)
        return Packet(fields=merged, length=self.length, timestamp=self.timestamp)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"Packet#{self.packet_id}({inner})"


def make_flow_packets(flow_id: int, count: int, start_time: float = 0.0,
                      length: int = 64, **extra_fields: int) -> list[Packet]:
    """Build ``count`` packets of one flow (convenience for tests)."""
    return [
        Packet(
            fields={"flow_id": flow_id, **extra_fields},
            length=length,
            timestamp=start_time + i,
        )
        for i in range(count)
    ]
