"""PISA data-plane model and simulator.

Implements the architecture of the paper's §2 (Figure 2/3): targets and
resource budgets (:mod:`resources`), packets and the PHV (:mod:`packet`,
:mod:`phv`), stateful registers (:mod:`registers`), match-action tables
(:mod:`tables`), hash units (:mod:`hashing`), ALU semantics (:mod:`alu`),
and the staged pipeline interpreter (:mod:`pipeline`) that executes
compiled P4All programs — the reproduction's substitute for the Tofino.
"""

from .alu import AluError, apply_binary, apply_unary
from .hashing import Crc32Hash, HashFunction, MultiplyShiftHash, hash_family
from .interp import ExecContext, SimulationError
from .packet import Packet, make_flow_packets
from .parser import Deparser, FieldSpec, PacketParser, ParseState
from .parser import ParseError as PacketParseError
from .phv import Phv, PhvError, PhvLayout
from .pipeline import (
    ENGINES,
    Pipeline,
    PipelineResult,
    ValidationError,
    default_engine,
)
from .plan import PipelinePlan, StagePlan, UnitPlan, plan_taint
from .registers import RegisterArray, RegisterError, RegisterFile
from .sharded import classify_registers, run_sharded, shard_assignments
from .targetspec import load_target, save_target, target_from_dict, target_to_dict
from .resources import (
    ActionCost,
    TargetSpec,
    get_target,
    small_target,
    tofino,
    toy_three_stage,
)
from .tables import MatchActionTable, TableEntry, TableError
from .vector import PhvBatch, VectorPlan

__all__ = [
    "AluError",
    "apply_binary",
    "apply_unary",
    "Crc32Hash",
    "HashFunction",
    "MultiplyShiftHash",
    "hash_family",
    "ExecContext",
    "SimulationError",
    "Packet",
    "make_flow_packets",
    "Deparser",
    "FieldSpec",
    "PacketParser",
    "ParseState",
    "PacketParseError",
    "Phv",
    "PhvError",
    "PhvLayout",
    "ENGINES",
    "Pipeline",
    "PipelineResult",
    "ValidationError",
    "default_engine",
    "PipelinePlan",
    "StagePlan",
    "UnitPlan",
    "plan_taint",
    "load_target",
    "save_target",
    "target_from_dict",
    "target_to_dict",
    "RegisterArray",
    "RegisterError",
    "RegisterFile",
    "classify_registers",
    "run_sharded",
    "shard_assignments",
    "VectorPlan",
    "PhvBatch",
    "ActionCost",
    "TargetSpec",
    "get_target",
    "small_target",
    "tofino",
    "toy_three_stage",
    "MatchActionTable",
    "TableEntry",
    "TableError",
]
