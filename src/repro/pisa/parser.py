"""Programmable packet parser and deparser (Figure 2's end caps).

A PISA switch fronts its pipeline with a programmable parser — a state
machine that walks the packet's bytes, extracts headers into the PHV,
and branches on select fields — and mirrors it with a deparser that
re-serializes the (possibly modified) headers.

The application harnesses in this repository mostly synthesize packets
with pre-parsed fields; this module closes the loop for end-to-end byte
traffic: :class:`PacketParser` turns raw bytes into a
:class:`~repro.pisa.packet.Packet` with named fields, and
:class:`Deparser` re-emits bytes after pipeline processing. A ready-made
Ethernet/IPv4/transport parse graph is provided.

Example::

    parser = PacketParser.ethernet_ipv4()
    packet = parser.parse(raw_bytes)
    result = pipeline.process(packet)
    out = Deparser(parser).emit(packet, overrides=result.phv)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .packet import Packet

__all__ = [
    "ParseError",
    "FieldSpec",
    "ParseState",
    "PacketParser",
    "Deparser",
]


class ParseError(Exception):
    """Truncated packet or no matching transition."""


@dataclass(frozen=True)
class FieldSpec:
    """One fixed-width field within a header (bit-granular)."""

    name: str
    bits: int


@dataclass
class ParseState:
    """A parser state: extract a header, then select the next state.

    ``select`` maps values of ``select_field`` (a field extracted by this
    or an earlier state) to next-state names; ``default`` handles
    unmatched values (``None`` = accept).
    """

    name: str
    header: str
    fields: list[FieldSpec]
    select_field: str | None = None
    select: dict[int, str] = field(default_factory=dict)
    default: str | None = None

    @property
    def header_bits(self) -> int:
        return sum(f.bits for f in self.fields)


class _BitReader:
    """MSB-first bit cursor over bytes."""

    def __init__(self, data: bytes):
        self.data = data
        self.bitpos = 0

    def read(self, bits: int) -> int:
        end = self.bitpos + bits
        if end > len(self.data) * 8:
            raise ParseError(
                f"packet truncated: need {end} bits, have {len(self.data) * 8}"
            )
        value = 0
        pos = self.bitpos
        while bits > 0:
            byte = self.data[pos // 8]
            offset = pos % 8
            take = min(8 - offset, bits)
            chunk = (byte >> (8 - offset - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            pos += take
            bits -= take
        self.bitpos = pos
        return value

    @property
    def consumed_bytes(self) -> int:
        return (self.bitpos + 7) // 8


class PacketParser:
    """A parse graph: named states, starting at ``start``."""

    def __init__(self, states: list[ParseState], start: str):
        self.states = {s.name: s for s in states}
        if start not in self.states:
            raise ParseError(f"unknown start state {start!r}")
        self.start = start
        for state in states:
            for nxt in list(state.select.values()) + (
                [state.default] if state.default else []
            ):
                if nxt is not None and nxt not in self.states:
                    raise ParseError(
                        f"state {state.name!r} references unknown state {nxt!r}"
                    )

    def parse(self, data: bytes, max_states: int = 32) -> Packet:
        """Walk the parse graph over ``data``; returns a field packet.

        Extracted fields are named ``<header>.<field>``; the payload
        length (unparsed remainder) lands in ``payload_len``.
        """
        reader = _BitReader(data)
        fields: dict[str, int] = {}
        state_name: str | None = self.start
        visited = 0
        while state_name is not None:
            visited += 1
            if visited > max_states:
                raise ParseError("parse graph did not terminate (loop?)")
            state = self.states[state_name]
            for spec in state.fields:
                fields[f"{state.header}.{spec.name}"] = reader.read(spec.bits)
            if state.select_field is None:
                state_name = state.default
                continue
            key = fields.get(state.select_field)
            if key is None:
                raise ParseError(
                    f"state {state.name!r} selects on unextracted field "
                    f"{state.select_field!r}"
                )
            state_name = state.select.get(key, state.default)
        fields["payload_len"] = max(len(data) - reader.consumed_bytes, 0)
        return Packet(fields=fields, length=len(data))

    # -- stock parse graphs ---------------------------------------------------
    @classmethod
    def ethernet_ipv4(cls) -> "PacketParser":
        """Ethernet → IPv4 → {TCP, UDP} parse graph."""
        ethernet = ParseState(
            name="ethernet",
            header="eth",
            fields=[
                FieldSpec("dst", 48),
                FieldSpec("src", 48),
                FieldSpec("ethertype", 16),
            ],
            select_field="eth.ethertype",
            select={0x0800: "ipv4"},
            default=None,
        )
        ipv4 = ParseState(
            name="ipv4",
            header="ipv4",
            fields=[
                FieldSpec("version", 4),
                FieldSpec("ihl", 4),
                FieldSpec("tos", 8),
                FieldSpec("total_len", 16),
                FieldSpec("identification", 16),
                FieldSpec("flags", 3),
                FieldSpec("frag_offset", 13),
                FieldSpec("ttl", 8),
                FieldSpec("protocol", 8),
                FieldSpec("checksum", 16),
                FieldSpec("src", 32),
                FieldSpec("dst", 32),
            ],
            select_field="ipv4.protocol",
            select={6: "tcp", 17: "udp"},
            default=None,
        )
        tcp = ParseState(
            name="tcp",
            header="tcp",
            fields=[
                FieldSpec("sport", 16),
                FieldSpec("dport", 16),
                FieldSpec("seq", 32),
                FieldSpec("ack", 32),
                FieldSpec("offset_flags", 16),
                FieldSpec("window", 16),
                FieldSpec("checksum", 16),
                FieldSpec("urgent", 16),
            ],
        )
        udp = ParseState(
            name="udp",
            header="udp",
            fields=[
                FieldSpec("sport", 16),
                FieldSpec("dport", 16),
                FieldSpec("length", 16),
                FieldSpec("checksum", 16),
            ],
        )
        return cls([ethernet, ipv4, tcp, udp], start="ethernet")


class _BitWriter:
    def __init__(self):
        self.bits: list[int] = []

    def write(self, value: int, bits: int) -> None:
        for i in range(bits - 1, -1, -1):
            self.bits.append((value >> i) & 1)

    def to_bytes(self) -> bytes:
        out = bytearray()
        for i in range(0, len(self.bits), 8):
            chunk = self.bits[i:i + 8]
            chunk += [0] * (8 - len(chunk))
            byte = 0
            for bit in chunk:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class Deparser:
    """Re-serialize a parsed packet along the same parse path."""

    def __init__(self, parser: PacketParser):
        self.parser = parser

    def emit(self, packet: Packet, overrides: dict[str, int] | None = None,
             payload: bytes = b"") -> bytes:
        """Emit header bytes for ``packet`` (+ optional field overrides
        from pipeline output and a payload)."""
        merged = dict(packet.fields)
        for key, value in (overrides or {}).items():
            # Pipeline PHV keys may be prefixed ("hdr.ipv4.ttl"); accept
            # both forms.
            if key.startswith("hdr."):
                key = key[len("hdr."):]
            if key in merged:
                merged[key] = value
        writer = _BitWriter()
        state_name: str | None = self.parser.start
        visited = 0
        while state_name is not None:
            visited += 1
            if visited > 64:
                raise ParseError("deparse loop")
            state = self.parser.states[state_name]
            if not all(
                f"{state.header}.{spec.name}" in merged for spec in state.fields
            ):
                break  # this header was never parsed for this packet
            for spec in state.fields:
                writer.write(
                    int(merged[f"{state.header}.{spec.name}"]) & ((1 << spec.bits) - 1),
                    spec.bits,
                )
            if state.select_field is None:
                state_name = state.default
                continue
            state_name = state.select.get(
                int(merged.get(state.select_field, -1)), state.default
            )
        return writer.to_bytes() + payload
