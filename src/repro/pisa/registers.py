"""Stateful register arrays.

Registers are the only cross-packet state in a PISA stage (§2). Each
:class:`RegisterArray` is a vector of fixed-width unsigned cells with
wraparound arithmetic. The supported operations mirror the stateful-ALU
patterns real targets provide (read, write, read-add-write,
min/max-update) — each costs one stateful ALU in the resource model.

Indices are reduced modulo the array size: the compiler sizes hash ranges
to the array, and the hardware equivalent is the hash unit's output width;
the modulo here makes the simulator total rather than trapping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RegisterArray", "RegisterFile", "RegisterError"]


class RegisterError(Exception):
    """Bad register construction or access."""


class RegisterArray:
    """A vector of ``cells`` unsigned integers, each ``width`` bits wide."""

    def __init__(self, name: str, cells: int, width: int):
        if cells <= 0:
            raise RegisterError(f"register {name!r}: cell count must be positive")
        if not 1 <= width <= 64:
            raise RegisterError(f"register {name!r}: width must be in [1, 64]")
        self.name = name
        self.cells = cells
        self.width = width
        self.mask = (1 << width) - 1
        self._data = np.zeros(cells, dtype=np.uint64)

    @property
    def size_bits(self) -> int:
        """Memory footprint in bits (what counts against the stage's M)."""
        return self.cells * self.width

    def _index(self, idx: int) -> int:
        return int(idx) % self.cells

    # -- stateful operations -------------------------------------------------
    def read(self, idx: int) -> int:
        return int(self._data[self._index(idx)])

    def write(self, idx: int, value: int) -> None:
        self._data[self._index(idx)] = np.uint64(int(value) & self.mask)

    def add(self, idx: int, amount: int = 1) -> int:
        """Read-add-write; returns the post-increment value."""
        i = self._index(idx)
        new = (int(self._data[i]) + int(amount)) & self.mask
        self._data[i] = np.uint64(new)
        return new

    def max_update(self, idx: int, value: int) -> int:
        """Keep the maximum of the cell and ``value``; returns the result."""
        i = self._index(idx)
        new = max(int(self._data[i]), int(value) & self.mask)
        self._data[i] = np.uint64(new)
        return new

    def min_update(self, idx: int, value: int) -> int:
        """Keep the minimum of the cell and ``value``; returns the result."""
        i = self._index(idx)
        new = min(int(self._data[i]), int(value) & self.mask)
        self._data[i] = np.uint64(new)
        return new

    def swap(self, idx: int, value: int) -> int:
        """Write ``value``, returning the previous cell contents."""
        i = self._index(idx)
        old = int(self._data[i])
        self._data[i] = np.uint64(int(value) & self.mask)
        return old

    def cond_add(self, idx: int, condition: bool, amount: int = 1) -> int:
        """Predicated increment (stateful-ALU conditional update)."""
        if condition:
            return self.add(idx, amount)
        return self.read(idx)

    # -- bulk helpers (control plane / tests) ----------------------------------
    def clear(self) -> None:
        self._data.fill(0)

    def dump(self) -> np.ndarray:
        """Copy of the raw cell values."""
        return self._data.copy()

    def nonzero_cells(self) -> int:
        """Occupied (non-zero) cells — the runtime monitor's occupancy signal."""
        return int(np.count_nonzero(self._data))

    @property
    def occupancy(self) -> float:
        """Fraction of cells holding a non-zero value."""
        return self.nonzero_cells() / self.cells

    def merge_delta(self, idx, delta) -> None:
        """Fold per-cell deltas into the array: ``cell += delta`` mod
        2**64, re-masked. ``idx``/``delta`` are parallel arrays. This is
        the join step for additively-used registers under sharded
        execution: because counter addition commutes, summing each
        worker's wrapped delta reproduces the sequential state exactly.
        """
        idx = np.asarray(idx, dtype=np.int64)
        delta = np.asarray(delta, dtype=np.uint64)
        self._data[idx] = (self._data[idx] + delta) & np.uint64(self.mask)

    def merge_extremum(self, idx, values, kind: str) -> None:
        """Merge ``values`` into cells via ``max``/``min`` — the exact
        join for registers touched only by ``max_update``/``min_update``.
        """
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values, dtype=np.uint64)
        op = np.maximum if kind == "max" else np.minimum
        self._data[idx] = op(self._data[idx], values)

    def overwrite_cells(self, idx, values) -> None:
        """Replace the named cells wholesale (last-writer-wins join)."""
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values, dtype=np.uint64)
        self._data[idx] = values & np.uint64(self.mask)

    def load(self, values) -> None:
        arr = np.asarray(values, dtype=np.uint64)
        if arr.shape != (self.cells,):
            raise RegisterError(
                f"register {self.name!r}: load shape {arr.shape} != ({self.cells},)"
            )
        # In place, never a reassignment: compiled execution plans bind
        # this buffer directly, and a control-plane load (state
        # migration) must stay visible to them.
        self._data[:] = arr & np.uint64(self.mask)

    def __repr__(self) -> str:
        return f"RegisterArray({self.name!r}, cells={self.cells}, width={self.width})"


class RegisterFile:
    """All register arrays of a pipeline, keyed by instance name.

    Instance names are concrete (post-layout): an elastic declaration
    ``register<bit<32>>[cols][rows] cms`` with rows = 2 yields instances
    ``cms[0]`` and ``cms[1]``.
    """

    def __init__(self):
        self._arrays: dict[str, RegisterArray] = {}
        self._stage_of: dict[str, int] = {}

    def create(self, name: str, cells: int, width: int, stage: int) -> RegisterArray:
        if name in self._arrays:
            raise RegisterError(f"register instance {name!r} created twice")
        array = RegisterArray(name, cells, width)
        self._arrays[name] = array
        self._stage_of[name] = stage
        return array

    def get(self, name: str) -> RegisterArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise RegisterError(f"no register instance named {name!r}") from None

    def stage_of(self, name: str) -> int:
        return self._stage_of[name]

    def in_stage(self, stage: int) -> list[RegisterArray]:
        return [self._arrays[n] for n, s in self._stage_of.items() if s == stage]

    def names(self) -> list[str]:
        return list(self._arrays)

    def clear_all(self) -> None:
        for array in self._arrays.values():
            array.clear()

    def memory_bits_in_stage(self, stage: int) -> int:
        return sum(a.size_bits for a in self.in_stage(stage))

    # -- state migration hooks (elastic runtime) -------------------------------
    def export_state(self) -> dict[str, np.ndarray]:
        """Snapshot every array's contents, keyed by instance name.

        The elastic runtime's state migrator exports the old layout's
        registers before a hot swap; the snapshot is also the rollback
        image if the swapped layout fails validation.
        """
        return {name: array.dump() for name, array in self._arrays.items()}

    def import_state(self, state: dict[str, np.ndarray],
                     strict: bool = False) -> list[str]:
        """Load a prior :meth:`export_state` snapshot into matching arrays.

        Arrays absent from the snapshot keep their contents; snapshot
        entries with no same-shaped array here are skipped (the new
        layout may have fewer rows or different sizes — cross-geometry
        remapping is the migrator's job, not this hook's). Returns the
        names actually loaded. With ``strict=True``, any skip raises.
        """
        loaded: list[str] = []
        for name, values in state.items():
            array = self._arrays.get(name)
            if array is None or array.cells != len(values):
                if strict:
                    raise RegisterError(
                        f"import_state: no matching array for {name!r} "
                        f"({len(values)} cells)"
                    )
                continue
            array.load(values)
            loaded.append(name)
        return loaded

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __len__(self) -> int:
        return len(self._arrays)
