"""The staged PISA pipeline simulator.

This is the reproduction's stand-in for the Barefoot Tofino (see
DESIGN.md §2): it loads a :class:`~repro.core.program.CompiledProgram`
— the stage mapping, register allocation, and symbolic assignment the
P4All compiler produced — validates it against the target's resource
model, and executes packets through it with faithful feed-forward
semantics:

* each stage's units read the stage-entry PHV snapshot and commit their
  writes at stage exit;
* registers live in exactly one stage and are only touched there;
* per-stage ALU, memory, hash-unit, and PHV budgets are re-checked at
  load time (defense in depth over the ILP's constraints).

Applications drive it through :meth:`Pipeline.process` and the
control-plane helpers (:meth:`table_add`, :meth:`register_dump`, ...).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..lang import ast
from ..lang.symbols import eval_static
from ..obs import flight
from ..obs import metrics as obs_metrics
from ..obs import trace
from .hashing import hash_family
from .interp import ExecContext, SimulationError, eval_expr, exec_unit_body
from .packet import Packet
from .phv import PhvLayout
from .registers import RegisterFile
from .resources import TargetSpec
from .tables import MatchActionTable, TableEntry

__all__ = ["Pipeline", "PipelineResult", "ValidationError",
           "ENGINES", "default_engine"]

#: Available execution engines: the compile-once plan engine (see
#: repro.pisa.compiled), the columnar whole-batch engine (see
#: repro.pisa.vector — scalar plan for single packets, struct-of-arrays
#: kernels for process_many), and the tree-walking reference interpreter.
ENGINES = ("compiled", "vector", "interp")


def default_engine() -> str:
    """Engine used when ``Pipeline(engine=None)``: the ``REPRO_PISA_ENGINE``
    environment variable, or ``"compiled"``."""
    engine = os.environ.get("REPRO_PISA_ENGINE", ENGINES[0])
    if engine not in ENGINES:
        raise ValueError(
            f"REPRO_PISA_ENGINE={engine!r} is not one of {ENGINES}"
        )
    return engine


def default_workers() -> int:
    """Sharded worker count used when a serving path gets ``workers=None``:
    the ``REPRO_PISA_WORKERS`` environment variable, or 1."""
    return max(1, int(os.environ.get("REPRO_PISA_WORKERS", "1")))


def default_serve_batch() -> int:
    """Serving sub-batch size used when a serving path gets
    ``serve_batch=None`` without an explicit config: the
    ``REPRO_PISA_SERVE_BATCH`` environment variable, or 0 (streaming)."""
    return max(0, int(os.environ.get("REPRO_PISA_SERVE_BATCH", "0")))


class ValidationError(Exception):
    """The compiled layout violates the target's resource model."""


@dataclass
class PipelineResult:
    """Per-packet outcome: final PHV values and table hit flags."""

    phv: dict[str, int]
    table_hits: dict[str, bool] = field(default_factory=dict)

    def get(self, key: str, default: int = 0) -> int:
        return self.phv.get(key, default)

    def hit(self, table: str) -> bool:
        return self.table_hits.get(table, False)


class Pipeline:
    """Executable pipeline built from a compiled program."""

    def __init__(self, compiled, hash_kind: str = "multiply-shift",
                 validate: bool = True, meta_prefix: str = "meta",
                 engine: str | None = None):
        self.compiled = compiled
        self.target: TargetSpec = compiled.target
        self.info = compiled.info
        self.meta_prefix = meta_prefix
        self._hash_factory = hash_family(hash_kind)
        self._hash_fns: dict[int, object] = {}
        self._static_env = dict(self.info.consts)
        self._static_env.update(compiled.symbol_values)

        self.phv_layout = self._build_phv_layout()
        self.registers = self._build_registers()
        self.tables = self._build_tables()
        self._stage_units = self._organize_units()
        self.packets_processed = 0
        self._packet_keys: dict[str, str] = {}
        self._in_batch = False
        self._quiesce_pending: list = []
        self.engine = engine if engine is not None else default_engine()
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"choose one of {ENGINES}")
        self.plan = None
        self._plan_run = None
        self.vplan = None
        #: Max packets per whole-batch vector kernel invocation; chunk
        #: boundaries are also quiesce drain points.
        self.vector_chunk = 8192
        #: Stats of the last sharded process_many (see repro.pisa.sharded).
        self.last_shard_report = None
        #: Persistent sharded worker pool (see repro.pisa.pool), attached
        #: lazily by the first pooled workers>1 batch, torn down by close().
        self._pool = None
        if self.engine in ("compiled", "vector"):
            from .compiled import build_plan

            self.plan = build_plan(self)
            self._plan_run = self.plan.fast_run or self.plan.run
        if self.engine == "vector":
            from .vector import VectorPlan

            try:
                self.vplan = VectorPlan(self)
            except Exception:
                # The scalar plan is always valid; batches just lose the
                # columnar fast path.
                self.vplan = None
        if validate:
            self.validate()
        self._export_occupancy_metrics()

    # -- construction ---------------------------------------------------------
    def _build_phv_layout(self) -> PhvLayout:
        layout = PhvLayout(self.target.phv_bits)
        for fd in self.info.metadata.values():
            base = f"{self.meta_prefix}.{fd.name}"
            if fd.array_size is None:
                layout.allocate(base, fd.width)
                continue
            count = int(eval_static(fd.array_size, self._static_env))
            for i in range(count):
                layout.allocate(f"{base}[{i}]", fd.width)
        for name, width in self.info.header_fields.items():
            layout.allocate(f"hdr.{name}", width)
        return layout

    def _build_registers(self) -> RegisterFile:
        regs = RegisterFile()
        for alloc in self.compiled.registers:
            regs.create(
                name=f"{alloc.family}[{alloc.index}]",
                cells=alloc.cells,
                width=alloc.width,
                stage=alloc.stage,
            )
        return regs

    def _build_tables(self) -> dict[str, MatchActionTable]:
        from ..analysis.ir import field_key

        tables: dict[str, MatchActionTable] = {}
        for name, decl in self.info.tables.items():
            keys = [field_key(k.expr, self.info.consts) for k in decl.keys]
            kinds = [k.match_kind for k in decl.keys]
            size = 1024
            if decl.size is not None:
                size = int(eval_static(decl.size, self._static_env))
            tables[name] = MatchActionTable(
                name=name,
                key_fields=keys,
                match_kinds=kinds,
                size=size,
                default_action=decl.default_action,
            )
        return tables

    def _organize_units(self) -> list[list]:
        stages: list[list] = [[] for _ in range(self.target.stages)]
        for unit in self.compiled.units:
            stages[unit.stage].append(unit)
        return stages

    # -- validation -------------------------------------------------------------
    def resource_occupancy(self) -> list[dict[str, int]]:
        """Per-stage resource usage of this layout on its target.

        One dict per physical stage with ``memory_bits`` (registers plus
        match-action table memory), ``stateful_alus``, ``stateless_alus``,
        ``hash_units``, and ``units`` (allocated structure instances).
        This is the same accounting :meth:`validate` enforces and the
        observability layer exports as per-stage gauges.
        """
        from ..core.tablemem import table_memory_bits

        target = self.target
        stages: list[dict[str, int]] = []
        for stage in range(target.stages):
            mem = self.registers.memory_bits_in_stage(stage)
            stateful = stateless = hashes = 0
            for unit in self._stage_units[stage]:
                if unit.instance.table is not None:
                    mem += table_memory_bits(
                        self.info.tables[unit.instance.table], self.info
                    )
                cost = unit.instance.cost
                stateful += target.hf(cost)
                stateless += target.hl(cost)
                hashes += cost.hash_ops
            stages.append({
                "memory_bits": mem,
                "stateful_alus": stateful,
                "stateless_alus": stateless,
                "hash_units": hashes,
                "units": len(self._stage_units[stage]),
            })
        return stages

    _OCCUPANCY_GAUGES = (
        ("memory_bits", "p4all_stage_memory_bits",
         "Register + table memory bits allocated in the stage."),
        ("stateful_alus", "p4all_stage_stateful_alus",
         "Stateful ALUs consumed in the stage."),
        ("stateless_alus", "p4all_stage_stateless_alus",
         "Stateless ALUs consumed in the stage."),
        ("hash_units", "p4all_stage_hash_units",
         "Hash units consumed in the stage."),
    )

    def _export_occupancy_metrics(self) -> None:
        """Publish per-stage occupancy gauges (latest built pipeline wins)."""
        for stage, occ in enumerate(self.resource_occupancy()):
            for key, metric, help_text in self._OCCUPANCY_GAUGES:
                obs_metrics.gauge(
                    metric, help=help_text, labels=("stage",),
                ).set(occ[key], stage=str(stage))

    def validate(self) -> None:
        """Re-check every per-stage resource budget against the layout."""
        target = self.target
        if self.phv_layout.used_bits > target.phv_bits:  # pragma: no cover
            raise ValidationError("PHV allocation exceeds capacity")
        for stage, occ in enumerate(self.resource_occupancy()):
            if occ["memory_bits"] > target.memory_bits_per_stage:
                raise ValidationError(
                    f"stage {stage}: {occ['memory_bits']} register bits exceed "
                    f"{target.memory_bits_per_stage}"
                )
            if occ["stateful_alus"] > target.stateful_alus_per_stage:
                raise ValidationError(
                    f"stage {stage}: {occ['stateful_alus']} stateful ALUs exceed "
                    f"{target.stateful_alus_per_stage}"
                )
            if occ["stateless_alus"] > target.stateless_alus_per_stage:
                raise ValidationError(
                    f"stage {stage}: {occ['stateless_alus']} stateless ALUs exceed "
                    f"{target.stateless_alus_per_stage}"
                )
            if occ["hash_units"] > target.hash_units_per_stage:
                raise ValidationError(
                    f"stage {stage}: {occ['hash_units']} hash ops exceed "
                    f"{target.hash_units_per_stage} hash units"
                )
        # Registers must be accessed only from their own stage.
        for unit in self.compiled.units:
            for fam, idx in unit.instance.registers:
                reg_stage = self.registers.stage_of(f"{fam}[{idx}]")
                if reg_stage != unit.stage:
                    raise ValidationError(
                        f"unit {unit.label} in stage {unit.stage} touches register "
                        f"{fam}[{idx}] living in stage {reg_stage}"
                    )

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Tear down the persistent sharded worker pool, if any.

        Reaps the pool's worker processes and releases its shared-memory
        segments. Safe at any time: called mid-batch (e.g. from a
        :meth:`process_many` callback) the teardown is deferred to the
        next :meth:`quiesce` drain point, never racing in-flight
        workers. Idempotent, and the pipeline stays usable — the next
        ``workers > 1`` batch just spawns a fresh pool. ``with
        Pipeline(...) as pipe:`` closes on exit.
        """
        self.quiesce(self._close_pool)

    def _close_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- control plane -------------------------------------------------------------
    def _journal_table_op(self, op: tuple) -> None:
        """Forward a table mutation to the pool's replay journal, so its
        workers' cached vector plans are invalidated and re-lowered at
        the next batch instead of forcing a respawn."""
        pool = self._pool
        if pool is not None and pool.alive:
            pool.note_table_op(op, self)

    def table_add(self, table: str, match: tuple, action: str,
                  action_data: tuple = (), priority: int = 0) -> None:
        """Install a match-action rule (control-plane operation)."""
        self.tables[table].add_entry(
            TableEntry(match=match, action=action,
                       action_data=action_data, priority=priority)
        )
        self._journal_table_op(("add", table, match, action,
                                action_data, priority))

    def table_remove(self, table: str, match: tuple) -> bool:
        removed = self.tables[table].remove_entry(match)
        if removed:
            self._journal_table_op(("remove", table, match))
        return removed

    def table_clear(self, table: str) -> None:
        self.tables[table].clear()
        self._journal_table_op(("clear", table))

    def register_dump(self, family: str, index: int = 0):
        """Read a whole register array (control-plane snapshot)."""
        return self.registers.get(f"{family}[{index}]").dump()

    def register_clear_all(self) -> None:
        self.registers.clear_all()

    def hash_value(self, seed: int, *values: int, width: int) -> int:
        """Compute the same hash the data plane uses (for controllers that
        must install state at the index a packet will probe)."""
        fn = self._hash_fns.get(seed)
        if fn is None:
            fn = self._hash_factory(seed)
            self._hash_fns[seed] = fn
        return fn(*values, width=width)

    # -- quiesce points ---------------------------------------------------------
    @property
    def in_batch(self) -> bool:
        """True while a :meth:`process_many` batch is in flight."""
        return self._in_batch

    def quiesce(self, fn=None):
        """Run ``fn()`` at a point where no packet is mid-pipeline.

        Register state is only consistent *between* packets (and between
        the paired control-plane writes a batch callback makes), so bulk
        readers — snapshots, migration — must not touch the register
        file at an arbitrary moment of a running batch. ``quiesce``
        gives them a defined drain point:

        * with no batch in flight, ``fn`` runs immediately and its
          result is returned;
        * called from inside a batch (e.g. a :meth:`process_many`
          callback), ``fn`` is deferred to the next inter-packet drain
          boundary — after the current packet *and* its callback have
          fully completed, before the next packet enters the pipeline —
          and ``None`` is returned;
        * ``fn=None`` is a barrier probe: it returns ``True`` when
          already at a quiesce point, ``False`` when the call was made
          mid-batch (nothing is scheduled).
        """
        if fn is None:
            return not self._in_batch
        if not self._in_batch:
            return fn()
        self._quiesce_pending.append(fn)
        return None

    def _drain_quiesce(self) -> None:
        """Run deferred quiesce callbacks (at an inter-packet boundary).

        The pipeline reads as quiesced while they run: a callback *is*
        at a drain point, so nested :meth:`quiesce` calls (and snapshot
        guards keyed on :attr:`in_batch`) execute immediately.
        """
        was_in_batch = self._in_batch
        self._in_batch = False
        try:
            while self._quiesce_pending:
                self._quiesce_pending.pop(0)()
        finally:
            self._in_batch = was_in_batch

    # -- data plane -------------------------------------------------------------
    def _packet_key(self, name: str) -> str:
        """Resolve a packet field name to its PHV key (cached)."""
        key = self._packet_keys.get(name)
        if key is not None:
            return key
        meta_key = f"{self.meta_prefix}.{name}"
        hdr_key = f"hdr.{name}"
        if meta_key in self.phv_layout:
            key = meta_key
        elif hdr_key in self.phv_layout:
            key = hdr_key
        else:
            raise SimulationError(
                f"packet field {name!r} matches no metadata or header field"
            )
        self._packet_keys[name] = key
        return key

    def _load_packet(self, packet: Packet) -> dict[str, int]:
        resolve = self._packet_key
        return {resolve(name): int(value)
                for name, value in packet.fields.items()}

    def process(self, packet: Packet) -> PipelineResult:
        """Run one packet through all stages; returns the final PHV.

        Dispatches to the configured engine: ``"compiled"`` executes the
        pre-lowered plan (see :mod:`repro.pisa.compiled`), ``"interp"``
        walks the AST — the reference semantics the differential tests
        hold the plan engine to.
        """
        if self.plan is not None:
            return self._process_compiled(packet)
        return self._process_interp(packet)

    def _process_compiled(self, packet: Packet) -> PipelineResult:
        masks = self.plan.masks
        resolve = self._packet_key
        phv: dict[str, int] = {}
        for name, value in packet.fields.items():
            key = resolve(name)
            phv[key] = int(value) & masks[key]
        table_hits: dict[str, bool] = {}
        self._plan_run(phv, table_hits)
        self.packets_processed += 1
        return PipelineResult(phv=phv, table_hits=table_hits)

    def _process_interp(self, packet: Packet) -> PipelineResult:
        phv = self.phv_layout.instantiate()
        phv.load(self._load_packet(packet))
        table_hits: dict[str, bool] = {}

        for stage in range(self.target.stages):
            units = self._stage_units[stage]
            if not units:
                continue
            snapshot = phv.snapshot()
            commits: dict[str, tuple[int, str]] = {}
            for unit in units:
                ctx = ExecContext(
                    snapshot=snapshot,
                    registers=self.registers,
                    tables=self.tables,
                    hash_fns=self._hash_fns,
                    hash_factory=self._hash_factory,
                    actions=self.info.actions,
                    consts=self.info.consts,
                )
                ran = exec_unit_body(
                    unit.instance.body, unit.instance.guard,
                    unit.instance.table, ctx,
                )
                table_hits.update(ctx.table_hits)
                if not ran:
                    continue
                for key, value in ctx.local_writes.items():
                    prior = commits.get(key)
                    if prior is not None and prior[0] != value:
                        raise SimulationError(
                            f"stage {stage}: units {prior[1]!r} and "
                            f"{unit.label!r} write different values to {key!r}"
                        )
                    commits[key] = (value, unit.label)
            for key, (value, _who) in commits.items():
                phv.set(key, value)
        self.packets_processed += 1
        return PipelineResult(phv=phv.snapshot(), table_hits=table_hits)

    def process_many(self, packets, collect: bool = True, callback=None,
                     workers: int = 1,
                     shard_field: str | None = None
                     ) -> list[PipelineResult] | int:
        """Run a packet sequence through the pipeline (batched fast path).

        Three modes:

        * default (``collect=True``): returns the per-packet
          :class:`PipelineResult` list — fine for test-scale runs, but it
          materializes every result; trace-scale callers should prefer
          one of the streaming modes below;
        * ``callback=fn``: streams each result to ``fn(result)`` as it is
          produced and returns the packet count — the controller can act
          between packets (promotion, eviction) without a result list
          ever existing;
        * ``collect=False`` (no callback): discards results entirely and
          returns the packet count — for workloads that only care about
          the register state left behind.

        Each call is one ``pisa.batch`` span and one bump of the
        ``p4all_packets_total`` counter; the per-packet :meth:`process`
        path carries no instrumentation at all, so batch size sets the
        observability overhead.

        While the batch runs, :attr:`in_batch` is True and bulk register
        reads must go through :meth:`quiesce`, whose callbacks drain at
        the inter-packet boundaries of this loop (after each packet and
        its callback complete) and once more when the batch ends. Under
        the vector engine the drain points are chunk boundaries
        (:attr:`vector_chunk` packets apart); under ``workers > 1`` the
        only drain point is the worker-join barrier at batch end.

        ``workers > 1`` fans the batch out to forked worker processes
        partitioned by flow-hash sharding (``shard_field`` picks the
        key; default ``flow_id``/first field), merging per-worker
        register deltas on join — see :mod:`repro.pisa.sharded` for the
        merge-exactness rules. Sharding is incompatible with
        ``callback`` (the controller would race its own workers).
        """
        if workers > 1 and callback is not None:
            raise ValueError("process_many: workers > 1 cannot stream "
                             "through a callback")
        with trace.span("pisa.batch", engine=self.engine,
                        workers=workers) as span:
            self._in_batch = True
            try:
                result = self._process_many(packets, collect, callback,
                                            workers, shard_field)
            finally:
                self._in_batch = False
                self._drain_quiesce()
            count = result if isinstance(result, int) else len(result)
            span.set_attrs(packets=count)
            obs_metrics.counter(
                "p4all_packets_total",
                help="Packets processed through batched pipeline runs.",
                labels=("engine",),
            ).inc(count, engine=self.engine)
            flight.note("batch", "pisa.batch", engine=self.engine,
                        workers=workers, packets=count)
            return result

    def _process_many(self, packets, collect: bool, callback,
                      workers: int = 1,
                      shard_field: str | None = None
                      ) -> list[PipelineResult] | int:
        pending = self._quiesce_pending
        if workers > 1:
            from .sharded import run_sharded

            return run_sharded(self, packets, collect, workers, shard_field)
        if callback is None and self.vplan is not None and self.vplan.ok:
            return self._process_vector(packets, collect)
        if callback is not None:
            count = 0
            for packet in packets:
                callback(self.process(packet))
                count += 1
                if pending:
                    self._drain_quiesce()
            return count
        if collect:
            results = []
            for packet in packets:
                results.append(self.process(packet))
                if pending:
                    self._drain_quiesce()
            return results
        count = 0
        for packet in packets:
            self.process(packet)
            count += 1
            if pending:
                self._drain_quiesce()
        return count

    def _process_vector(self, packets,
                        collect: bool) -> list[PipelineResult] | int:
        """Whole-batch columnar execution, chunked so deferred quiesce
        callbacks still get periodic drain points."""
        if not isinstance(packets, list):
            packets = list(packets)
        pending = self._quiesce_pending
        chunk = max(1, int(self.vector_chunk))
        run_batch = self.vplan.run_batch
        if collect:
            results: list[PipelineResult] = []
            for start in range(0, len(packets), chunk):
                results.extend(run_batch(packets[start:start + chunk], True))
                if pending:
                    self._drain_quiesce()
            return results
        count = 0
        for start in range(0, len(packets), chunk):
            count += run_batch(packets[start:start + chunk], False)
            if pending:
                self._drain_quiesce()
        return count
