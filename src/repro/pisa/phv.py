"""Packet Header Vector (PHV) model.

The PHV carries parsed header fields and per-packet metadata through the
pipeline (§2). Fields are fixed-width unsigned integers with wraparound
semantics; total allocated width is bounded by the target's ``P``.

Two layers:

* :class:`PhvLayout` — the static allocation (field name → width), built
  once per compiled program; enforces the P budget.
* :class:`Phv` — a per-packet instance holding current values.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhvLayout", "Phv", "PhvError"]


class PhvError(Exception):
    """Allocation overflow or access to an undeclared field."""


@dataclass(frozen=True)
class _Slot:
    name: str
    width: int
    offset: int

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


class PhvLayout:
    """Static PHV field allocation with a total-bits budget."""

    def __init__(self, capacity_bits: int):
        if capacity_bits <= 0:
            raise PhvError("PHV capacity must be positive")
        self.capacity_bits = capacity_bits
        self._slots: dict[str, _Slot] = {}
        self._used = 0

    def allocate(self, name: str, width: int) -> None:
        """Reserve ``width`` bits for field ``name``."""
        if width <= 0:
            raise PhvError(f"field {name!r}: width must be positive, got {width}")
        if name in self._slots:
            raise PhvError(f"field {name!r} allocated twice")
        if self._used + width > self.capacity_bits:
            raise PhvError(
                f"PHV overflow allocating {name!r} ({width} b): "
                f"{self._used}/{self.capacity_bits} bits already in use"
            )
        self._slots[name] = _Slot(name, width, self._used)
        self._used += width

    def width(self, name: str) -> int:
        return self._slot(name).width

    def _slot(self, name: str) -> _Slot:
        try:
            return self._slots[name]
        except KeyError:
            raise PhvError(f"PHV field {name!r} was never allocated") from None

    def width_masks(self) -> dict[str, int]:
        """Field name -> ``(1 << width) - 1`` for every allocated field.

        Execution engines (compiled plans, the vector engine's columnar
        batches) key their commit masks off this map instead of probing
        ``width()`` per field.
        """
        return {name: slot.mask for name, slot in self._slots.items()}

    @property
    def used_bits(self) -> int:
        return self._used

    @property
    def fields(self) -> list[str]:
        return list(self._slots)

    def __contains__(self, name: str) -> bool:
        return name in self._slots

    def instantiate(self) -> "Phv":
        return Phv(self)


class Phv:
    """A per-packet PHV instance: field values under a layout."""

    __slots__ = ("layout", "_values")

    def __init__(self, layout: PhvLayout):
        self.layout = layout
        self._values: dict[str, int] = {}

    def get(self, name: str) -> int:
        """Current value of a field (unset fields read as 0, as on hardware)."""
        self.layout._slot(name)  # validates existence
        return self._values.get(name, 0)

    def set(self, name: str, value: int) -> None:
        """Write a field, wrapping to its width."""
        slot = self.layout._slot(name)
        self._values[name] = int(value) & slot.mask

    def snapshot(self) -> dict[str, int]:
        """Copy of all set fields (for stage-entry snapshots)."""
        return dict(self._values)

    def load(self, values: dict[str, int]) -> None:
        """Bulk-set fields (each masked to width)."""
        for name, value in values.items():
            self.set(name, value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Phv({inner})"
