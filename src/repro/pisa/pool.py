"""Persistent shared-memory worker pool for sharded ``process_many``.

The fork-per-batch fan-out (:mod:`repro.pisa.sharded`, mode ``fork``)
pays three per-batch taxes that dominate its wall clock: copy-on-write
page faults in every freshly forked child, per-batch re-derivation of
execution state, and pickling whole result columns back over a pipe.
This module replaces it with workers forked **once per pipeline**:

* **Lifecycle.** :func:`ensure_pool` lazily attaches a
  :class:`WorkerPool` to the pipeline on the first pooled batch and
  reuses it until :meth:`Pipeline.close` (or interpreter exit via a
  ``weakref.finalize``). Each worker inherits the parent's lowered
  :class:`~repro.pisa.vector.VectorPlan` by fork and keeps it cached,
  keyed on the pipeline's table versions — a control-plane mutation
  between batches ships as a journal entry and re-lowers the worker's
  plan exactly once; a mutation the journal cannot explain (someone
  touched a table behind the Pipeline API) respawns the workers.
* **Shared memory, not pipes.** All buffers are created *before* the
  fork so children inherit the mappings directly — no attach/unlink
  races, no per-batch segment churn. PHV columns are scattered once by
  the parent into a double-buffered input region (each worker reads its
  contiguous slice zero-copy); canonical register state is published in
  a register region each batch and re-read by workers in place (so
  control-plane register writes between batches propagate for free);
  per-worker register deltas and, under ``collect=True``, result
  columns come back through dedicated regions. Nothing crosses a pipe
  but small control tuples and per-register merge metadata.
* **Pipelining.** With results discarded (``collect=False``, the
  throughput path) the parent shard-hashes and scatters chunk *k+1*
  into the idle half of the double buffer while workers execute chunk
  *k*. Workers drain their pipe FIFO, so chunk order — and therefore
  same-worker register sequencing — is preserved.
* **Merge discipline.** The join is bit-identical to the fork and
  inline modes: the same static
  :func:`~repro.pisa.sharded.classify_registers` classes drive the same
  additive / extremum / overwrite merges over per-worker deltas
  computed against the canonical snapshot.

Workers require the ``fork`` start method (plan closures cannot be
pickled for ``spawn``) and a usable :class:`VectorPlan`; when either is
missing the sharded front end degrades — loudly, see
:mod:`repro.pisa.sharded` — to the fork or inline mode.
"""

from __future__ import annotations

import os
import time
import weakref
from typing import Optional

import numpy as np

from ..fabric.shard import key_hash
from ..obs import merge_worker_obs, metrics, obs_control, trace
from ..obs.aggregate import WorkerObsCapture
from .interp import SimulationError
from .sharded import classify_registers, shard_assignments, _merge_deltas
from .tables import TableEntry
from .vector import PhvBatch

__all__ = ["WorkerPool", "PoolUnavailable", "ensure_pool", "default_pool_chunk"]


class PoolUnavailable(Exception):
    """The pool cannot start here (no fork, no vector plan, dead spawn).

    Raised only at startup/attach time; the sharded front end catches it
    and degrades to the fork or inline mode with a telemetry event.
    Errors *during* a pooled batch raise :class:`SimulationError` like
    every other engine failure — degradation must never hide them.
    """


def default_pool_chunk(workers: int = 1) -> int:
    """Packets per scatter chunk: ``REPRO_PISA_POOL_CHUNK`` overrides;
    the default scales with the worker count so each worker's slice
    lands near the vector kernels' per-invocation sweet spot (~5k
    lanes — small enough to stay cache-resident, large enough to
    amortize per-kernel numpy dispatch)."""
    env = os.environ.get("REPRO_PISA_POOL_CHUNK")
    if env is not None:
        return max(1, int(env))
    return 5120 * max(1, workers)


def _shm_array(shm, offset: int, count: int, dtype) -> np.ndarray:
    return np.ndarray((count,), dtype=dtype, buffer=shm.buf, offset=offset)


class _Regions:
    """Byte layout of every pre-fork shared-memory segment.

    Computed once in the parent before forking, inherited by workers.
    ``chunk`` bounds every per-chunk dimension, so no segment is ever
    created or grown after the fork — children never attach by name.
    """

    def __init__(self, pipeline, workers: int, chunk: int):
        self.chunk = chunk
        self.reg_names = list(pipeline.registers.names())
        self.reg_offsets: dict[str, tuple[int, int]] = {}
        off = 0
        for name in self.reg_names:
            cells = pipeline.registers.get(name).cells
            self.reg_offsets[name] = (off, cells)
            off += cells * 8
        self.reg_bytes = max(off, 8)
        # idx(int64) + delta(uint64) + new(uint64) for every cell.
        self.delta_worker_bytes = max(
            sum(cells * 24 for _o, cells in self.reg_offsets.values()), 8)
        self.ncols = max(len(pipeline.vplan.masks), 1)
        self.ntables = len(pipeline.tables)
        # Per chunk: ncols int64 value columns + ncols byte presence
        # columns, packed values-first at the actual chunk length.
        self.in_bytes = chunk * self.ncols * 9
        # Per worker under collect: every PHV column (value + presence)
        # plus hit/ran booleans per table, at worst one whole chunk.
        self.out_worker_bytes = chunk * (self.ncols * 9 + self.ntables * 2)


class WorkerPool:
    """Long-lived forked workers executing vector batches over shm."""

    def __init__(self, pipeline, workers: int, chunk: Optional[int] = None):
        if workers < 2:
            raise PoolUnavailable("pool needs at least 2 workers")
        if pipeline.vplan is None or not pipeline.vplan.ok:
            raise PoolUnavailable("pipeline has no usable vector plan")
        import multiprocessing as mp

        try:
            self._ctx = mp.get_context("fork")
        except (ValueError, AttributeError) as exc:
            raise PoolUnavailable(f"fork start method unavailable: {exc}")
        from multiprocessing import shared_memory

        self.workers = workers
        self.chunk = (chunk if chunk is not None
                      else default_pool_chunk(workers))
        self.alive = False
        self.spawns = 0
        self._owner_pid = os.getpid()
        self._procs: list = []
        self._conns: list = []
        self._journal: list[tuple] = []
        self._synced_versions: dict[str, int] = {}
        self._journal_versions: dict[str, int] = {}
        self._classes = classify_registers(pipeline)
        self.layout = _Regions(pipeline, workers, self.chunk)
        lay = self.layout
        self._shms = []

        def seg(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._shms.append(shm)
            return shm

        self._reg_shm = seg(lay.reg_bytes)
        self._delta_shm = seg(lay.delta_worker_bytes * workers)
        self._in_shms = (seg(lay.in_bytes), seg(lay.in_bytes))
        self._out_shm = seg(lay.out_worker_bytes * workers)
        self._reg_views = {
            name: _shm_array(self._reg_shm, off, cells, np.uint64)
            for name, (off, cells) in lay.reg_offsets.items()
        }
        self._spawn(pipeline)

    # -- spawn / teardown ------------------------------------------------------
    def _spawn(self, pipeline) -> None:
        self._stop_workers()
        pipes = [self._ctx.Pipe(duplex=True) for _ in range(self.workers)]
        self._conns = [parent for parent, _child in pipes]
        self._procs = []
        for wid, (_parent, child) in enumerate(pipes):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(pipeline, self, wid, pipes),
                daemon=True,
                name=f"p4all-pool-{wid}",
            )
            proc.start()
            # Drop the fork-time argument references: the parent-side
            # Process object must not pin the pipeline (its lifetime is
            # tied to the pipeline through a weakref finalizer, which a
            # strong cycle through us would defeat).
            proc._target = proc._args = proc._kwargs = None
            self._procs.append(proc)
        for _parent, child in pipes:
            child.close()
        # Health check: a worker that died in its preamble (fork bomb
        # guard, import failure) must fail the attach, not the batch.
        try:
            for wid, conn in enumerate(self._conns):
                try:
                    conn.send(("ping",))
                    if not conn.poll(10):
                        raise PoolUnavailable(
                            f"worker {wid} did not come up")
                    msg = conn.recv()
                    if msg[0] != "pong":
                        raise PoolUnavailable(
                            f"worker {wid} bad handshake: {msg!r}")
                except (OSError, EOFError) as exc:
                    raise PoolUnavailable(
                        f"worker {wid} failed to start: {exc}")
        except PoolUnavailable:
            self._stop_workers()
            raise
        self._synced_versions = {
            name: t.version for name, t in pipeline.tables.items()
        }
        self._journal.clear()
        self.alive = True
        self.spawns += 1

    def _stop_workers(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=2)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._conns = []
        self._procs = []
        self.alive = False

    def close(self) -> None:
        """Stop workers and release shared memory; idempotent.

        A no-op in forked children (fork-mode shards, fabric worker
        processes inherit the pool object): only the owning process may
        reap the workers or unlink the segments.
        """
        if os.getpid() != self._owner_pid:
            return
        self._stop_workers()
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._shms = []

    # -- control-plane sync ----------------------------------------------------
    def note_table_op(self, op: tuple, pipeline) -> None:
        """Record a Pipeline-API table mutation for worker replay."""
        self._journal.append(op)
        self._journal_versions = {
            name: t.version for name, t in pipeline.tables.items()
        }

    def _sync_ops(self, pipeline) -> list[tuple]:
        """Journal tail to ship this batch; respawns on out-of-band edits."""
        current = {name: t.version for name, t in pipeline.tables.items()}
        if current == self._synced_versions:
            return []
        if self._journal and self._journal_versions == current:
            ops = list(self._journal)
            self._journal.clear()
            self._synced_versions = current
            return ops
        # A table changed without going through the Pipeline API (or on
        # top of journaled ops): the journal cannot reproduce it, so
        # refork — children re-inherit the tables wholesale.
        self._spawn(pipeline)
        return []

    # -- batch execution -------------------------------------------------------
    def run(self, pipeline, packets, collect: bool,
            shard_field: Optional[str] = None):
        """Run one ``process_many`` batch through the pool.

        Returns ``(result, report)`` where ``result`` is the result list
        (lane order preserved) or the packet count, and ``report`` the
        per-worker stats dict for ``pipeline.last_shard_report``.
        """
        if not self._shms:
            raise SimulationError("worker pool is closed")
        if not self.alive:
            self._spawn(pipeline)
        ops = self._sync_ops(pipeline)
        n = len(packets)
        lay = self.layout
        vplan = pipeline.vplan
        registers = pipeline.registers
        for name, view in self._reg_views.items():
            view[:] = registers.get(name)._data

        results: list = [None] * n if collect else None
        acked = [0] * self.workers
        failures: list[str] = []

        def drain_one(conn, wid):
            """One reply off a worker's pipe; returns the message."""
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self.alive = False
                raise SimulationError(
                    f"pooled worker {wid} died mid-batch"
                ) from None
            if msg[0] == "err":
                failures.append(str(msg[1]))
            return msg

        # Shard keys come straight from the loaded PHV column (post-mask
        # values; absent lanes hold 0, matching shard_assignments'
        # missing-field default) — the masked value is a function of the
        # raw key, so same-key-same-worker still holds, without a second
        # per-packet Python pass over the batch.
        shard_key = self._resolve_shard_key(pipeline, packets, shard_field)
        seq = 0
        for base in range(0, n, self.chunk):
            chunk_pkts = packets[base:base + self.chunk]
            cn = len(chunk_pkts)
            batch = vplan._load(chunk_pkts)
            if shard_key is not None and shard_key in batch.cols:
                keys = batch.cols[shard_key].view(np.uint64)
                assign = (key_hash(keys) % np.uint64(self.workers)
                          ).astype(np.int64)
            else:
                assign = shard_assignments(chunk_pkts, self.workers,
                                           shard_field)
            order = np.argsort(assign, kind="stable")
            counts = np.bincount(assign, minlength=self.workers)
            starts = np.zeros(self.workers + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            buf_idx = seq % 2
            if not collect and seq >= 2:
                # Double buffer: reclaim this half only after every
                # worker acked the chunk previously scattered into it.
                need = seq - 1
                for wid, conn in enumerate(self._conns):
                    while acked[wid] < need:
                        drain_one(conn, wid)
                        acked[wid] += 1
            shm = self._in_shms[buf_idx]
            keys = list(batch.cols)
            uniform = all(bool(p.all()) for p in batch.present.values())
            pres_base = len(keys) * cn * 8
            for i, key in enumerate(keys):
                np.take(batch.cols[key], order,
                        out=_shm_array(shm, i * cn * 8, cn, np.int64))
                if not uniform:
                    np.take(batch.present[key], order,
                            out=_shm_array(shm, pres_base + i * cn, cn,
                                           np.bool_))
            final = base + self.chunk >= n
            msg = ("chunk", buf_idx, cn, keys, uniform, starts.tolist(),
                   final)
            if seq == 0:
                # "begin" rides immediately ahead of the first chunk in
                # the pipe so each worker wakes once per batch, not once
                # for the preamble and again for its first real work.
                # The obs control tuple keeps worker tracers in lockstep
                # with the parent's enablement and clock epoch.
                ctl = obs_control()
                for conn in self._conns:
                    conn.send(("begin", collect, ops, ctl))
            for conn in self._conns:
                conn.send(msg)
            seq += 1
            if collect:
                self._gather_chunk(pipeline, results, base, order, starts,
                                   acked, drain_one)
        counts_out = [0] * self.workers
        busys = [0.0] * self.workers
        relowers = [0] * self.workers
        worker_deltas: list[dict] = [{} for _ in range(self.workers)]
        for wid, conn in enumerate(self._conns):
            while True:
                msg = drain_one(conn, wid)
                if msg[0] in ("chunk_done", "err"):
                    acked[wid] += 1
                    continue
                break
            _tag, count, busy, delta_meta, nrelowers, obs_payload = msg
            counts_out[wid] = count
            busys[wid] = busy
            relowers[wid] = nrelowers
            # Fold the worker's spans and metric deltas into the global
            # tracer/registry, under the live pisa.batch span, on a
            # dedicated Chrome-trace track per worker.
            merge_worker_obs(obs_payload, worker=wid,
                             track=1_000_000 + wid,
                             track_name=f"pool-worker-{wid}")
            off = wid * lay.delta_worker_bytes
            for name, k in delta_meta:
                idx = _shm_array(self._delta_shm, off, k, np.int64)
                off += k * 8
                delta = _shm_array(self._delta_shm, off, k, np.uint64)
                off += k * 8
                new = _shm_array(self._delta_shm, off, k, np.uint64)
                off += k * 8
                worker_deltas[wid][name] = (idx, delta, new)
        if failures:
            raise SimulationError(
                f"pooled workers failed: {'; '.join(sorted(set(failures)))}"
            )
        _merge_deltas(pipeline, self._classes, worker_deltas)
        pipeline.packets_processed += sum(counts_out)
        report = {
            "workers": self.workers,
            "counts": counts_out,
            "busy_seconds": busys,
            "mode": "pool",
            "register_classes": self._classes,
            "pool_spawns": self.spawns,
            "pool_relowers": relowers,
            "pool_chunks": seq,
        }
        return (results if collect else n), report

    @staticmethod
    def _resolve_shard_key(pipeline, packets, shard_field):
        """PHV key of the shard field, or None to fall back to the
        per-packet hash pass."""
        if shard_field is None:
            first = packets[0].fields
            shard_field = ("flow_id" if "flow_id" in first
                           else next(iter(first)))
        try:
            return pipeline._packet_key(shard_field)
        except SimulationError:
            return None

    def _gather_chunk(self, pipeline, results, base, order, starts,
                      acked, drain_one) -> None:
        """Collect one chunk's result columns from every worker's out
        region and materialize them back into original lane order."""
        lay = self.layout
        cn = len(order)
        cols: dict[str, np.ndarray] = {}
        present: dict[str, np.ndarray] = {}
        hits: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for wid, conn in enumerate(self._conns):
            msg = drain_one(conn, wid)
            acked[wid] += 1
            if msg[0] != "chunk_done":
                continue
            out_meta = msg[2]
            if out_meta is None:
                continue
            keys, hit_names, n_w = out_meta
            if n_w == 0:
                continue
            lanes = order[starts[wid]:starts[wid + 1]]
            off = wid * lay.out_worker_bytes
            for key in keys:
                vals = _shm_array(self._out_shm, off, n_w, np.int64)
                off += n_w * 8
                pres = _shm_array(self._out_shm, off, n_w, np.bool_)
                off += n_w
                col = cols.get(key)
                if col is None:
                    col = cols[key] = np.zeros(cn, dtype=np.int64)
                    present[key] = np.zeros(cn, dtype=bool)
                col[lanes] = vals
                present[key][lanes] = pres
            for name in hit_names:
                hit = _shm_array(self._out_shm, off, n_w, np.bool_)
                off += n_w
                ran = _shm_array(self._out_shm, off, n_w, np.bool_)
                off += n_w
                pair = hits.get(name)
                if pair is None:
                    pair = hits[name] = (np.zeros(cn, dtype=bool),
                                         np.zeros(cn, dtype=bool))
                pair[0][lanes] = hit
                pair[1][lanes] = ran
        batch = PhvBatch(cols, present, cn)
        chunk_results = pipeline.vplan._materialize(batch, hits)
        results[base:base + cn] = chunk_results


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(pipeline, pool: WorkerPool, wid: int, pipes) -> None:
    """Forked worker loop: inherit everything, serve until closed."""
    conn = pipes[wid][1]
    for i, (parent, child) in enumerate(pipes):
        parent.close()
        if i != wid:
            child.close()
    # The inherited parent-side pool/quiesce state is meaningless here.
    pipeline._pool = None
    pipeline._quiesce_pending = []
    try:
        _Worker(pipeline, pool, wid, conn).loop()
    finally:
        conn.close()
        # Skip inherited atexit/finalizers (they belong to the parent).
        os._exit(0)


class _Worker:
    """Per-process execution state inside one pool worker."""

    def __init__(self, pipeline, pool: WorkerPool, wid: int, conn):
        self.pipeline = pipeline
        self.vplan = pipeline.vplan
        self.lay = pool.layout
        self.wid = wid
        self.conn = conn
        self.reg_views = pool._reg_views
        self.delta_shm = pool._delta_shm
        self.in_shms = pool._in_shms
        self.out_shm = pool._out_shm
        self.collect = False
        self.count = 0
        self.busy = 0.0
        self.failed: Optional[str] = None
        self.relowers = 0
        self.capture = WorkerObsCapture()
        self._batch_span = None

    def loop(self) -> None:
        while True:
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                return
            tag = msg[0]
            if tag == "ping":
                self.conn.send(("pong", self.wid))
            elif tag == "begin":
                self._begin(collect=msg[1], ops=msg[2],
                            ctl=msg[3] if len(msg) > 3 else None)
            elif tag == "chunk":
                self._chunk(*msg[1:])
            elif tag == "close":
                return

    def _begin(self, collect: bool, ops: list[tuple], ctl=None) -> None:
        registers = self.pipeline.registers
        for name, view in self.reg_views.items():
            registers.get(name)._data[:] = view
        self.collect = collect
        self.count = 0
        self.busy = 0.0
        self.failed = None
        self.capture.begin(ctl)
        # Enter a batch-spanning root manually (the bracket is two pipe
        # messages apart); _end() closes and ships it.
        span = trace.span("pisa.worker.batch", worker=self.wid,
                          shard_mode="pool")
        self._batch_span = span.__enter__() if span else None
        if ops:
            self._apply_ops(ops)

    def _apply_ops(self, ops: list[tuple]) -> None:
        """Replay journaled table mutations, then re-lower the plan once."""
        from .vector import VectorPlan

        tables = self.pipeline.tables
        for op in ops:
            kind, name = op[0], op[1]
            table = tables[name]
            if kind == "add":
                table.add_entry(TableEntry(match=op[2], action=op[3],
                                           action_data=op[4], priority=op[5]))
            elif kind == "remove":
                table.remove_entry(op[2])
            elif kind == "clear":
                table.clear()
        self.vplan = VectorPlan(self.pipeline)
        self.relowers += 1

    def _chunk(self, buf_idx: int, cn: int, keys: list[str], uniform: bool,
               starts: list[int], final: bool) -> None:
        out_meta = None
        try:
            if self.failed is None:
                out_meta = self._run_chunk(buf_idx, cn, keys, uniform, starts)
        except BaseException as exc:
            self.failed = repr(exc)
        if self.failed is not None:
            self.conn.send(("err", self.failed))
        else:
            self.conn.send(("chunk_done", self.wid, out_meta))
        if final:
            # The batch's last chunk doubles as the end-of-batch marker:
            # pack register deltas and report without another round trip.
            self._end()

    def _run_chunk(self, buf_idx, cn, keys, uniform, starts):
        s, e = starts[self.wid], starts[self.wid + 1]
        n_w = e - s
        if n_w == 0:
            return ([], [], 0) if self.collect else None
        shm = self.in_shms[buf_idx]
        pres_base = len(keys) * cn * 8
        cols: dict[str, np.ndarray] = {}
        present: dict[str, np.ndarray] = {}
        for i, key in enumerate(keys):
            cols[key] = _shm_array(shm, i * cn * 8, cn, np.int64)[s:e]
            if uniform:
                present[key] = np.ones(n_w, dtype=bool)
            else:
                present[key] = _shm_array(shm, pres_base + i * cn, cn,
                                          np.bool_)[s:e]
        batch = PhvBatch(cols, present, n_w)
        hits: dict = {}
        t0 = time.process_time()
        self.vplan.run_stages(batch, hits)
        self.busy += time.process_time() - t0
        self.count += n_w
        if not self.collect:
            return None
        off = self.wid * self.lay.out_worker_bytes
        out_keys = list(batch.cols)
        for key in out_keys:
            _shm_array(self.out_shm, off, n_w, np.int64)[:] = batch.cols[key]
            off += n_w * 8
            _shm_array(self.out_shm, off, n_w, np.bool_)[:] = \
                batch.present[key]
            off += n_w
        hit_names = list(hits)
        for name in hit_names:
            h, r = hits[name]
            _shm_array(self.out_shm, off, n_w, np.bool_)[:] = h
            off += n_w
            _shm_array(self.out_shm, off, n_w, np.bool_)[:] = r
            off += n_w
        return (out_keys, hit_names, n_w)

    def _end(self) -> None:
        registers = self.pipeline.registers
        meta: list[tuple[str, int]] = []
        off = self.wid * self.lay.delta_worker_bytes
        for name, view in self.reg_views.items():
            local = registers.get(name)._data
            changed = np.nonzero(local != view)[0]
            k = changed.size
            if not k:
                continue
            _shm_array(self.delta_shm, off, k, np.int64)[:] = changed
            off += k * 8
            _shm_array(self.delta_shm, off, k, np.uint64)[:] = \
                local[changed] - view[changed]
            off += k * 8
            _shm_array(self.delta_shm, off, k, np.uint64)[:] = local[changed]
            off += k * 8
            meta.append((name, k))
        # Workers count only their own share (never p4all_packets_total
        # — the parent's batch wrapper owns that, so merged totals match
        # inline mode exactly).
        metrics.counter(
            "p4all_worker_packets_total",
            help="Packets executed inside worker processes.",
            labels=("worker", "shard_mode"),
        ).inc(self.count, worker=self.wid, shard_mode="pool")
        if self._batch_span is not None:
            self._batch_span.set_attrs(packets=self.count, busy=self.busy,
                                       relowers=self.relowers)
            self._batch_span.__exit__(None, None, None)
            self._batch_span = None
        self.conn.send(("done", self.count, self.busy, meta, self.relowers,
                        self.capture.finish()))


# ---------------------------------------------------------------------------
# Attachment
# ---------------------------------------------------------------------------


def _finalize_pool(pool: WorkerPool) -> None:
    pool.close()


def ensure_pool(pipeline, workers: int) -> WorkerPool:
    """The pipeline's live pool for ``workers``, creating or resizing it.

    The pool is owned by the pipeline (``pipeline._pool``) and torn down
    by :meth:`Pipeline.close`; a ``weakref.finalize`` reaps workers and
    shared memory when the pipeline is garbage collected or at
    interpreter exit, so leaked pipelines cannot strand children.
    """
    pool = getattr(pipeline, "_pool", None)
    if pool is not None and pool.alive and pool.workers == workers:
        return pool
    if pool is not None:
        pool.close()
    pool = WorkerPool(pipeline, workers)
    pipeline._pool = pool
    weakref.finalize(pipeline, _finalize_pool, pool)
    return pool
