"""Tracer/span behavior tests."""

import threading

import pytest

from repro.obs import NULL_SPAN, Tracer


class TestDisabledTracer:
    def test_disabled_span_is_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("x", attr=1)
        assert span is NULL_SPAN
        assert tracer.span("y") is span  # no per-call allocation

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.set_attr("a", 1)
            span.set_attrs(b=2)
            span.event("tick")
        assert not NULL_SPAN

    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            tracer.event("tick")
        assert len(tracer) == 0
        assert tracer.orphan_events == []
        assert tracer.current_span() is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Tracer().enabled
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not Tracer().enabled
        monkeypatch.delenv("REPRO_TRACE")
        assert not Tracer().enabled


class TestSpans:
    def test_nesting_sets_parent_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Children complete (and record) before parents.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_timing_is_monotone(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as span:
            sum(range(1000))
        assert span.end >= span.start >= 0.0
        assert span.duration == span.end - span.start

    def test_attrs_and_events(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a", x=1) as span:
            span.set_attr("y", 2)
            span.set_attrs(z=3, x=9)
            span.event("tick", n=1)
        assert span.attrs == {"x": 9, "y": 2, "z": 3}
        assert [e.name for e in span.events] == ["tick"]
        assert span.events[0].attrs == {"n": 1}

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        [span] = tracer.spans
        assert span.attrs["error"] == "ValueError: boom"

    def test_tracer_event_attaches_to_active_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a") as span:
            tracer.event("inside", k=1)
        tracer.event("outside")
        assert [e.name for e in span.events] == ["inside"]
        assert [e.name for e in tracer.orphan_events] == ["outside"]

    def test_spans_named(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("x"):
                pass
        with tracer.span("y"):
            pass
        assert len(tracer.spans_named("x")) == 3
        assert len(tracer.spans_named("missing")) == 0

    def test_reset_mid_span_is_tolerated(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            tracer.reset()
        # The span finished after the reset; it records without error
        # and the stack is consistent for the next span.
        with tracer.span("next") as span:
            pass
        assert span.parent_id is None

    def test_enable_resets_by_default(self):
        tracer = Tracer(enabled=True)
        with tracer.span("old"):
            pass
        tracer.enable()
        assert len(tracer) == 0
        tracer2 = Tracer(enabled=True)
        with tracer2.span("kept"):
            pass
        tracer2.enable(reset=False)
        assert len(tracer2) == 1


class TestThreading:
    def test_worker_thread_spans_are_their_own_roots(self):
        tracer = Tracer(enabled=True)
        done = threading.Event()

        def work():
            with tracer.span("worker"):
                pass
            done.set()

        with tracer.span("main"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        assert done.is_set()
        worker = tracer.spans_named("worker")[0]
        main = tracer.spans_named("main")[0]
        assert worker.parent_id is None  # not parented across threads
        assert worker.thread_id != main.thread_id

    def test_concurrent_spans_all_recorded(self):
        tracer = Tracer(enabled=True)

        def work(i):
            for _ in range(50):
                with tracer.span(f"t{i}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 200
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == len(ids)
