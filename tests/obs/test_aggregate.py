"""Cross-process obs aggregation: snapshot/delta/merge roundtrips,
span adoption, the worker capture bracket, and the end-to-end pool and
fork paths producing one merged trace with exact packet accounting."""

import multiprocessing
import os

import pytest

from repro import obs
from repro.core import compile_source
from repro.obs import MetricsRegistry, Tracer, chrome_trace, validate_chrome_trace
from repro.obs.aggregate import (
    WorkerObsCapture,
    _deltas_and_snapshot,
    adopt_spans,
    apply_obs_control,
    merge_metric_deltas,
    merge_worker_obs,
    metric_deltas,
    obs_control,
    snapshot_metrics,
)
from repro.obs.summary import trace_summary_data
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import CMS_SOURCE


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable")


def _counter_value(name: str, **labels) -> float:
    metric = obs.metrics.get(name)
    return metric.value(**labels) if metric is not None else 0.0


class TestMetricDeltas:
    def test_counter_deltas_merge_additively(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", labels=("who",))
        c.inc(3, who="a")
        base = snapshot_metrics(reg)
        c.inc(2, who="a")
        c.inc(5, who="b")
        dst = MetricsRegistry()
        dst.counter("hits_total", labels=("who",)).inc(10, who="a")
        merge_metric_deltas(metric_deltas(reg, base), dst)
        assert dst.get("hits_total").value(who="a") == 12
        assert dst.get("hits_total").value(who="b") == 5

    def test_unchanged_registry_ships_nothing(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(7)
        base = snapshot_metrics(reg)
        assert metric_deltas(reg, base) == []

    def test_gauge_ships_changed_values_only(self):
        reg = MetricsRegistry()
        g = reg.gauge("occ", labels=("stage",))
        g.set(1.0, stage="0")
        g.set(2.0, stage="1")
        base = snapshot_metrics(reg)
        g.set(9.0, stage="1")
        deltas = metric_deltas(reg, base)
        [entry] = deltas
        assert entry["values"] == [(("1",), 9.0)]
        dst = MetricsRegistry()
        merge_metric_deltas(deltas, dst)
        assert dst.get("occ").value(stage="1") == 9.0

    def test_histogram_diffs_bucketwise(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1, 10))
        h.observe(0.5)
        base = snapshot_metrics(reg)
        h.observe(5)
        h.observe(100)
        dst = MetricsRegistry()
        dst.histogram("lat", buckets=(1, 10)).observe(0.2)
        merge_metric_deltas(metric_deltas(reg, base), dst)
        snap = dst.get("lat").snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(0.2 + 5 + 100)

    def test_histogram_new_key_ships_full_state(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", labels=("op",), buckets=(1,))
        h.observe(0.5, op="read")
        base = snapshot_metrics(reg)
        h.observe(2.0, op="write")
        deltas = metric_deltas(reg, base)
        [entry] = deltas
        [(key, state)] = entry["values"]
        assert key == ("write",)
        assert state["count"] == 1

    def test_merge_registers_metric_only_worker_touched(self):
        reg = MetricsRegistry()
        reg.counter("worker_only_total", help="h").inc(4)
        dst = MetricsRegistry()
        merge_metric_deltas(metric_deltas(reg, None), dst)
        assert dst.get("worker_only_total").value() == 4

    def test_snapshot_feeds_next_baseline(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(3)
        deltas, snap = _deltas_and_snapshot(reg, None)
        assert deltas[0]["values"] == [((), 3)]
        c.inc(2)
        deltas2, _ = _deltas_and_snapshot(reg, snap)
        assert deltas2[0]["values"] == [((), 2)]


class TestObsControl:
    def test_apply_aligns_enablement_and_epochs(self):
        parent = Tracer(enabled=True)
        worker = Tracer(enabled=False)
        apply_obs_control(obs_control(parent), worker)
        assert worker.enabled
        assert worker._epoch == parent._epoch
        assert worker.wall_epoch == parent.wall_epoch

    def test_none_control_disables(self):
        worker = Tracer(enabled=True)
        apply_obs_control(None, worker)
        assert not worker.enabled


class TestAdoptSpans:
    def test_two_pass_reparenting(self):
        worker = Tracer(enabled=True)
        with worker.span("outer"):
            with worker.span("inner"):
                pass
        dicts = [s.to_dict() for s in worker.spans]
        # Completion order puts the child first — the two-pass remap
        # must still connect it to its (later) parent.
        assert dicts[0]["name"] == "inner"

        parent = Tracer(enabled=True)
        with parent.span("pisa.batch") as batch:
            adopted = adopt_spans(parent, dicts, parent=batch, track=7,
                                  track_name="w", worker=3)
        by_name = {s.name: s for s in adopted}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id == batch.span_id
        for span in adopted:
            assert span.attrs["worker"] == 3
            assert span.thread_id == 7
            assert span.thread_name == "w"

    def test_adopted_spans_preserve_timing_and_events(self):
        worker = Tracer(enabled=True)
        with worker.span("batch") as ws:
            ws.event("tick", n=1)
        [d] = [s.to_dict() for s in worker.spans]
        parent = Tracer(enabled=True)
        [adopted] = adopt_spans(parent, [d])
        assert adopted.start == d["start"]
        assert adopted.end == d["end"]
        [ev] = adopted.events
        assert ev.name == "tick"
        assert ev.attrs["n"] == 1


class TestWorkerObsCapture:
    def test_nothing_to_ship_returns_none(self):
        cap = WorkerObsCapture(Tracer(enabled=False), MetricsRegistry())
        cap.begin(None)
        assert cap.finish() is None
        # The parent-side merge treats None as a no-op.
        merge_worker_obs(None, worker=0)

    def test_payload_roundtrip_through_parent_merge(self):
        parent = Tracer(enabled=True)
        preg = MetricsRegistry()
        wt = Tracer(enabled=False)
        wreg = MetricsRegistry()
        cap = WorkerObsCapture(wt, wreg)
        cap.begin(obs_control(parent))
        assert wt.enabled
        with wt.span("pisa.worker.batch", shard_mode="pool"):
            wreg.counter("p4all_worker_packets_total",
                         labels=("worker", "shard_mode")).inc(
                10, worker=1, shard_mode="pool")
        payload = cap.finish()
        assert payload["spans"] and payload["metrics"]

        with parent.span("pisa.batch") as batch:
            merge_worker_obs(payload, worker=1, track=1_000_001,
                             track_name="pool-worker-1", tracer=parent,
                             registry=preg)
        [wspan] = parent.spans_named("pisa.worker.batch")
        assert wspan.attrs["worker"] == 1
        assert wspan.parent_id == batch.span_id
        assert wspan.thread_id == 1_000_001
        assert preg.get("p4all_worker_packets_total").value(
            worker=1, shard_mode="pool") == 10

    def test_second_batch_ships_only_new_deltas(self):
        wt = Tracer(enabled=False)
        wreg = MetricsRegistry()
        c = wreg.counter("c")
        cap = WorkerObsCapture(wt, wreg)
        cap.begin(None)
        c.inc(5)
        [entry] = cap.finish()["metrics"]
        assert entry["values"] == [((), 5)]
        cap.begin(None)
        c.inc(2)
        [entry] = cap.finish()["metrics"]
        assert entry["values"] == [((), 2)]


def _build_vector_pipeline():
    compiled = compile_source(CMS_SOURCE,
                              small_target(stages=6, memory_kb=32))
    return Pipeline(compiled, engine="vector")


@pytest.fixture
def shard_mode_env():
    prev = os.environ.get("REPRO_PISA_SHARD_MODE")

    def set_mode(mode: str) -> None:
        os.environ["REPRO_PISA_SHARD_MODE"] = mode

    yield set_mode
    if prev is None:
        os.environ.pop("REPRO_PISA_SHARD_MODE", None)
    else:
        os.environ["REPRO_PISA_SHARD_MODE"] = prev


@needs_fork
class TestPoolTraceMerge:
    def test_pool_trace_attributes_all_workers_and_matches_inline(
            self, shard_mode_env):
        """ISSUE acceptance: a traced ``process_many(..., workers=4)``
        yields one Chrome trace with spans from all 4 children, and the
        parent's merged packet counter matches inline mode exactly."""
        shard_mode_env("pool")
        packets = [Packet(fields={"flow_id": i % 499}) for i in range(4000)]
        pipe = _build_vector_pipeline()
        obs.trace.enable()
        before = _counter_value("p4all_packets_total", engine="vector")
        worker_before = sum(
            v for _, _, v in (obs.metrics.get("p4all_worker_packets_total")
                              .samples())
        ) if obs.metrics.get("p4all_worker_packets_total") else 0
        try:
            pipe.process_many(packets, collect=False, workers=4)
            assert pipe.last_shard_report["mode"] == "pool", \
                pipe.last_shard_report
        finally:
            pipe.close()
        pool_total = _counter_value("p4all_packets_total",
                                    engine="vector") - before

        obj = chrome_trace(obs.trace)
        assert validate_chrome_trace(obj) > 0
        data = trace_summary_data(obj)
        assert data["workers"] == [0, 1, 2, 3]

        [batch] = obs.trace.spans_named("pisa.batch")
        wspans = obs.trace.spans_named("pisa.worker.batch")
        assert {s.attrs["worker"] for s in wspans} == {0, 1, 2, 3}
        for span in wspans:
            assert span.parent_id == batch.span_id
            assert span.thread_name.startswith("pool-worker-")
            assert span.attrs["shard_mode"] == "pool"

        # Workers count their own shares; together they cover the batch.
        worker_total = sum(
            v for _, _, v in obs.metrics.get("p4all_worker_packets_total")
            .samples()) - worker_before
        assert worker_total == len(packets)

        # Exact parity with a fresh inline run of the same batch.
        obs.trace.disable()
        obs.trace.reset()
        inline = _build_vector_pipeline()
        before = _counter_value("p4all_packets_total", engine="vector")
        inline.process_many(packets, collect=False)
        inline_total = _counter_value("p4all_packets_total",
                                      engine="vector") - before
        assert pool_total == inline_total == len(packets)

    def test_fork_mode_attributes_workers(self, shard_mode_env):
        shard_mode_env("fork")
        packets = [Packet(fields={"flow_id": i % 499}) for i in range(2000)]
        pipe = _build_vector_pipeline()
        obs.trace.enable()
        try:
            pipe.process_many(packets, collect=False, workers=2)
            assert pipe.last_shard_report["mode"] == "fork", \
                pipe.last_shard_report
        finally:
            pipe.close()
        wspans = obs.trace.spans_named("pisa.worker.batch")
        assert {s.attrs["worker"] for s in wspans} == {0, 1}
        for span in wspans:
            assert span.thread_name.startswith("shard-worker-")
            assert span.attrs["shard_mode"] == "fork"
