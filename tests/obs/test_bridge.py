"""Telemetry-bus → tracer bridge tests."""

from repro.obs import MetricsRegistry, Tracer, bridge_telemetry
from repro.runtime import TelemetryBus


class TestBridge:
    def test_events_mirror_into_active_span(self):
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        bus = bridge_telemetry(TelemetryBus(), tracer, registry)
        with tracer.span("runtime.reconfigure") as span:
            bus.emit("swap_committed", packet_index=7, backend="ilp")
        [ev] = span.events
        assert ev.name == "telemetry.swap_committed"
        assert ev.attrs["kind"] == "swap_committed"
        assert ev.attrs["packet_index"] == 7
        assert ev.attrs["backend"] == "ilp"

    def test_events_outside_spans_become_orphans(self):
        tracer = Tracer(enabled=True)
        bus = bridge_telemetry(TelemetryBus(), tracer, MetricsRegistry())
        bus.emit("configured")
        [ev] = tracer.orphan_events
        assert ev.name == "telemetry.configured"

    def test_counter_counts_even_with_tracer_disabled(self):
        tracer = Tracer(enabled=False)
        registry = MetricsRegistry()
        bus = bridge_telemetry(TelemetryBus(), tracer, registry)
        bus.emit("window")
        bus.emit("window")
        bus.emit("rollback")
        counter = registry.get("p4all_telemetry_events_total")
        assert counter.value(kind="window") == 2
        assert counter.value(kind="rollback") == 1
        assert len(tracer) == 0

    def test_bridging_is_idempotent_per_pair(self):
        tracer = Tracer(enabled=True)
        registry = MetricsRegistry()
        bus = TelemetryBus()
        bridge_telemetry(bus, tracer, registry)
        bridge_telemetry(bus, tracer, registry)  # no double subscription
        with tracer.span("s") as span:
            bus.emit("tick")
        assert len(span.events) == 1
        assert registry.get(
            "p4all_telemetry_events_total"
        ).value(kind="tick") == 1

    def test_distinct_tracers_both_receive(self):
        bus = TelemetryBus()
        t1, t2 = Tracer(enabled=True), Tracer(enabled=True)
        r = MetricsRegistry()
        bridge_telemetry(bus, t1, r)
        bridge_telemetry(bus, t2, r)
        with t1.span("a"), t2.span("b"):
            bus.emit("tick")
        # Each tracer recorded the event on its own active span.
        assert len(t1.spans_named("a")[0].events) == 1
        assert len(t2.spans_named("b")[0].events) == 1
        assert r.get("p4all_telemetry_events_total").value(kind="tick") == 2

    def test_returns_bus(self):
        bus = TelemetryBus()
        assert bridge_telemetry(bus, Tracer(enabled=False),
                                MetricsRegistry()) is bus

    def test_payload_keys_colliding_with_core_fields_rekeyed(self):
        # TelemetryEvent.to_dict re-keys payload fields that shadow its
        # own core fields as data_<key>; the mirrored instant must keep
        # both without silently dropping either.
        tracer = Tracer(enabled=True)
        bus = bridge_telemetry(TelemetryBus(), tracer, MetricsRegistry())
        with tracer.span("s") as span:
            bus.emit("window", seq=99, wall_time=1.5)
        [ev] = span.events
        assert ev.attrs["data_seq"] == 99
        assert ev.attrs["data_wall_time"] == 1.5
        assert ev.attrs["seq"] == 0           # the event's own sequence
        assert ev.attrs["kind"] == "window"

    def test_events_land_in_flight_ring(self):
        from repro import obs

        bus = bridge_telemetry(TelemetryBus(), Tracer(enabled=False),
                               MetricsRegistry())
        before = len(obs.flight)
        bus.emit("swap_committed", packet_index=7, backend="ilp")
        entries = obs.flight.entries()
        assert len(obs.flight) == before + 1
        assert entries[-1]["kind"] == "telemetry"
        assert entries[-1]["name"] == "swap_committed"
        assert entries[-1]["data"]["backend"] == "ilp"
