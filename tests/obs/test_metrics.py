"""Metrics registry tests: instruments, labels, Prometheus rendering."""

import math
import threading

import pytest

from repro.obs import MetricError, MetricsRegistry
from repro.obs.export import validate_prometheus_text


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestRegistration:
    def test_reregistration_returns_same_object(self, registry):
        a = registry.counter("c_total", help="x", labels=("k",))
        b = registry.counter("c_total", labels=("k",))
        assert a is b
        assert len(registry) == 1

    def test_conflicting_kind_raises(self, registry):
        registry.counter("m")
        with pytest.raises(MetricError):
            registry.gauge("m")

    def test_conflicting_labels_raise(self, registry):
        registry.counter("m", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("m", labels=("b",))

    def test_invalid_names_raise(self, registry):
        with pytest.raises(MetricError):
            registry.counter("1bad")
        with pytest.raises(MetricError):
            registry.counter("ok", labels=("bad-label",))

    def test_reset_forgets_instruments(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.get("c") is None
        # Re-registering after reset starts from zero.
        assert registry.counter("c").value() == 0


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("hits_total", labels=("tier",))
        c.inc(tier="frontend")
        c.inc(5, tier="frontend")
        c.inc(tier="layout")
        assert c.value(tier="frontend") == 6
        assert c.value(tier="layout") == 1
        assert c.value(tier="missing") == 0

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("c").inc(-1)

    def test_wrong_label_set_rejected(self, registry):
        c = registry.counter("c", labels=("a",))
        with pytest.raises(MetricError):
            c.inc()
        with pytest.raises(MetricError):
            c.inc(a=1, b=2)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value() == 7


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        h = registry.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [1, 3, 4]  # cumulative per bound
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_samples_include_inf_bucket_sum_count(self, registry):
        h = registry.histogram("lat_seconds", buckets=(1.0,), labels=("op",))
        h.observe(0.5, op="solve")
        h.observe(2.0, op="solve")
        rows = {name + labels: value for name, labels, value in h.samples()}
        assert rows['lat_seconds_bucket{op="solve",le="1"}'] == 1
        assert rows['lat_seconds_bucket{op="solve",le="+Inf"}'] == 2
        assert rows['lat_seconds_sum{op="solve"}'] == 2.5
        assert rows['lat_seconds_count{op="solve"}'] == 2

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=())


class TestPrometheusRendering:
    def test_rendered_text_passes_validator(self, registry):
        registry.counter("c_total", help="a counter", labels=("k",)).inc(k="v")
        registry.gauge("g", help="a gauge").set(1.5)
        registry.histogram("h_seconds", help="a histogram").observe(0.2)
        text = registry.to_prometheus()
        assert validate_prometheus_text(text) > 0
        assert "# TYPE c_total counter" in text
        assert "# HELP c_total a counter" in text
        assert 'c_total{k="v"} 1' in text

    def test_label_values_are_escaped(self, registry):
        registry.counter("c", labels=("k",)).inc(k='with "quotes"\nand newline')
        text = registry.to_prometheus()
        assert validate_prometheus_text(text) > 0
        assert r'\"quotes\"' in text
        assert "\\n" in text

    def test_infinity_renders_as_inf(self):
        from repro.obs.metrics import _format_value

        assert _format_value(math.inf) == "+Inf"
        assert _format_value(-math.inf) == "-Inf"
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"

    def test_empty_registry_renders_empty(self, registry):
        assert registry.to_prometheus() == ""


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self, registry):
        c = registry.counter("c_total")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000
