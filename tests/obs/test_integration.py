"""End-to-end observability: traced compiles, traced elastic runs, CLI.

These use the *global* ``repro.obs.trace``/``metrics`` singletons the
instrumentation sites talk to; the conftest fixture restores the tracer
to disabled+empty after each test.
"""

import dataclasses
import json

from repro import obs
from repro.core import CompileOptions, compile_source
from repro.obs import chrome_trace, validate_chrome_trace
from repro.obs.summary import summarize_chrome_trace
from repro.pisa.resources import small_target

SOURCE = """
symbolic int n;
struct metadata {
    bit<32> fkey;
    bit<32>[n] h;
}
register<bit<8>>[16][n] marks;
action probe()[int i] {
    meta.h[i] = hash(i, meta.fkey);
    marks[i].write(meta.h[i], 1);
}
control Ingress(inout metadata meta) {
    apply { for (i < n) { probe()[i]; } }
}
optimize n;
"""


def _span_tree(tracer):
    """name → list of child span names, from recorded parent ids."""
    spans = tracer.spans
    by_id = {s.span_id: s for s in spans}
    children = {}
    for s in spans:
        if s.parent_id is not None and s.parent_id in by_id:
            children.setdefault(by_id[s.parent_id].name, []).append(s.name)
    return children


class TestTracedCompile:
    def test_compile_span_tree(self):
        obs.trace.enable()
        compiled = compile_source(SOURCE, small_target(stages=3))
        assert compiled.symbol_values["n"] >= 1
        children = _span_tree(obs.trace)
        root_kids = children["compile"]
        for phase in ("compile.parse", "compile.ir", "compile.bounds",
                      "compile.ilp_build", "compile.ilp_solve",
                      "compile.codegen", "compile.validate"):
            assert phase in root_kids, phase
        # The solver dispatch nests under the solve phase.
        assert "ilp.solve" in children["compile.ilp_solve"]
        obj = chrome_trace(obs.trace)
        assert validate_chrome_trace(obj) > 0

    def test_compile_metrics_recorded(self):
        obs.metrics.reset()
        compile_source(SOURCE, small_target(stages=3))
        compiles = obs.metrics.get("p4all_compiles_total")
        assert compiles is not None
        assert sum(v for _, _, v in compiles.samples()) >= 1
        solves = obs.metrics.get("p4all_ilp_solves_total")
        assert solves is not None
        phases = obs.metrics.get("p4all_compile_phase_seconds")
        assert phases.snapshot(phase="codegen")["count"] >= 1

    def test_disabled_tracer_records_nothing(self):
        assert not obs.trace.enabled
        compile_source(SOURCE, small_target(stages=3),
                       CompileOptions(backend="greedy"))
        assert len(obs.trace) == 0

    def test_cached_recompile_marks_span(self):
        from repro.core.cache import CompileCache

        obs.trace.enable()
        cache = CompileCache()
        options = CompileOptions(cache=cache)
        target = small_target(stages=3)
        compile_source(SOURCE, target, options)
        obs.trace.reset()
        compile_source(SOURCE, target, options)  # layout-tier hit
        [root] = obs.trace.spans_named("compile")
        assert root.attrs.get("layout_cached") is True


class TestTracedRuntime:
    def test_elastic_run_produces_nested_timeline(self):
        from repro.pisa.resources import tofino
        from repro.runtime import ElasticRuntime, RuntimeConfig
        from repro.workloads import ChurningZipf

        obs.trace.enable()
        obs.metrics.reset()
        target = dataclasses.replace(
            tofino(), stages=6, memory_bits_per_stage=64 * 1024
        )
        cut = dataclasses.replace(target, memory_bits_per_stage=32 * 1024)
        runtime = ElasticRuntime(
            target,
            config=RuntimeConfig(window_packets=500, drift_reconfig=False),
        )
        runtime.schedule_target_change(1500, cut)
        report = runtime.run(ChurningZipf(800, alpha=1.3, seed=3), 3000)
        assert report.packets == 3000

        children = _span_tree(obs.trace)
        assert "plan" in children["runtime.init"]
        assert "runtime.window" in children["runtime.run"]
        assert "runtime.reconfigure" in children["runtime.run"]
        rec_kids = children["runtime.reconfigure"]
        assert "plan" in rec_kids
        assert "runtime.migrate" in rec_kids
        assert "runtime.validate_swap" in rec_kids

        # Bridged telemetry landed inside spans, not in a parallel stream.
        [rec] = obs.trace.spans_named("runtime.reconfigure")
        kinds = {e.name for e in rec.events}
        assert "telemetry.reconfig_triggered" in kinds
        assert "telemetry.swap_committed" in kinds

        obj = chrome_trace(obs.trace)
        assert validate_chrome_trace(obj) > 0
        rendered = summarize_chrome_trace(obj)
        assert "runtime.run" in rendered

        # Metrics cover the control loop and the data path.
        assert obs.metrics.get("p4all_reconfigs_total").value(
            cause="target-change", outcome="committed") == 1
        windows = obs.metrics.get("p4all_windows_total").value()
        assert windows == report.packets // 500
        assert obs.metrics.get("p4all_packets_total") is not None


class TestCli:
    def test_compile_trace_and_metrics_flags(self, tmp_path):
        from repro.cli import main
        from repro.obs import (
            validate_chrome_trace_file,
            validate_prometheus_file,
        )

        prog = tmp_path / "prog.p4all"
        prog.write_text(SOURCE)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        rc = main([
            "compile", str(prog), "--target", "small",
            "--backend", "greedy",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
            "-o", str(tmp_path / "out.p4"),
        ])
        assert rc == 0
        assert validate_chrome_trace_file(trace_path) > 0
        assert validate_prometheus_file(metrics_path) > 0
        names = {e["name"]
                 for e in json.loads(trace_path.read_text())["traceEvents"]}
        assert "compile" in names
        # The CLI exporter disables the tracer again afterwards.
        assert not obs.trace.enabled

    def test_obs_summarizes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "prog.p4all"
        prog.write_text(SOURCE)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        assert main([
            "compile", str(prog), "--target", "small",
            "--backend", "greedy",
            "--trace", str(trace_path), "--metrics", str(metrics_path),
            "-o", str(tmp_path / "out.p4"),
        ]) == 0
        capsys.readouterr()
        rc = main(["obs", str(trace_path), "--metrics", str(metrics_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "slowest root span" in out
        assert "compile" in out
        assert "metric families" in out

    def test_obs_without_arguments_errors(self, capsys):
        from repro.cli import main

        assert main(["obs"]) == 2
        assert "nothing to summarize" in capsys.readouterr().err
