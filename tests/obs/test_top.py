"""``p4all top``: dashboard rendering from a registry, rate
computation across frames, and the embedded scenario driver."""

import dataclasses
import io

import pytest

from repro.obs import MetricsRegistry
from repro.obs.top import TopDashboard, _bar, _fmt_num, run_top


class TestHelpers:
    def test_bar_clamps_and_fills(self):
        assert _bar(0.0) == "·" * 20
        assert _bar(1.0) == "█" * 20
        assert _bar(2.0) == "█" * 20
        assert _bar(0.5).count("█") == 10

    def test_fmt_num(self):
        assert _fmt_num(3.0) == "3"
        assert _fmt_num(1234567) == "1,234,567"
        assert _fmt_num(0.25) == "0.250"


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("p4all_packets_total", labels=("engine",)).inc(
        100, engine="vector")
    reg.counter("p4all_worker_packets_total",
                labels=("worker", "shard_mode")).inc(
        50, worker="0", shard_mode="pool")
    reg.counter("p4all_fabric_packets_total", labels=("switch",)).inc(
        40, switch="s0")
    reg.counter("p4all_fleet_reconfigs_total",
                labels=("switch", "cause", "outcome")).inc(
        switch="s0", cause="cut", outcome="committed")
    reg.counter("p4all_fleet_migrations_total",
                labels=("src", "dst", "result")).inc(
        src="s0", dst="s1", result="committed")
    reg.gauge("p4all_fabric_window_hit_rate").set(0.5)
    reg.gauge("p4all_window_hit_rate").set(0.75)
    reg.gauge("p4all_slo_ewma", labels=("rule", "subject")).set(
        0.3, rule="hit_rate", subject="cms")
    reg.counter("p4all_slo_violations_total",
                labels=("rule", "subject")).inc(
        rule="hit_rate", subject="cms")
    reg.counter("p4all_telemetry_events_total", labels=("kind",)).inc(
        3, kind="window")
    reg.counter("p4all_reconfigs_total", labels=("cause", "outcome")).inc(
        cause="target-change", outcome="committed")
    reg.histogram("p4all_reconfig_seconds", buckets=(1, 10)).observe(2.0)
    return reg


class TestDashboard:
    def test_renders_every_section(self):
        frame = TopDashboard(_populated_registry()).render()
        assert "p4all top — frame 1" in frame
        for title in ("fleet", "pipeline", "tenants / SLO",
                      "control plane"):
            assert title in frame
        assert "s0" in frame and "reconfigs 1" in frame
        assert "s0→s1" in frame
        assert "w0[pool]" in frame
        assert "VIOLATIONS 1" in frame
        assert "mean reconfig 2.000s" in frame
        assert "window ×3" in frame

    def test_second_frame_shows_rates(self):
        reg = _populated_registry()
        dash = TopDashboard(reg)
        first = dash.render()
        assert "/s)" not in first  # no baseline yet
        reg.get("p4all_packets_total").inc(50, engine="vector")
        second = dash.render()
        assert "frame 2" in second
        assert "/s)" in second

    def test_empty_registry(self):
        frame = TopDashboard(MetricsRegistry()).render()
        assert "(no metrics yet)" in frame

    def test_ok_status_without_violations(self):
        reg = MetricsRegistry()
        reg.gauge("p4all_slo_ewma", labels=("rule", "subject")).set(
            0.8, rule="hit_rate", subject="kv")
        frame = TopDashboard(reg).render()
        assert "ok" in frame and "VIOLATIONS" not in frame


class TestRunTop:
    def test_run_mode_repaints_per_window_and_summarizes(self):
        from repro.pisa.resources import tofino

        target = dataclasses.replace(
            tofino(), stages=6, memory_bits_per_stage=64 * 1024)
        out = io.StringIO()
        rc = run_top(mode="run", packets=2000, window=500, universe=800,
                     alpha=1.3, seed=3, cut=False, clear=False, out=out,
                     target=target)
        assert rc == 0
        text = out.getvalue()
        # One frame per monitoring window plus the final frame.
        assert text.count("p4all top — frame") >= 4
        assert "\x1b[" not in text  # clear=False suppresses ANSI
        assert "pipeline" in text
        assert "done: 2000 packets" in text

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown top mode"):
            run_top(mode="nope", out=io.StringIO())
