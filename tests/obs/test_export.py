"""Exporter and validator tests: Chrome trace JSON, JSONL, Prometheus."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    validate_prometheus_file,
    validate_prometheus_text,
    write_chrome_trace,
    write_prometheus,
    write_trace_jsonl,
)


def _traced() -> Tracer:
    tracer = Tracer(enabled=True)
    with tracer.span("compile", backend="scipy") as outer:
        outer.event("checkpoint", phase="parse")
        with tracer.span("ilp.solve", status="optimal"):
            pass
    tracer.event("orphan", note="outside")
    return tracer


class TestChromeTrace:
    def test_structure_and_validation(self):
        obj = chrome_trace(_traced())
        assert validate_chrome_trace(obj) == len(obj["traceEvents"])
        assert obj["displayTimeUnit"] == "ms"
        phases = [e["ph"] for e in obj["traceEvents"]]
        assert phases.count("X") == 2
        assert phases.count("i") == 2  # span event + orphan
        assert "M" in phases

    def test_metadata_events_sort_first(self):
        events = chrome_trace(_traced())["traceEvents"]
        metas = [i for i, e in enumerate(events) if e["ph"] == "M"]
        assert metas == list(range(len(metas)))

    def test_args_carry_span_tree(self):
        events = chrome_trace(_traced())["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        outer = by_name["compile"]
        inner = by_name["ilp.solve"]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["parent_id"] is None
        assert outer["args"]["backend"] == "scipy"

    def test_category_is_name_prefix(self):
        events = chrome_trace(_traced())["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["ilp.solve"]["cat"] == "ilp"

    def test_instant_scope(self):
        events = chrome_trace(_traced())["traceEvents"]
        instants = {e["name"]: e for e in events if e["ph"] == "i"}
        assert instants["checkpoint"]["s"] == "t"  # span-attached: thread
        assert instants["orphan"]["s"] == "p"      # orphan: process

    def test_non_json_attrs_are_stringified(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x", obj=object(), seq=(1, 2), nested={"k": {1}}):
            pass
        obj = chrome_trace(tracer)
        validate_chrome_trace(obj)
        json.dumps(obj)  # fully serializable

    def test_write_and_validate_file(self, tmp_path):
        path = tmp_path / "sub" / "trace.json"
        write_chrome_trace(_traced(), path)
        assert validate_chrome_trace_file(path) > 0

    def test_write_trace_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        assert write_trace_jsonl(_traced(), path) == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert {l["name"] for l in lines} == {"compile", "ilp.solve"}


class TestChromeTraceValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_empty_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing 'ts'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 1}]}
            )

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "ts": 0,
                                  "pid": 1, "tid": 1}]}
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="invalid dur"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "dur": -1,
                                  "pid": 1, "tid": 1}]}
            )


class TestPrometheusValidator:
    def test_accepts_rendered_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total", help="h", labels=("x",)).inc(x="1")
        registry.histogram("b_seconds", help="h").observe(0.1)
        path = write_prometheus(registry, tmp_path / "m.prom")
        assert validate_prometheus_file(path) > 0

    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            validate_prometheus_text("a_total 1\n")

    def test_rejects_bad_type_line(self):
        with pytest.raises(ValueError, match="bad TYPE"):
            validate_prometheus_text("# TYPE a_total widget\na_total 1\n")

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ValueError, match="non-numeric"):
            validate_prometheus_text("# TYPE a counter\na banana\n")

    def test_rejects_bucket_without_le(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{x="1"} 1\nh_sum 1\nh_count 1\n')
        with pytest.raises(ValueError, match="missing le label"):
            validate_prometheus_text(text)

    def test_rejects_malformed_label_pair(self):
        with pytest.raises(ValueError):
            validate_prometheus_text('# TYPE a counter\na{k=unquoted} 1\n')

    def test_accepts_escaped_quotes_in_label_values(self):
        text = '# TYPE a counter\na{k="say \\"hi\\", ok"} 1\n'
        assert validate_prometheus_text(text) == 1

    def test_empty_text_is_zero_samples(self):
        assert validate_prometheus_text("") == 0
