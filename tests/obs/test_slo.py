"""SLO monitor: EWMA math, single-fire semantics, every emission
channel, and the end-to-end path from an induced per-tenant hit-rate
drop to a violation visible in ``p4all obs`` output."""

import dataclasses

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Tracer
from repro.obs.record import FlightRecorder
from repro.obs.slo import SloMonitor, SloRule, default_slo_rules
from repro.runtime import TelemetryBus


def make_monitor(rules, telemetry=None):
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry()
    recorder = FlightRecorder()
    monitor = SloMonitor(rules=rules, telemetry=telemetry, tracer=tracer,
                         registry=registry, recorder=recorder)
    return monitor, tracer, registry, recorder


RULE = SloRule("hit_rate", threshold=0.5, direction="min", alpha=0.5,
               min_samples=2, warmup=0)


class TestRule:
    def test_direction_validated(self):
        with pytest.raises(ValueError, match="direction"):
            SloRule("x", threshold=1.0, direction="sideways")

    def test_alpha_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            SloRule("x", threshold=1.0, alpha=0.0)

    def test_breached_by_direction(self):
        low = SloRule("low", threshold=0.5, direction="min")
        high = SloRule("high", threshold=0.5, direction="max")
        assert low.breached(0.4) and not low.breached(0.5)
        assert high.breached(0.6) and not high.breached(0.5)

    def test_default_rules_cover_the_promises(self):
        names = {r.name for r in default_slo_rules()}
        assert names == {"hit_rate", "utility_headroom", "reconfig_seconds"}


class TestMonitor:
    def test_first_sample_seeds_then_ewma_smooths(self):
        monitor, _, registry, _ = make_monitor([RULE])
        monitor.observe("hit_rate", "cms", 1.0)
        monitor.observe("hit_rate", "cms", 0.0)
        gauge = registry.get("p4all_slo_ewma")
        assert gauge.value(rule="hit_rate", subject="cms") == 0.5

    def test_no_verdict_before_min_samples(self):
        monitor, _, _, _ = make_monitor([RULE])
        assert monitor.observe("hit_rate", "cms", 0.0) is None
        assert not monitor.violations

    def test_warmup_consumed_before_evaluation(self):
        rule = SloRule("hit_rate", threshold=0.5, alpha=1.0,
                       min_samples=1, warmup=3)
        monitor, _, _, _ = make_monitor([rule])
        for _ in range(3):
            assert monitor.observe("hit_rate", "cms", 0.0) is None
        assert monitor.observe("hit_rate", "cms", 0.0) is not None

    def test_fires_once_per_excursion(self):
        monitor, _, registry, _ = make_monitor([RULE])
        monitor.observe("hit_rate", "cms", 0.0)
        record = monitor.observe("hit_rate", "cms", 0.0)
        assert record is not None and record["rule"] == "hit_rate"
        assert monitor.observe("hit_rate", "cms", 0.0) is None
        assert len(monitor) == 1
        counter = registry.get("p4all_slo_violations_total")
        assert counter.value(rule="hit_rate", subject="cms") == 1

    def test_recovery_rearms_the_rule(self):
        monitor, tracer, _, _ = make_monitor([RULE])
        monitor.observe("hit_rate", "cms", 0.0)
        monitor.observe("hit_rate", "cms", 0.0)          # fires
        monitor.observe("hit_rate", "cms", 1.0)          # ewma 0.5: recovers
        monitor.observe("hit_rate", "cms", 0.0)          # ewma 0.25: re-fires
        assert len(monitor) == 2
        names = [e.name for e in tracer.orphan_events]
        assert names.count("slo.slo_violation") == 2
        assert names.count("slo.slo_recovered") == 1

    def test_subjects_tracked_independently(self):
        monitor, _, _, _ = make_monitor([RULE])
        monitor.observe("hit_rate", "cms", 0.0)
        monitor.observe("hit_rate", "cms", 0.0)
        monitor.observe("hit_rate", "kv", 0.9)
        monitor.observe("hit_rate", "kv", 0.9)
        assert [v["subject"] for v in monitor.violations] == ["cms"]
        status = monitor.status()
        assert status["hit_rate:cms"]["violating"]
        assert not status["hit_rate:kv"]["violating"]

    def test_unknown_rule_is_ignored(self):
        monitor, _, _, _ = make_monitor([RULE])
        assert monitor.observe("no_such_rule", "cms", 0.0) is None

    def test_telemetry_bus_preferred_over_direct_tracer(self):
        bus = TelemetryBus()
        events = []
        bus.subscribe(events.append)
        monitor, tracer, _, _ = make_monitor([RULE], telemetry=bus)
        monitor.observe("hit_rate", "cms", 0.0, packet_index=1000)
        monitor.observe("hit_rate", "cms", 0.0, packet_index=1500)
        [event] = [e for e in events if e.kind == "slo_violation"]
        assert event.data["rule"] == "hit_rate"
        assert event.data["subject"] == "cms"
        assert event.packet_index == 1500
        # No duplicate direct tracer event when the bus carries it.
        assert not tracer.orphan_events

    def test_violation_lands_in_flight_ring(self):
        monitor, _, _, recorder = make_monitor([RULE])
        monitor.observe("hit_rate", "cms", 0.0)
        monitor.observe("hit_rate", "cms", 0.0)
        [entry] = [e for e in recorder.entries() if e["kind"] == "slo"]
        assert entry["name"] == "slo_violation"
        assert entry["data"]["subject"] == "cms"

    def test_max_direction_rule(self):
        rule = SloRule("reconfig_seconds", threshold=1.0, direction="max",
                       alpha=1.0, min_samples=1)
        monitor, _, _, _ = make_monitor([rule])
        assert monitor.observe("reconfig_seconds", "swap", 0.5) is None
        record = monitor.observe("reconfig_seconds", "swap", 5.0)
        assert record is not None and record["direction"] == "max"


class TestRuntimeE2E:
    def test_hit_rate_drop_surfaces_in_p4all_obs_output(self, tmp_path,
                                                        capsys):
        """An induced per-tenant hit-rate SLO breach must reach the run
        report, the trace, and the rendered ``p4all obs`` summary."""
        from repro.cli import main
        from repro.obs import write_chrome_trace
        from repro.pisa.resources import tofino
        from repro.runtime import ElasticRuntime, RuntimeConfig
        from repro.workloads import ChurningZipf

        target = dataclasses.replace(
            tofino(), stages=6, memory_bits_per_stage=64 * 1024)
        # A strict SLO the cold-start windows cannot meet: the smoothed
        # per-tenant hit rate drops below the floor and must fire.
        rules = (SloRule("hit_rate", threshold=0.95, alpha=0.5,
                         min_samples=1, warmup=1),)
        obs.trace.enable()
        runtime = ElasticRuntime(
            target,
            config=RuntimeConfig(window_packets=500, drift_reconfig=False,
                                 slo_rules=rules),
        )
        report = runtime.run(ChurningZipf(800, alpha=1.3, seed=3), 2000)
        assert report.slo_violations, report
        assert report.slo_violations[0]["rule"] == "hit_rate"
        assert {v["subject"] for v in report.slo_violations} <= {"cms", "kv"}

        path = tmp_path / "trace.json"
        write_chrome_trace(obs.trace, path)
        capsys.readouterr()
        assert main(["obs", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SLO violations" in out
        assert "hit_rate on" in out
        assert "telemetry.slo_violation" in out
