"""Flight recorder: ring bounds, tracer sink, JSONL dumps, and the
crash/signal dump hooks."""

import json
import os
import signal
import sys
import time

from repro.obs import MetricsRegistry, Tracer
from repro.obs.record import (
    FlightRecorder,
    install_flight_dump,
    maybe_install_from_env,
)


def _read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()
            if line.strip()]


class TestRing:
    def test_ring_is_bounded_and_keeps_newest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.note("batch", f"n{i}")
        assert len(rec) == 4
        entries = rec.entries()
        assert [e["name"] for e in entries] == ["n6", "n7", "n8", "n9"]
        # Sequence numbers keep counting across evictions.
        assert [e["seq"] for e in entries] == [7, 8, 9, 10]

    def test_entry_shape_and_optional_data(self):
        rec = FlightRecorder()
        rec.note("batch", "plain")
        rec.note("batch", "rich", packets=5)
        plain, rich = rec.entries()
        assert "data" not in plain
        assert rich["data"] == {"packets": 5}
        assert rich["wall_time"] > 0

    def test_disabled_recorder_records_nothing(self):
        rec = FlightRecorder(enabled=False)
        rec.note("batch", "x")
        assert len(rec) == 0

    def test_clear(self):
        rec = FlightRecorder()
        rec.note("a", "b")
        rec.clear()
        assert len(rec) == 0 and rec.entries() == []

    def test_tracer_sink_records_finished_spans(self):
        rec = FlightRecorder()
        tracer = Tracer(enabled=True)
        tracer.sinks.append(rec.on_span)
        with tracer.span("compile", backend="ilp"):
            pass
        [entry] = rec.entries()
        assert entry["kind"] == "span"
        assert entry["name"] == "compile"
        assert entry["data"]["attrs"]["backend"] == "ilp"
        assert entry["data"]["duration"] >= 0

    def test_non_json_safe_payloads_become_reprs(self, tmp_path):
        rec = FlightRecorder()
        rec.note("odd", "obj", thing=object(), ok=1)
        [entry] = rec.entries()
        assert entry["data"]["ok"] == 1
        assert isinstance(entry["data"]["thing"], str)
        # And the dump still serializes.
        rec.dump(tmp_path / "f.jsonl", registry=MetricsRegistry())


class TestDump:
    def test_dump_writes_jsonl_with_closing_snapshot(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(3)
        rec = FlightRecorder()
        rec.note("batch", "pisa.batch", packets=5)
        path = tmp_path / "flight.jsonl"
        assert rec.dump(path, registry=reg) == 1
        lines = _read_jsonl(path)
        assert lines[0]["kind"] == "batch"
        assert lines[-1]["kind"] == "metrics_snapshot"
        assert "c_total" in lines[-1]["metrics"]

    def test_empty_ring_dumps_snapshot_only(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        assert FlightRecorder().dump(path, registry=MetricsRegistry()) == 0
        [snap] = _read_jsonl(path)
        assert snap["kind"] == "metrics_snapshot"


class TestInstall:
    def test_excepthook_dumps_crash_context(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        rec = FlightRecorder()
        rec.note("batch", "before-crash")
        prev = sys.excepthook
        sys.excepthook = lambda *a: None  # silence the chained print
        try:
            uninstall = install_flight_dump(path, rec)
            sys.excepthook(ValueError, ValueError("boom"), None)
        finally:
            uninstall()
            sys.excepthook = prev
        kinds = [e["kind"] for e in _read_jsonl(path)]
        assert "batch" in kinds and "crash" in kinds
        assert kinds[-1] == "metrics_snapshot"

    def test_sigusr1_dumps(self, tmp_path):
        path = tmp_path / "sig.jsonl"
        rec = FlightRecorder()
        rec.note("batch", "steady")
        uninstall = install_flight_dump(path, rec)
        try:
            os.kill(os.getpid(), signal.SIGUSR1)
            deadline = time.time() + 5
            while not path.exists() and time.time() < deadline:
                time.sleep(0.01)
        finally:
            uninstall()
        entries = _read_jsonl(path)
        dumps = [e for e in entries
                 if e["kind"] == "flight" and e["name"] == "dump"]
        assert dumps and dumps[0]["data"]["reason"] == "signal"

    def test_uninstall_restores_hooks(self, tmp_path):
        prev_hook = sys.excepthook
        prev_signal = signal.getsignal(signal.SIGUSR1)
        uninstall = install_flight_dump(tmp_path / "f.jsonl",
                                        FlightRecorder())
        assert sys.excepthook is not prev_hook
        uninstall()
        assert sys.excepthook is prev_hook
        assert signal.getsignal(signal.SIGUSR1) == prev_signal

    def test_maybe_install_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT", raising=False)
        assert maybe_install_from_env(FlightRecorder()) is None
        monkeypatch.setenv("REPRO_FLIGHT", str(tmp_path / "env.jsonl"))
        uninstall = maybe_install_from_env(FlightRecorder())
        assert uninstall is not None
        uninstall()
