"""Summary renderers and their structured ``*_data`` companions:
empty inputs, deep trees, SLO sections, worker attribution, and the
combined ``p4all obs --format json`` output."""

import json

from repro.obs import MetricsRegistry, Tracer, chrome_trace
from repro.obs.record import FlightRecorder
from repro.obs.summary import (
    flight_summary_data,
    prometheus_summary_data,
    summarize_chrome_trace,
    summarize_flight_file,
    summarize_prometheus_text,
    trace_summary_data,
)


def _nested_trace(depth: int) -> dict:
    tracer = Tracer(enabled=True)

    def rec(d: int) -> None:
        with tracer.span(f"level{d}"):
            if d:
                rec(d - 1)
            else:
                tracer.event("telemetry.slo_violation", rule="hit_rate",
                             subject="cms", value=0.1, ewma=0.2,
                             threshold=0.25)

    rec(depth)
    return chrome_trace(tracer)


class TestTraceSummary:
    def test_empty_trace(self):
        assert summarize_chrome_trace({"traceEvents": []}) \
            == "trace contains no spans"
        data = trace_summary_data({"traceEvents": []})
        assert data["spans"] == 0 and data["aggregates"] == []

    def test_deep_tree_capped_at_tree_depth(self):
        rendered = summarize_chrome_trace(_nested_trace(10), tree_depth=3,
                                          top=5)
        # The aggregate table is capped too, so the deepest levels only
        # exist past both caps — and must not be rendered.
        assert "slowest root span" in rendered
        assert "level10" in rendered
        assert "level0" not in rendered
        assert "more span names" in rendered

    def test_slo_violations_called_out(self):
        data = trace_summary_data(_nested_trace(2))
        [record] = data["slo_violations"]
        assert record["rule"] == "hit_rate"
        assert "span_id" not in record
        rendered = summarize_chrome_trace(_nested_trace(2))
        assert "SLO violations (1):" in rendered
        assert "hit_rate on cms" in rendered

    def test_events_grouped_by_name(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as span:
            span.event("telemetry.window")
            span.event("telemetry.window")
            span.event("telemetry.swap_committed")
        data = trace_summary_data(chrome_trace(tracer))
        assert data["events_by_name"] == {"telemetry.window": 2,
                                          "telemetry.swap_committed": 1}
        rendered = summarize_chrome_trace(chrome_trace(tracer))
        assert "events by name:" in rendered

    def test_worker_attribution_collected(self):
        tracer = Tracer(enabled=True)
        with tracer.span("pisa.batch"):
            with tracer.span("pisa.worker.batch", worker=1):
                pass
            with tracer.span("pisa.worker.batch", worker=0):
                pass
        data = trace_summary_data(chrome_trace(tracer))
        assert data["workers"] == [0, 1]


class TestPrometheusSummary:
    def test_empty_text(self):
        assert summarize_prometheus_text("") == "no metrics"
        assert prometheus_summary_data("")["families"] == {}

    def test_histogram_suffixes_fold_into_one_family(self):
        reg = MetricsRegistry()
        reg.counter("p4all_packets_total", labels=("engine",)).inc(
            5, engine="vector")
        reg.histogram("p4all_reconfig_seconds", buckets=(1, 10)).observe(2)
        data = prometheus_summary_data(reg.to_prometheus())
        assert set(data["order"]) == {"p4all_packets_total",
                                      "p4all_reconfig_seconds"}
        hist = data["families"]["p4all_reconfig_seconds"]
        assert hist["type"] == "histogram"
        # _bucket/_sum/_count samples all land under the base family.
        suffixes = {s.split("{")[0].split()[0] for s in hist["samples"]}
        assert "p4all_reconfig_seconds_sum" in suffixes
        rendered = summarize_prometheus_text(reg.to_prometheus())
        assert "2 metric families" in rendered

    def test_sample_overflow_is_elided(self):
        reg = MetricsRegistry()
        c = reg.counter("many_total", labels=("i",))
        for i in range(12):
            c.inc(i=str(i))
        rendered = summarize_prometheus_text(reg.to_prometheus(),
                                             max_samples=8)
        assert "... and 4 more" in rendered


class TestFlightSummary:
    def test_dump_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        rec = FlightRecorder()
        rec.note("batch", "pisa.batch", packets=100)
        rec.note("slo", "slo_violation", rule="hit_rate", subject="cms",
                 ewma=0.1, threshold=0.25)
        path = tmp_path / "flight.jsonl"
        rec.dump(path, registry=reg)
        data = flight_summary_data(path)
        assert data["entries"] == 2
        assert data["by_kind"] == {"batch": 1, "slo": 1}
        assert data["metrics_families"] == 1
        [violation] = data["slo_violations"]
        assert violation["data"]["rule"] == "hit_rate"
        rendered = summarize_flight_file(path)
        assert "2 flight entries" in rendered
        assert "SLO violations (1):" in rendered
        assert "hit_rate on cms" in rendered

    def test_empty_dump(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        FlightRecorder().dump(path, registry=MetricsRegistry())
        assert summarize_flight_file(path) == "flight dump is empty"


class TestObsJsonFormat:
    def _artifacts(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(json.dumps(_nested_trace(3)))
        reg = MetricsRegistry()
        reg.counter("p4all_packets_total", labels=("engine",)).inc(
            7, engine="vector")
        metrics_path = tmp_path / "metrics.prom"
        metrics_path.write_text(reg.to_prometheus())
        rec = FlightRecorder()
        rec.note("batch", "pisa.batch", packets=7)
        flight_path = tmp_path / "flight.jsonl"
        rec.dump(flight_path, registry=reg)
        return trace_path, metrics_path, flight_path

    def test_format_json_combines_all_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        trace_path, metrics_path, flight_path = self._artifacts(tmp_path)
        rc = main(["obs", str(trace_path), "--metrics", str(metrics_path),
                   "--flight", str(flight_path), "--format", "json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["trace"]["spans"] == 4
        assert len(out["trace"]["slo_violations"]) == 1
        assert "p4all_packets_total" in out["metrics"]["families"]
        assert out["flight"]["entries"] == 1

    def test_format_json_with_trace_only(self, tmp_path, capsys):
        from repro.cli import main

        trace_path, _, _ = self._artifacts(tmp_path)
        rc = main(["obs", str(trace_path), "--format", "json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert set(out) == {"trace"}

    def test_text_mode_renders_flight_section(self, tmp_path, capsys):
        from repro.cli import main

        trace_path, metrics_path, flight_path = self._artifacts(tmp_path)
        rc = main(["obs", str(trace_path), "--metrics", str(metrics_path),
                   "--flight", str(flight_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "slowest root span" in out
        assert "metric families" in out
        assert "flight entries" in out
