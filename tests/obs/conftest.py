"""Fixtures keeping the global tracer/registry clean between tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_globals():
    """Tests may enable the global tracer; always restore disabled+empty."""
    yield
    obs.trace.disable()
    obs.trace.reset()
