"""Unit tests for the compiled execution engine's plan IR and wiring."""

from __future__ import annotations

import pytest

from repro.core import compile_source
from repro.pisa import (
    ENGINES,
    Packet,
    Pipeline,
    SimulationError,
    default_engine,
    small_target,
)
from repro.structures import CMS_SOURCE


@pytest.fixture(scope="module")
def compiled_cms():
    return compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32),
                          source_name="cms")


class TestEngineSelection:
    def test_default_is_compiled(self, compiled_cms, monkeypatch):
        monkeypatch.delenv("REPRO_PISA_ENGINE", raising=False)
        assert default_engine() == "compiled"
        pipe = Pipeline(compiled_cms)
        assert pipe.engine == "compiled"
        assert pipe.plan is not None

    def test_env_var_selects_interp(self, compiled_cms, monkeypatch):
        monkeypatch.setenv("REPRO_PISA_ENGINE", "interp")
        pipe = Pipeline(compiled_cms)
        assert pipe.engine == "interp"
        assert pipe.plan is None

    def test_env_var_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_PISA_ENGINE", "turbo")
        with pytest.raises(ValueError, match="turbo"):
            default_engine()

    def test_explicit_engine_rejects_unknown(self, compiled_cms):
        with pytest.raises(ValueError, match="turbo"):
            Pipeline(compiled_cms, engine="turbo")

    def test_engines_tuple(self):
        assert set(ENGINES) == {"compiled", "interp", "vector"}


class TestPlanStructure:
    def test_plan_has_only_active_stages(self, compiled_cms):
        pipe = Pipeline(compiled_cms, engine="compiled")
        active = [s for s, units in enumerate(pipe._stage_units) if units]
        assert [sp.stage for sp in pipe.plan.stages] == active

    def test_masks_cover_phv_layout(self, compiled_cms):
        pipe = Pipeline(compiled_cms, engine="compiled")
        for name in pipe.phv_layout.fields:
            width = pipe.phv_layout.width(name)
            assert pipe.plan.masks[name] == (1 << width) - 1

    def test_read_write_sets_lifted(self, compiled_cms):
        pipe = Pipeline(compiled_cms, engine="compiled")
        writes = set()
        for sp in pipe.plan.stages:
            writes |= sp.writes
        assert any("cms_count" in key for key in writes)
        assert "meta.cms_min" in writes

    def test_describe_mentions_fast_path(self, compiled_cms):
        pipe = Pipeline(compiled_cms, engine="compiled")
        text = pipe.plan.describe()
        assert "execution plan" in text
        assert "codegen fast path active" in text

    def test_fast_source_is_inspectable(self, compiled_cms):
        pipe = Pipeline(compiled_cms, engine="compiled")
        source = pipe.plan.fast_source
        assert source.startswith("def _fast_run(phv, hits):")
        compile(source, "<check>", "exec")  # stays valid Python


class TestProcessMany:
    def test_collect_returns_results(self, compiled_cms):
        pipe = Pipeline(compiled_cms)
        packets = [Packet(fields={"flow_id": i}) for i in range(5)]
        results = pipe.process_many(packets)
        assert len(results) == 5
        assert all(r.phv for r in results)

    def test_no_collect_returns_count(self, compiled_cms):
        pipe = Pipeline(compiled_cms)
        packets = (Packet(fields={"flow_id": i}) for i in range(7))
        assert pipe.process_many(packets, collect=False) == 7
        assert pipe.packets_processed == 7

    def test_callback_streams_results(self, compiled_cms):
        pipe = Pipeline(compiled_cms)
        seen = []
        count = pipe.process_many(
            (Packet(fields={"flow_id": i}) for i in range(4)),
            callback=lambda r: seen.append(r.get("meta.cms_min")),
        )
        assert count == 4
        assert len(seen) == 4

    def test_streaming_matches_collect(self, compiled_cms):
        packets = [Packet(fields={"flow_id": i % 3}) for i in range(9)]
        a = Pipeline(compiled_cms)
        b = Pipeline(compiled_cms)
        collected = [r.phv for r in a.process_many(packets)]
        streamed = []
        b.process_many(packets, callback=lambda r: streamed.append(r.phv))
        assert collected == streamed


class TestConflictSemantics:
    """Same-stage write conflicts raise the interpreter's exact error."""

    SOURCE = """
struct metadata {
    bit<16> a;
    bit<16> out;
}
control Ingress(inout metadata meta) {
    apply {
        meta.out = meta.a + 1;
        meta.out = meta.a + 2;
    }
}
utility: 1;
"""

    def test_both_engines_raise_identically(self):
        target = small_target(stages=4, memory_kb=8)
        try:
            compiled = compile_source(self.SOURCE, target,
                                      source_name="conflict")
        except Exception:
            pytest.skip("compiler schedules the writes apart")
        packet = Packet(fields={"a": 1})
        errors = {}
        for engine in ENGINES:
            pipe = Pipeline(compiled, engine=engine)
            try:
                pipe.process(packet)
                errors[engine] = None
            except SimulationError as exc:
                errors[engine] = str(exc)
        assert errors["compiled"] == errors["interp"]
