"""PHV layout and per-packet instance tests."""

import pytest

from repro.pisa.phv import PhvError, PhvLayout


class TestLayout:
    def test_allocate_and_width(self):
        layout = PhvLayout(128)
        layout.allocate("meta.a", 32)
        layout.allocate("meta.b", 9)
        assert layout.width("meta.a") == 32
        assert layout.used_bits == 41
        assert "meta.a" in layout and "meta.c" not in layout

    def test_budget_enforced(self):
        layout = PhvLayout(40)
        layout.allocate("meta.a", 32)
        with pytest.raises(PhvError, match="PHV overflow"):
            layout.allocate("meta.b", 16)

    def test_duplicate_field_rejected(self):
        layout = PhvLayout(64)
        layout.allocate("x", 8)
        with pytest.raises(PhvError, match="allocated twice"):
            layout.allocate("x", 8)

    def test_zero_width_rejected(self):
        with pytest.raises(PhvError, match="width must be positive"):
            PhvLayout(64).allocate("x", 0)


class TestInstance:
    def test_unset_fields_read_zero(self):
        layout = PhvLayout(64)
        layout.allocate("meta.a", 16)
        phv = layout.instantiate()
        assert phv.get("meta.a") == 0

    def test_set_masks_to_width(self):
        layout = PhvLayout(64)
        layout.allocate("meta.a", 8)
        phv = layout.instantiate()
        phv.set("meta.a", 0x1234)
        assert phv.get("meta.a") == 0x34

    def test_unallocated_access_raises(self):
        phv = PhvLayout(64).instantiate()
        with pytest.raises(PhvError, match="never allocated"):
            phv.get("ghost")
        with pytest.raises(PhvError, match="never allocated"):
            phv.set("ghost", 1)

    def test_snapshot_is_isolated(self):
        layout = PhvLayout(64)
        layout.allocate("meta.a", 16)
        phv = layout.instantiate()
        phv.set("meta.a", 5)
        snap = phv.snapshot()
        phv.set("meta.a", 6)
        assert snap["meta.a"] == 5

    def test_bulk_load(self):
        layout = PhvLayout(64)
        layout.allocate("a", 8)
        layout.allocate("b", 8)
        phv = layout.instantiate()
        phv.load({"a": 300, "b": 2})
        assert phv.get("a") == 300 & 0xFF
        assert phv.get("b") == 2
