"""Persistent worker-pool tests: lifecycle, plan-cache invalidation,
loud degradation, and merge-exactness properties.

The pool (:mod:`repro.pisa.pool`) replaces fork-per-batch with workers
that live as long as the :class:`~repro.pisa.pipeline.Pipeline`. The
contracts under test here are the ones a long-lived pool can silently
break where a fresh fork could not: stale cached plans after a table
mutation, register state drifting across batch reuse, and orphaned
children after ``close()``.
"""

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.pisa import Packet, Pipeline
from repro.pisa.sharded import classify_registers

from .test_pipeline import COUNTER, TABLED, build
from .test_vector import packets_for, register_state

pytestmark = pytest.mark.skipif(
    not hasattr(multiprocessing, "get_context"),
    reason="multiprocessing unavailable",
)


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable")


# All three merge classes in one program: counts merges additively,
# peaks by max, floors by min (floors is pre-seeded high in tests so
# the min merge has something to beat — cells start at 0).
MIXED = """
struct metadata {
    bit<32> flow_id;
    bit<32> val;
    bit<32> total;
}
register<bit<32>>[16] counts;
register<bit<32>>[16] peaks;
register<bit<32>>[16] floors;
action bump() { counts.add_read(meta.total, meta.flow_id, 1); }
action hi() { peaks.max_update(meta.flow_id, meta.val); }
action lo() { floors.min_update(meta.flow_id, meta.val); }
control Ingress(inout metadata meta) {
    apply { bump(); hi(); lo(); }
}
"""

HIGH = (1 << 32) - 1


def mixed_packets(pairs):
    return [Packet(fields={"flow_id": f, "val": v}) for f, v in pairs]


def seed_floors(pipe):
    for name in pipe.registers.names():
        if name.startswith("floors"):
            arr = pipe.registers.get(name)
            arr.load([HIGH] * arr.cells)


@needs_fork
class TestPoolLifecycle:
    def test_reuse_across_batches_exact_vs_inline(self, monkeypatch):
        # Three consecutive batches on ONE pool (spawned once) must end
        # bit-identical to the same batches run inline. Any canonical
        # register-sync bug compounds across batches, so each boundary
        # is checked, not just the final state.
        compiled, _ = build(MIXED)
        batches = [
            mixed_packets([(i % 11, (i * 37) % 5000) for i in range(300)]),
            mixed_packets([(i % 5, (i * 13) % 50) for i in range(200)]),
            mixed_packets([(i % 16, i) for i in range(250)]),
        ]

        inline = Pipeline(compiled, engine="vector")
        seed_floors(inline)
        pooled = Pipeline(compiled, engine="vector")
        seed_floors(pooled)
        try:
            for k, batch in enumerate(batches):
                monkeypatch.setenv("REPRO_PISA_SHARD_MODE", "inline")
                inline.process_many(list(batch), collect=False, workers=2)
                monkeypatch.setenv("REPRO_PISA_SHARD_MODE", "pool")
                pooled.process_many(list(batch), collect=False, workers=2)
                report = pooled.last_shard_report
                assert report["mode"] == "pool", report
                assert report["pool_spawns"] == 1, (k, report)
                assert register_state(inline) == register_state(pooled), \
                    f"state diverged after batch {k}"
        finally:
            pooled.close()

    def test_close_leaves_no_children(self):
        compiled, _ = build(COUNTER)
        with Pipeline(compiled, engine="vector") as pipe:
            pipe.process_many(packets_for([i % 7 for i in range(100)]),
                              collect=False, workers=2)
            assert pipe.last_shard_report["mode"] == "pool"
            assert len(multiprocessing.active_children()) == 2
        assert multiprocessing.active_children() == []
        pipe.close()  # idempotent

    def test_batch_after_close_respawns(self):
        # close() is a lifecycle point, not a poison pill: the next
        # sharded batch simply builds a fresh pool.
        compiled, _ = build(COUNTER)
        pipe = Pipeline(compiled, engine="vector")
        try:
            pipe.process_many(packets_for([1, 2, 3, 4]), collect=False,
                              workers=2)
            pipe.close()
            assert multiprocessing.active_children() == []
            pipe.process_many(packets_for([1, 2, 3, 4]), collect=False,
                              workers=2)
            assert pipe.last_shard_report["mode"] == "pool"
            assert pipe.registers.get(pipe.registers.names()[0]) is not None
        finally:
            pipe.close()

    def test_table_insert_between_batches_relowers_once(self):
        # The journal ships the mutation and each worker rebuilds its
        # cached VectorPlan exactly once — no respawn, no rebuild storm,
        # and crucially not zero (a stale plan would keep missing).
        compiled, _ = build(TABLED)
        pkts = lambda: [Packet(fields={"dst": d})  # noqa: E731
                        for d in (42, 1, 42, 9) * 50]
        pipe = Pipeline(compiled, engine="vector")
        try:
            r1 = pipe.process_many(pkts(), workers=2)
            assert not any(r.hit("route") for r in r1)

            pipe.table_add("route", match=(42,), action="set_port",
                           action_data=(7,))

            r2 = pipe.process_many(pkts(), workers=2)
            report = pipe.last_shard_report
            assert report["mode"] == "pool"
            assert report["pool_spawns"] == 1, report
            assert report["pool_relowers"] == [1, 1], report
            assert [r.hit("route") for r in r2] == [True, False] * 100
            assert all(r.get("meta.egress") == 7 for r in r2 if r.hit("route"))

            # No further mutation: the cached plan is reused as-is.
            pipe.process_many(pkts(), workers=2)
            assert pipe.last_shard_report["pool_relowers"] == [1, 1]
            assert pipe.last_shard_report["pool_spawns"] == 1
        finally:
            pipe.close()

    def test_out_of_band_table_edit_respawns(self):
        # Mutating a table behind the Pipeline API can't be journaled;
        # the pool must notice the version skew and respawn rather than
        # serve results from a stale plan.
        compiled, _ = build(TABLED)
        pipe = Pipeline(compiled, engine="vector")
        try:
            pipe.process_many([Packet(fields={"dst": 42})] * 40, workers=2)
            from repro.pisa.tables import TableEntry
            pipe.tables["route"].add_entry(
                TableEntry(match=(42,), action="set_port", action_data=(7,),
                           priority=0))
            results = pipe.process_many(
                [Packet(fields={"dst": 42})] * 40, workers=2)
            report = pipe.last_shard_report
            assert report["mode"] == "pool"
            assert report["pool_spawns"] == 2, report
            assert all(r.hit("route") for r in results)
        finally:
            pipe.close()

    def test_collect_preserves_lane_order(self):
        # Flow ids < 16 so every flow owns its register cell outright
        # (COUNTER has 16 cells): per-flow running counts are then
        # deterministic regardless of which worker a flow lands on.
        compiled, _ = build(COUNTER)
        flows = [(i * 31) % 13 for i in range(3000)]
        with Pipeline(compiled, engine="vector") as pipe:
            results = pipe.process_many(packets_for(flows), workers=4)
            assert pipe.last_shard_report["mode"] == "pool"
            assert [r.get("meta.flow_id") for r in results] == flows
            # Running counts prove per-flow sequencing survived the
            # scatter/gather round trip, not just the field values.
            seen = {}
            for r in results:
                f = r.get("meta.flow_id")
                seen[f] = seen.get(f, 0) + 1
                assert r.get("meta.total") == seen[f]


class TestDegradation:
    def test_no_vector_plan_degrades_loudly(self, monkeypatch):
        # The compiled engine has no VectorPlan, so the pool can't
        # attach; requesting it must still work — but say so in the
        # report and on the degradation counter.
        from repro.pisa import sharded

        monkeypatch.setenv("REPRO_PISA_SHARD_MODE", "pool")
        events = []
        monkeypatch.setattr(
            sharded, "_note_degraded",
            lambda *a: events.append(a))
        compiled, _ = build(COUNTER)
        pipe = Pipeline(compiled, engine="compiled")
        n = pipe.process_many(packets_for([1, 2, 3, 4]), collect=False,
                              workers=2)
        assert n == 4
        report = pipe.last_shard_report
        assert report["requested_mode"] == "pool"
        assert report["mode"] != "pool"
        assert events and events[0][0] == "pool"
        assert events[0][2] == "no_vector_plan"

    def test_fork_unavailable_degrades_to_inline(self, monkeypatch):
        import multiprocessing as mp

        def no_fork(method=None):
            raise ValueError("fork unavailable")

        monkeypatch.setattr(mp, "get_context", no_fork)
        compiled, _ = build(COUNTER)
        flows = [i % 5 for i in range(100)]
        ref = Pipeline(compiled, engine="vector")
        monkeypatch.setenv("REPRO_PISA_SHARD_MODE", "inline")
        ref.process_many(packets_for(flows), collect=False, workers=2)
        monkeypatch.delenv("REPRO_PISA_SHARD_MODE")

        pipe = Pipeline(compiled, engine="vector")
        pipe.process_many(packets_for(flows), collect=False, workers=2)
        report = pipe.last_shard_report
        assert report["mode"] == "inline"
        assert report["requested_mode"] == "auto"
        assert register_state(ref) == register_state(pipe)

    def test_degradation_metric_incremented(self, monkeypatch):
        from repro.obs import metrics as obs_metrics

        monkeypatch.setenv("REPRO_PISA_SHARD_MODE", "pool")
        compiled, _ = build(COUNTER)
        pipe = Pipeline(compiled, engine="compiled")  # no vplan -> degrade
        pipe.process_many(packets_for([1, 2]), collect=False, workers=2)
        counter = obs_metrics.get("p4all_shard_degraded_total")
        assert counter is not None
        # Labelled with the mode actually used after the fallback.
        assert counter.value(shard_mode="fork",
                             reason="no_vector_plan") >= 1


@needs_fork
class TestMergeProperties:
    def test_register_classes_reported(self):
        compiled, _ = build(MIXED)
        pipe = Pipeline(compiled, engine="vector")
        classes = classify_registers(pipe)
        kinds = {name.rsplit("[", 1)[0]: kind for name, kind in classes.items()}
        assert kinds["counts"] == "additive"
        assert kinds["peaks"] == "max"
        assert kinds["floors"] == "min"

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        pairs=st.lists(
            st.tuples(st.integers(min_value=0, max_value=(1 << 32) - 1),
                      st.integers(min_value=0, max_value=(1 << 32) - 1)),
            min_size=1, max_size=120),
        workers=st.sampled_from([1, 2, 4]),
        split=st.integers(min_value=0, max_value=120),
    )
    def test_pool_bit_identical_to_inline(self, pairs, workers, split):
        # Property: for a random additive/max/min register mix, pooled
        # merge across any worker count equals inline execution — and
        # stays equal when the stream is cut into two batches at an
        # arbitrary boundary (state must carry across the pool's
        # canonical-sync round trip). MonkeyPatch.context rather than
        # the fixture: hypothesis re-enters the test body per example.
        compiled, _ = build(MIXED)
        split = min(split, len(pairs))
        batches = [b for b in (pairs[:split], pairs[split:]) if b]

        with pytest.MonkeyPatch.context() as mp:
            inline = Pipeline(compiled, engine="vector")
            seed_floors(inline)
            mp.setenv("REPRO_PISA_SHARD_MODE", "inline")
            for batch in batches:
                inline.process_many(mixed_packets(batch), collect=False,
                                    workers=workers)

            mp.setenv("REPRO_PISA_SHARD_MODE", "pool")
            pooled = Pipeline(compiled, engine="vector")
            seed_floors(pooled)
            try:
                for batch in batches:
                    pooled.process_many(mixed_packets(batch), collect=False,
                                        workers=workers)
                if workers > 1:
                    assert pooled.last_shard_report["mode"] == "pool"
                assert register_state(inline) == register_state(pooled)
            finally:
                pooled.close()
