"""Hash-family tests: determinism, vector/scalar agreement, spread."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pisa.hashing import Crc32Hash, MultiplyShiftHash, hash_family


class TestMultiplyShift:
    def test_deterministic_across_instances(self):
        a = MultiplyShiftHash(7)
        b = MultiplyShiftHash(7)
        assert [a(k, width=1024) for k in range(50)] == [
            b(k, width=1024) for k in range(50)
        ]

    def test_different_seeds_differ(self):
        a = MultiplyShiftHash(1)
        b = MultiplyShiftHash(2)
        outs_a = [a(k, width=1 << 20) for k in range(100)]
        outs_b = [b(k, width=1 << 20) for k in range(100)]
        assert outs_a != outs_b

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=2**20))
    def test_in_range(self, key, width):
        fn = MultiplyShiftHash(3)
        assert 0 <= fn(key, width=width) < width

    def test_vector_matches_scalar(self):
        fn = MultiplyShiftHash(11)
        keys = np.arange(0, 500, dtype=np.uint64)
        vec = fn.vector(keys, 4096)
        scalar = [fn(int(k), width=4096) for k in keys]
        assert list(vec) == scalar

    def test_multi_argument_hashing(self):
        fn = MultiplyShiftHash(5)
        assert fn(1, 2, width=1024) != fn(2, 1, width=1024)

    def test_rough_uniformity(self):
        fn = MultiplyShiftHash(9)
        width = 64
        counts = np.zeros(width)
        for k in range(width * 200):
            counts[fn(k, width=width)] += 1
        # Each bucket within 3x of the mean — a coarse spread check.
        assert counts.max() < 3 * counts.mean()
        assert counts.min() > counts.mean() / 3

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(1)(5, width=0)


class TestCrc32:
    def test_deterministic(self):
        assert Crc32Hash(4)(123, width=100) == Crc32Hash(4)(123, width=100)

    def test_seed_changes_output_somewhere(self):
        outs = [
            (Crc32Hash(1)(k, width=1 << 16), Crc32Hash(2)(k, width=1 << 16))
            for k in range(64)
        ]
        assert any(a != b for a, b in outs)

    def test_vector_matches_scalar(self):
        fn = Crc32Hash(6)
        keys = np.arange(0, 50)
        assert list(fn.vector(keys, 97)) == [fn(int(k), width=97) for k in keys]


class TestFamilyLookup:
    def test_known_families(self):
        assert hash_family("multiply-shift") is MultiplyShiftHash
        assert hash_family("crc32") is Crc32Hash

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown hash family"):
            hash_family("md5")
