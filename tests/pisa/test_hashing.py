"""Hash-family tests: determinism, vector/scalar agreement, spread."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pisa.hashing import Crc32Hash, MultiplyShiftHash, hash_family


class TestMultiplyShift:
    def test_deterministic_across_instances(self):
        a = MultiplyShiftHash(7)
        b = MultiplyShiftHash(7)
        assert [a(k, width=1024) for k in range(50)] == [
            b(k, width=1024) for k in range(50)
        ]

    def test_different_seeds_differ(self):
        a = MultiplyShiftHash(1)
        b = MultiplyShiftHash(2)
        outs_a = [a(k, width=1 << 20) for k in range(100)]
        outs_b = [b(k, width=1 << 20) for k in range(100)]
        assert outs_a != outs_b

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=2**20))
    def test_in_range(self, key, width):
        fn = MultiplyShiftHash(3)
        assert 0 <= fn(key, width=width) < width

    def test_vector_matches_scalar(self):
        fn = MultiplyShiftHash(11)
        keys = np.arange(0, 500, dtype=np.uint64)
        vec = fn.vector(keys, 4096)
        scalar = [fn(int(k), width=4096) for k in keys]
        assert list(vec) == scalar

    def test_multi_argument_hashing(self):
        fn = MultiplyShiftHash(5)
        assert fn(1, 2, width=1024) != fn(2, 1, width=1024)

    def test_rough_uniformity(self):
        fn = MultiplyShiftHash(9)
        width = 64
        counts = np.zeros(width)
        for k in range(width * 200):
            counts[fn(k, width=width)] += 1
        # Each bucket within 3x of the mean — a coarse spread check.
        assert counts.max() < 3 * counts.mean()
        assert counts.min() > counts.mean() / 3

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(1)(5, width=0)

    def test_vector_overflow_boundaries_match_scalar(self):
        """uint64 multiply-shift must wrap mod 2**64 bit-for-bit: the
        boundary keys would silently lose low bits under any float or
        object-dtype promotion."""
        boundary = [0, 1, (1 << 32) - 1, 1 << 32, (1 << 63) - 1,
                    1 << 63, (1 << 64) - 1]
        keys = np.array(boundary, dtype=np.uint64)
        for seed in (0, 1, 7, 100):
            fn = MultiplyShiftHash(seed)
            for width in (2, 4096, 1 << 32):
                vec = fn.vector(keys, width)
                assert vec.dtype == np.int64
                assert list(vec) == [fn(k, width=width) for k in boundary]
            slots = fn.slot_vector(keys, cells=1021)
            assert slots.dtype == np.int64
            assert list(slots) == [fn.slot(k, cells=1021) for k in boundary]

    def test_vector_multi_overflow_boundaries_match_scalar(self):
        fn = MultiplyShiftHash(13)
        boundary = [0, (1 << 32) - 1, (1 << 64) - 1]
        cols = [np.array(boundary, dtype=np.uint64),
                np.array(boundary[::-1], dtype=np.uint64)]
        for width in (1024, 1 << 32):
            vec = fn.vector_multi(cols, width)
            assert vec.dtype == np.int64
            scalar = [fn(a, b, width=width)
                      for a, b in zip(boundary, boundary[::-1])]
            assert list(vec) == scalar

    def test_vector_multi_signed_input_wraps_like_scalar_mask(self):
        # The vector engine holds 64-bit fields as int64 bit patterns;
        # C-casting them to uint64 must equal the scalar's & (2**64-1).
        fn = MultiplyShiftHash(21)
        signed = np.array([-1, -(1 << 62), 5], dtype=np.int64)
        vec = fn.vector_multi([signed], 1 << 20)
        scalar = [fn(int(v) & ((1 << 64) - 1), width=1 << 20)
                  for v in signed]
        assert list(vec) == scalar

    def test_vector_multi_no_arguments_is_constant(self):
        fn = MultiplyShiftHash(2)
        assert int(fn.vector_multi([], 777)) == fn(width=777)


class TestCrc32:
    def test_deterministic(self):
        assert Crc32Hash(4)(123, width=100) == Crc32Hash(4)(123, width=100)

    def test_seed_changes_output_somewhere(self):
        outs = [
            (Crc32Hash(1)(k, width=1 << 16), Crc32Hash(2)(k, width=1 << 16))
            for k in range(64)
        ]
        assert any(a != b for a, b in outs)

    def test_vector_matches_scalar(self):
        fn = Crc32Hash(6)
        keys = np.arange(0, 50)
        assert list(fn.vector(keys, 97)) == [fn(int(k), width=97) for k in keys]


class TestFamilyLookup:
    def test_known_families(self):
        assert hash_family("multiply-shift") is MultiplyShiftHash
        assert hash_family("crc32") is Crc32Hash

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown hash family"):
            hash_family("md5")
