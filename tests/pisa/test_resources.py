"""Target specification tests."""

import pytest

from repro.pisa.resources import (
    ActionCost,
    TargetSpec,
    get_target,
    tofino,
    toy_three_stage,
)


class TestTargets:
    def test_tofino_matches_paper_parameters(self):
        t = tofino()
        # §6.2: S = 10, F = 4, L = 100, P = 4096; M = 1.75 Mb/stage.
        assert t.stages == 10
        assert t.stateful_alus_per_stage == 4
        assert t.stateless_alus_per_stage == 100
        assert t.phv_bits == 4096
        assert t.memory_bits_per_stage == int(1.75 * (1 << 20))

    def test_toy_matches_figure9_example(self):
        t = toy_three_stage()
        assert (t.stages, t.memory_bits_per_stage) == (3, 2048)
        assert t.stateful_alus_per_stage == t.stateless_alus_per_stage == 2

    def test_total_alus(self):
        t = toy_three_stage()
        assert t.total_alus == (2 + 2) * 3

    def test_lookup_by_name(self):
        assert get_target("tofino").name == "tofino"
        assert get_target("toy3").stages == 3
        with pytest.raises(KeyError, match="unknown target"):
            get_target("trident")

    def test_lookup_with_overrides(self):
        assert get_target("tofino", stages=12).stages == 12

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            TargetSpec("bad", stages=0, memory_bits_per_stage=1,
                       stateful_alus_per_stage=1, stateless_alus_per_stage=1,
                       phv_bits=1)


class TestAluCostModel:
    def test_hf_counts_stateful_ops(self):
        t = tofino()
        assert t.hf(ActionCost(stateful_ops=2)) == 2
        assert t.hf(ActionCost(stateless_ops=5)) == 0

    def test_hl_counts_stateless_and_hash(self):
        t = tofino()
        assert t.hl(ActionCost(stateless_ops=2, hash_ops=1)) == 3

    def test_cost_addition(self):
        total = ActionCost(1, 2, 3) + ActionCost(4, 5, 6)
        assert (total.stateful_ops, total.stateless_ops, total.hash_ops) == (5, 7, 9)

    def test_describe_mentions_parameters(self):
        text = tofino().describe()
        assert "S=10" in text and "F=4" in text and "L=100" in text
