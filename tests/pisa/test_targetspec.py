"""JSON target-specification tests."""

import json

import pytest

from repro.pisa.resources import tofino
from repro.pisa.targetspec import (
    load_target,
    save_target,
    target_from_dict,
    target_to_dict,
)


def minimal_spec(**overrides):
    spec = {
        "name": "custom",
        "stages": 8,
        "memory_bits_per_stage": 1 << 20,
        "stateful_alus_per_stage": 4,
        "stateless_alus_per_stage": 32,
        "phv_bits": 2048,
    }
    spec.update(overrides)
    return spec


class TestDictConversion:
    def test_minimal_spec(self):
        target = target_from_dict(minimal_spec())
        assert target.stages == 8
        assert target.hash_units_per_stage == 8  # default preserved

    def test_optional_fields(self):
        target = target_from_dict(minimal_spec(hash_units_per_stage=2,
                                               notes="lab switch"))
        assert target.hash_units_per_stage == 2
        assert target.notes == "lab switch"

    def test_missing_field_rejected(self):
        spec = minimal_spec()
        del spec["phv_bits"]
        with pytest.raises(ValueError, match="missing fields: phv_bits"):
            target_from_dict(spec)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields: tcam"):
            target_from_dict(minimal_spec(tcam=4))

    def test_round_trip(self):
        target = tofino()
        assert target_from_dict(target_to_dict(target)) == target


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "spec.json"
        save_target(tofino(), path)
        assert load_target(path) == tofino()

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            load_target(path)

    def test_cli_target_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.structures import CMS_SOURCE

        spec_path = tmp_path / "spec.json"
        save_target(target_from_dict(minimal_spec(name="labsw")), spec_path)
        prog = tmp_path / "cms.p4all"
        prog.write_text(CMS_SOURCE)
        assert main([
            "compile", str(prog), "--target-file", str(spec_path)
        ]) == 0
        out, err = capsys.readouterr()
        assert "labsw" in out  # target name in the generated header


class TestCliGraph:
    def test_dot_output(self, tmp_path, capsys):
        from repro.cli import main
        from repro.structures import CMS_SOURCE

        prog = tmp_path / "cms.p4all"
        prog.write_text(CMS_SOURCE)
        assert main(["graph", str(prog), "--target", "toy3"]) == 0
        out, _ = capsys.readouterr()
        assert out.startswith("digraph")
        assert "style=dashed" in out  # exclusion edges rendered
        assert "cms_incr[0]" in out
