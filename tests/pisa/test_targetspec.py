"""JSON target-specification tests."""

import json

import pytest

from repro.pisa.resources import tofino
from repro.pisa.targetspec import (
    load_target,
    save_target,
    target_from_dict,
    target_to_dict,
)


def minimal_spec(**overrides):
    spec = {
        "name": "custom",
        "stages": 8,
        "memory_bits_per_stage": 1 << 20,
        "stateful_alus_per_stage": 4,
        "stateless_alus_per_stage": 32,
        "phv_bits": 2048,
    }
    spec.update(overrides)
    return spec


class TestDictConversion:
    def test_minimal_spec(self):
        target = target_from_dict(minimal_spec())
        assert target.stages == 8
        assert target.hash_units_per_stage == 8  # default preserved

    def test_optional_fields(self):
        target = target_from_dict(minimal_spec(hash_units_per_stage=2,
                                               notes="lab switch"))
        assert target.hash_units_per_stage == 2
        assert target.notes == "lab switch"

    def test_missing_field_rejected(self):
        spec = minimal_spec()
        del spec["phv_bits"]
        with pytest.raises(ValueError, match="missing fields: phv_bits"):
            target_from_dict(spec)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields: tcam"):
            target_from_dict(minimal_spec(tcam=4))

    def test_round_trip(self):
        target = tofino()
        assert target_from_dict(target_to_dict(target)) == target

    def test_every_required_field_enforced(self):
        for field in ("name", "stages", "memory_bits_per_stage",
                      "stateful_alus_per_stage", "stateless_alus_per_stage",
                      "phv_bits"):
            spec = minimal_spec()
            del spec[field]
            with pytest.raises(ValueError, match=f"missing fields: {field}"):
                target_from_dict(spec)

    def test_multiple_missing_fields_all_named(self):
        spec = minimal_spec()
        del spec["stages"]
        del spec["phv_bits"]
        with pytest.raises(ValueError, match="stages, phv_bits"):
            target_from_dict(spec)


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "spec.json"
        save_target(tofino(), path)
        assert load_target(path) == tofino()

    def test_round_trip_all_optional_fields(self, tmp_path):
        """Every ``_OPTIONAL`` field survives save → load at a
        non-default value."""
        spec = minimal_spec(
            hash_units_per_stage=3,
            stateful_weight=2.5,
            stateless_weight=0.75,
            hash_weight=1.5,
            notes="lab switch rev B",
        )
        target = target_from_dict(spec)
        path = tmp_path / "full.json"
        save_target(target, path)
        loaded = load_target(path)
        assert loaded == target
        assert loaded.hash_units_per_stage == 3
        assert loaded.stateful_weight == 2.5
        assert loaded.stateless_weight == 0.75
        assert loaded.hash_weight == 1.5
        assert loaded.notes == "lab switch rev B"
        # The serialized form carries exactly the dataclass fields.
        data = json.loads(path.read_text())
        assert data == target_to_dict(target)

    def test_load_rejects_missing_field(self, tmp_path):
        spec = minimal_spec()
        del spec["memory_bits_per_stage"]
        path = tmp_path / "missing.json"
        path.write_text(json.dumps(spec))
        with pytest.raises(ValueError,
                           match="missing fields: memory_bits_per_stage"):
            load_target(path)

    def test_load_rejects_unknown_field(self, tmp_path):
        path = tmp_path / "unknown.json"
        path.write_text(json.dumps(minimal_spec(sram_blocks=96)))
        with pytest.raises(ValueError, match="unknown fields: sram_blocks"):
            load_target(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            load_target(path)

    def test_cli_target_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.structures import CMS_SOURCE

        spec_path = tmp_path / "spec.json"
        save_target(target_from_dict(minimal_spec(name="labsw")), spec_path)
        prog = tmp_path / "cms.p4all"
        prog.write_text(CMS_SOURCE)
        assert main([
            "compile", str(prog), "--target-file", str(spec_path)
        ]) == 0
        out, err = capsys.readouterr()
        assert "labsw" in out  # target name in the generated header


class TestCliGraph:
    def test_dot_output(self, tmp_path, capsys):
        from repro.cli import main
        from repro.structures import CMS_SOURCE

        prog = tmp_path / "cms.p4all"
        prog.write_text(CMS_SOURCE)
        assert main(["graph", str(prog), "--target", "toy3"]) == 0
        out, _ = capsys.readouterr()
        assert out.startswith("digraph")
        assert "style=dashed" in out  # exclusion edges rendered
        assert "cms_incr[0]" in out
