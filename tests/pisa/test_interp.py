"""Interpreter unit tests (ExecContext-level, no compilation)."""

import pytest

from repro.lang import parse_expression
from repro.lang.parser import Parser
from repro.pisa.hashing import MultiplyShiftHash
from repro.pisa.interp import ExecContext, SimulationError, eval_expr, exec_stmt
from repro.pisa.registers import RegisterFile
from repro.pisa.tables import MatchActionTable, TableEntry


def make_ctx(snapshot=None, registers=None):
    return ExecContext(
        snapshot=snapshot or {},
        registers=registers or RegisterFile(),
        tables={},
        hash_fns={},
        hash_factory=MultiplyShiftHash,
        actions={},
        consts={"LIMIT": 10},
    )


def parse_stmt(text: str):
    parser = Parser(f"control C(inout metadata m) {{ apply {{ {text} }} }}")
    return parser.parse_program().control("C").apply.stmts[0]


class TestEvalExpr:
    def test_literals_and_fields(self):
        ctx = make_ctx({"meta.a": 5})
        assert eval_expr(parse_expression("3"), ctx) == 3
        assert eval_expr(parse_expression("meta.a"), ctx) == 5
        assert eval_expr(parse_expression("meta.unset"), ctx) == 0

    def test_consts_resolve(self):
        ctx = make_ctx()
        assert eval_expr(parse_expression("LIMIT + 1"), ctx) == 11

    def test_local_scalars_shadow(self):
        ctx = make_ctx()
        ctx.scalars["port"] = 9
        assert eval_expr(parse_expression("port"), ctx) == 9

    def test_indexed_field_key_resolution(self):
        ctx = make_ctx({"meta.count[2]": 7})
        assert eval_expr(parse_expression("meta.count[1 + 1]"), ctx) == 7

    def test_ternary_lazy(self):
        ctx = make_ctx({"meta.a": 1})
        assert eval_expr(parse_expression("meta.a == 1 ? 10 : 20"), ctx) == 10

    def test_short_circuit_protects_rhs(self):
        # Without short-circuit this would raise (negative shift).
        ctx = make_ctx({"meta.x": 3})
        expr = parse_expression("(1 == 1) || ((meta.x >> (0 - 1)) == 0)")
        assert eval_expr(expr, ctx) == 1
        expr = parse_expression("(1 == 0) && ((meta.x >> (0 - 1)) == 0)")
        assert eval_expr(expr, ctx) == 0

    def test_hash_deterministic_and_seeded(self):
        ctx = make_ctx({"meta.a": 42})
        h1 = eval_expr(parse_expression("hash(1, meta.a)"), ctx)
        h1_again = eval_expr(parse_expression("hash(1, meta.a)"), ctx)
        h2 = eval_expr(parse_expression("hash(2, meta.a)"), ctx)
        assert h1 == h1_again
        assert h1 != h2

    def test_min_max_builtins(self):
        ctx = make_ctx()
        assert eval_expr(parse_expression("min(4, 2, 9)"), ctx) == 2
        assert eval_expr(parse_expression("max(4, 2, 9)"), ctx) == 9

    def test_unknown_call_raises(self):
        ctx = make_ctx()
        with pytest.raises(SimulationError, match="cannot evaluate call"):
            eval_expr(parse_expression("frob(1)"), ctx)


class TestExecStmt:
    def test_assign_visible_to_later_statements(self):
        ctx = make_ctx({"meta.a": 2})
        exec_stmt(parse_stmt("m.t = meta.a * 3;"), ctx)
        exec_stmt(parse_stmt("m.u = m.t + 1;"), ctx)
        assert ctx.local_writes["m.u"] == 7

    def test_register_roundtrip(self):
        regs = RegisterFile()
        regs.create("r[0]", 8, 32, stage=0)
        ctx = make_ctx(registers=regs)
        exec_stmt(parse_stmt("r.write(3, 44);"), ctx)
        exec_stmt(parse_stmt("r.read(m.v, 3);"), ctx)
        assert ctx.local_writes["m.v"] == 44

    def test_indexed_register_instance(self):
        regs = RegisterFile()
        regs.create("r[1]", 8, 32, stage=0)
        ctx = make_ctx(registers=regs)
        exec_stmt(parse_stmt("r[1].add(0, 5);"), ctx)
        assert regs.get("r[1]").read(0) == 5

    def test_table_apply_with_action_data(self):
        table = MatchActionTable("t", ["meta.k"], ["exact"])
        table.add_entry(TableEntry(match=(5,), action="set_v", action_data=(99,)))
        from repro.lang import parse_program

        program = parse_program(
            "action set_v(bit<32> v) { meta.out_v = v; }"
        )
        ctx = make_ctx({"meta.k": 5})
        ctx.tables["t"] = table
        ctx.actions = {"set_v": program.actions()[0]}
        exec_stmt(parse_stmt("t.apply();"), ctx)
        assert ctx.local_writes["meta.out_v"] == 99
        assert ctx.table_hits["t"] is True

    def test_table_action_data_arity_checked(self):
        table = MatchActionTable("t", ["meta.k"], ["exact"])
        table.add_entry(TableEntry(match=(5,), action="set_v", action_data=()))
        from repro.lang import parse_program

        program = parse_program("action set_v(bit<32> v) { meta.o = v; }")
        ctx = make_ctx({"meta.k": 5})
        ctx.tables["t"] = table
        ctx.actions = {"set_v": program.actions()[0]}
        with pytest.raises(SimulationError, match="data values"):
            exec_stmt(parse_stmt("t.apply();"), ctx)
