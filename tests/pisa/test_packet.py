"""Packet-container tests."""

from repro.pisa.packet import Packet, make_flow_packets


class TestPacket:
    def test_field_access(self):
        p = Packet(fields={"flow_id": 7})
        assert p.field("flow_id") == 7
        assert p.field("missing", default=0) == 0

    def test_field_missing_without_default_raises(self):
        import pytest

        with pytest.raises(KeyError):
            Packet().field("nope")

    def test_with_fields_copies(self):
        p = Packet(fields={"a": 1}, length=100)
        q = p.with_fields(a=2, b=3)
        assert p.fields == {"a": 1}
        assert q.fields == {"a": 2, "b": 3}
        assert q.length == 100

    def test_packet_ids_unique(self):
        ids = {Packet().packet_id for _ in range(10)}
        assert len(ids) == 10

    def test_repr_stable(self):
        assert "flow_id=5" in repr(Packet(fields={"flow_id": 5}))


class TestMakeFlowPackets:
    def test_count_and_fields(self):
        packets = make_flow_packets(9, count=4, start_time=10.0, dport=80)
        assert len(packets) == 4
        assert all(p.fields["flow_id"] == 9 for p in packets)
        assert all(p.fields["dport"] == 80 for p in packets)
        assert [p.timestamp for p in packets] == [10.0, 11.0, 12.0, 13.0]
