"""Quiesce discipline: bulk register ops only at inter-packet drain
points, never mid-batch (torn-state protection for migrations)."""

import numpy as np
import pytest

from repro.pisa import Packet
from repro.runtime import QuiesceError, snapshot_registers

from .test_pipeline import COUNTER, build


def packets(n, flow=5):
    return [Packet(fields={"flow_id": flow}) for _ in range(n)]


class TestQuiesceBarrier:
    def test_idle_pipeline_is_quiesced(self):
        _, pipe = build(COUNTER)
        assert not pipe.in_batch
        assert pipe.quiesce() is True

    def test_immediate_execution_when_idle(self):
        _, pipe = build(COUNTER)
        assert pipe.quiesce(lambda: 42) == 42

    def test_in_batch_flag_during_process_many(self):
        _, pipe = build(COUNTER)
        seen = []
        pipe.process_many(packets(3), collect=False,
                          callback=lambda _r: seen.append(pipe.in_batch))
        assert seen == [True, True, True]
        assert not pipe.in_batch

    def test_in_batch_resets_after_error(self):
        _, pipe = build(COUNTER)
        with pytest.raises(Exception):
            pipe.process_many([Packet(fields={"bogus": 1})])
        assert not pipe.in_batch


class TestMidBatchProtection:
    def test_snapshot_mid_batch_raises(self):
        _, pipe = build(COUNTER)
        errors = []

        def grab(_result):
            try:
                snapshot_registers(pipe)
            except QuiesceError as exc:
                errors.append(exc)

        pipe.process_many(packets(2), collect=False, callback=grab)
        assert len(errors) == 2

    def test_deferred_quiesce_runs_at_drain_point(self):
        _, pipe = build(COUNTER)
        snaps = []

        def grab(result):
            # Deferred: runs after this packet (and callback) completes.
            if pipe.quiesce(lambda: snaps.append(snapshot_registers(pipe))) is None:
                pass

        pipe.process_many(packets(3), collect=False, callback=grab)
        assert len(snaps) == 3
        # Each snapshot saw a consistent post-packet state: the counter
        # cell is exactly the number of packets processed so far.
        masses = [s.mass("counts") for s in snaps]
        assert masses == [1, 2, 3]

    def test_deferred_callbacks_drain_in_order(self):
        _, pipe = build(COUNTER)
        order = []

        def grab(_result):
            pipe.quiesce(lambda: order.append("a"))
            pipe.quiesce(lambda: order.append("b"))

        pipe.process_many(packets(2), collect=False, callback=grab)
        assert order == ["a", "b", "a", "b"]

    def test_snapshot_consistency_under_batch(self):
        # The load-bearing property: a snapshot requested mid-batch via
        # quiesce() never observes a torn half-packet state.
        _, pipe = build(COUNTER)
        snaps = []
        flows = [Packet(fields={"flow_id": k % 7}) for k in range(20)]

        def grab(_result):
            pipe.quiesce(lambda: snaps.append(
                snapshot_registers(pipe).mass("counts")
            ))

        pipe.process_many(flows, collect=False, callback=grab)
        # Mass after packet i is exactly i+1 — integral state only.
        assert snaps == list(range(1, 21))

    def test_quiesce_callback_exception_propagates_and_recovers(self):
        _, pipe = build(COUNTER)

        def boom(_result):
            pipe.quiesce(lambda: (_ for _ in ()).throw(ValueError("x")))

        with pytest.raises(ValueError):
            pipe.process_many(packets(2), collect=False, callback=boom)
        assert not pipe.in_batch
        # The pipeline still serves traffic afterwards.
        pipe.process(Packet(fields={"flow_id": 1}))


class TestQuiesceVectorEngine:
    """Drain points under whole-batch execution: chunk boundaries for
    the vector engine, the worker-join barrier under sharding."""

    def _vector_pipe(self):
        from repro.core import compile_source
        from repro.pisa import Pipeline, small_target

        compiled = compile_source(COUNTER, small_target(stages=6,
                                                        memory_kb=32))
        return Pipeline(compiled, engine="vector")

    def test_vector_chunk_boundaries_drain(self):
        pipe = self._vector_pipe()
        pipe.vector_chunk = 4
        snaps = []

        def feed():
            for i in range(10):
                if i == 2:
                    # Queued while the batch consumes the generator:
                    # in_batch is True, so this defers to the next
                    # chunk boundary.
                    assert pipe.quiesce(
                        lambda: snaps.append(
                            snapshot_registers(pipe).mass("counts"))
                    ) is None
                yield Packet(fields={"flow_id": 5})

        pipe.process_many(feed(), collect=False)
        # Drained at the first chunk boundary: 4 whole packets counted.
        assert snaps == [4]

    def test_sharded_join_drains_in_parent(self):
        pipe = self._vector_pipe()
        snaps = []
        flows = [Packet(fields={"flow_id": k % 5}) for k in range(20)]
        assert not pipe.in_batch
        pipe._in_batch = True
        try:
            assert pipe.quiesce(
                lambda: snaps.append(snapshot_registers(pipe).mass("counts"))
            ) is None
        finally:
            pipe._in_batch = False
        pipe.process_many(flows, collect=False, workers=2)
        # The callback fired at the worker-join boundary, after the
        # register merge: it saw all 20 increments, not a worker's
        # partial view.
        assert snaps == [20]

    def test_sharded_generator_quiesce_fires_after_merge(self):
        pipe = self._vector_pipe()
        snaps = []

        def feed():
            for k in range(12):
                if k == 3:
                    pipe.quiesce(lambda: snaps.append(
                        snapshot_registers(pipe).mass("counts")))
                yield Packet(fields={"flow_id": k % 3})

        pipe.process_many(feed(), collect=False, workers=2)
        assert snaps == [12]
