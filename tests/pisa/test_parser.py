"""Packet parser/deparser tests."""

import pytest
from hypothesis import given, strategies as st

from repro.pisa.parser import (
    Deparser,
    FieldSpec,
    PacketParser,
    ParseError,
    ParseState,
)


def ipv4_tcp_bytes(src=0x0A000001, dst=0x0A000002, sport=1234, dport=80):
    """Hand-build an Ethernet+IPv4+TCP header byte string."""
    eth = (0xAABBCCDDEEFF).to_bytes(6, "big") + (0x112233445566).to_bytes(6, "big")
    eth += (0x0800).to_bytes(2, "big")
    ipv4 = bytes([0x45, 0x00]) + (40).to_bytes(2, "big")
    ipv4 += (0).to_bytes(2, "big") + (0).to_bytes(2, "big")
    ipv4 += bytes([64, 6]) + (0).to_bytes(2, "big")
    ipv4 += src.to_bytes(4, "big") + dst.to_bytes(4, "big")
    tcp = sport.to_bytes(2, "big") + dport.to_bytes(2, "big")
    tcp += (0).to_bytes(4, "big") + (0).to_bytes(4, "big")
    tcp += (0x5000).to_bytes(2, "big") + (0xFFFF).to_bytes(2, "big")
    tcp += (0).to_bytes(2, "big") + (0).to_bytes(2, "big")
    return eth + ipv4 + tcp


class TestStockParser:
    def test_parses_ethernet_ipv4_tcp(self):
        parser = PacketParser.ethernet_ipv4()
        packet = parser.parse(ipv4_tcp_bytes())
        assert packet.fields["eth.ethertype"] == 0x0800
        assert packet.fields["ipv4.version"] == 4
        assert packet.fields["ipv4.protocol"] == 6
        assert packet.fields["ipv4.src"] == 0x0A000001
        assert packet.fields["tcp.sport"] == 1234
        assert packet.fields["tcp.dport"] == 80
        assert packet.fields["payload_len"] == 0

    def test_udp_branch(self):
        data = bytearray(ipv4_tcp_bytes())
        data[23] = 17  # protocol = UDP
        packet = PacketParser.ethernet_ipv4().parse(bytes(data[:42]))
        assert "udp.sport" in packet.fields
        assert "tcp.sport" not in packet.fields

    def test_non_ip_stops_after_ethernet(self):
        data = bytearray(ipv4_tcp_bytes())
        data[12:14] = (0x0806).to_bytes(2, "big")  # ARP
        packet = PacketParser.ethernet_ipv4().parse(bytes(data))
        assert "ipv4.src" not in packet.fields
        assert packet.fields["payload_len"] == len(data) - 14

    def test_truncated_packet_rejected(self):
        with pytest.raises(ParseError, match="truncated"):
            PacketParser.ethernet_ipv4().parse(ipv4_tcp_bytes()[:20])

    def test_payload_length(self):
        packet = PacketParser.ethernet_ipv4().parse(ipv4_tcp_bytes() + b"abcd")
        assert packet.fields["payload_len"] == 4


class TestGraphValidation:
    def test_unknown_start(self):
        with pytest.raises(ParseError, match="unknown start"):
            PacketParser([], start="nowhere")

    def test_dangling_transition(self):
        state = ParseState(
            name="s", header="h", fields=[FieldSpec("x", 8)],
            select_field="h.x", select={1: "ghost"},
        )
        with pytest.raises(ParseError, match="unknown state"):
            PacketParser([state], start="s")

    def test_loop_detected(self):
        state = ParseState(
            name="s", header="h", fields=[FieldSpec("x", 8)], default="s"
        )
        parser = PacketParser([state], start="s")
        with pytest.raises(ParseError, match="did not terminate"):
            parser.parse(bytes(64))


class TestDeparser:
    def test_round_trip(self):
        data = ipv4_tcp_bytes()
        parser = PacketParser.ethernet_ipv4()
        packet = parser.parse(data)
        assert Deparser(parser).emit(packet) == data

    def test_round_trip_with_payload(self):
        data = ipv4_tcp_bytes()
        parser = PacketParser.ethernet_ipv4()
        packet = parser.parse(data + b"xyz")
        assert Deparser(parser).emit(packet, payload=b"xyz") == data + b"xyz"

    def test_overrides_rewrite_fields(self):
        parser = PacketParser.ethernet_ipv4()
        packet = parser.parse(ipv4_tcp_bytes())
        out = Deparser(parser).emit(packet, overrides={"ipv4.ttl": 9})
        assert parser.parse(out).fields["ipv4.ttl"] == 9

    def test_hdr_prefixed_overrides(self):
        parser = PacketParser.ethernet_ipv4()
        packet = parser.parse(ipv4_tcp_bytes())
        out = Deparser(parser).emit(packet, overrides={"hdr.ipv4.ttl": 5})
        assert parser.parse(out).fields["ipv4.ttl"] == 5

    @given(st.binary(min_size=54, max_size=80))
    def test_parse_emit_parse_fixpoint(self, data):
        """For any bytes that parse, emit+parse is a fixpoint on fields."""
        parser = PacketParser.ethernet_ipv4()
        try:
            packet = parser.parse(data)
        except ParseError:
            return
        emitted = Deparser(parser).emit(packet)
        reparsed = parser.parse(
            emitted + bytes(max(0, packet.fields["payload_len"]))
        )
        for key, value in packet.fields.items():
            if key == "payload_len":
                continue
            assert reparsed.fields[key] == value
