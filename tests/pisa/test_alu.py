"""Stateless ALU op semantics."""

import pytest

from repro.pisa.alu import AluError, apply_binary, apply_unary


class TestBinaryOps:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("+", 3, 4, 7),
            ("-", 3, 4, -1),
            ("*", 5, 6, 30),
            ("/", 7, 2, 3),
            ("/", 7, 0, 0),     # defined total: /0 = 0
            ("%", 7, 3, 1),
            ("%", 7, 0, 0),
            ("&", 0b1100, 0b1010, 0b1000),
            ("|", 0b1100, 0b1010, 0b1110),
            ("^", 0b1100, 0b1010, 0b0110),
            ("<<", 1, 4, 16),
            (">>", 16, 4, 1),
            ("==", 3, 3, 1),
            ("!=", 3, 3, 0),
            ("<", 2, 3, 1),
            (">=", 2, 3, 0),
            ("&&", 1, 0, 0),
            ("||", 1, 0, 1),
        ],
    )
    def test_semantics(self, op, a, b, expected):
        assert apply_binary(op, a, b) == expected

    def test_huge_shift_is_clamped(self):
        # Shifts beyond 64 are clamped, not an exception / memory blowup.
        assert apply_binary(">>", 1, 10**9) == 0
        assert apply_binary("<<", 1, 10**9) == 1 << 64

    def test_unknown_op(self):
        with pytest.raises(AluError):
            apply_binary("**", 2, 3)


class TestUnaryOps:
    def test_semantics(self):
        assert apply_unary("-", 5) == -5
        assert apply_unary("!", 0) == 1
        assert apply_unary("!", 7) == 0
        assert apply_unary("~", 0) == -1

    def test_unknown_op(self):
        with pytest.raises(AluError):
            apply_unary("abs", -1)
