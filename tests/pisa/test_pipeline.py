"""Pipeline-simulator semantics: stage snapshots, guards, validation."""

import pytest

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.pisa.interp import SimulationError


def build(source: str, **target_kwargs):
    target = small_target(**{"stages": 6, "memory_kb": 32, **target_kwargs})
    compiled = compile_source(source, target)
    return compiled, Pipeline(compiled)


COUNTER = """
struct metadata {
    bit<32> flow_id;
    bit<32> total;
}
register<bit<32>>[16] counts;
action bump() {
    counts.add_read(meta.total, meta.flow_id, 1);
}
control Ingress(inout metadata meta) {
    apply { bump(); }
}
"""


class TestBasicExecution:
    def test_stateful_counter_across_packets(self):
        _, pipe = build(COUNTER)
        for expected in (1, 2, 3):
            result = pipe.process(Packet(fields={"flow_id": 5}))
            assert result.get("meta.total") == expected
        # A different flow hits a different cell.
        assert pipe.process(Packet(fields={"flow_id": 6})).get("meta.total") == 1

    def test_unknown_packet_field_rejected(self):
        _, pipe = build(COUNTER)
        with pytest.raises(SimulationError, match="matches no metadata"):
            pipe.process(Packet(fields={"bogus": 1}))

    def test_register_dump_via_control_plane(self):
        _, pipe = build(COUNTER)
        pipe.process(Packet(fields={"flow_id": 3}))
        dump = pipe.register_dump("counts")
        assert dump.sum() == 1


SEQUENTIAL = """
struct metadata {
    bit<32> flow_id;
    bit<32> a;
    bit<32> b;
}
control Ingress(inout metadata meta) {
    apply {
        meta.a = meta.flow_id + 1;
        meta.b = meta.a * 2;
    }
}
"""


class TestDependenciesRespected:
    def test_sequenced_assignments_see_earlier_writes(self):
        # meta.b depends on meta.a; the compiler places them in different
        # stages and the simulator propagates between stages.
        compiled, pipe = build(SEQUENTIAL)
        stages = {u.label: u.stage for u in compiled.units}
        assert len(set(stages.values())) == 2  # two stages used
        result = pipe.process(Packet(fields={"flow_id": 10}))
        assert result.get("meta.a") == 11
        assert result.get("meta.b") == 22


GUARDED = """
struct metadata {
    bit<32> flow_id;
    bit<32> flag;
    bit<32> res;
}
control Ingress(inout metadata meta) {
    apply {
        if (meta.flow_id > 100) {
            meta.flag = 1;
        } else {
            meta.flag = 2;
        }
        if (meta.flag == 1) {
            meta.res = 7;
        }
    }
}
"""


class TestGuards:
    def test_then_and_else_branches(self):
        _, pipe = build(GUARDED)
        high = pipe.process(Packet(fields={"flow_id": 200}))
        assert high.get("meta.flag") == 1
        assert high.get("meta.res") == 7
        low = pipe.process(Packet(fields={"flow_id": 50}))
        assert low.get("meta.flag") == 2
        assert low.get("meta.res") == 0


TABLED = """
struct metadata {
    bit<32> dst;
    bit<9> egress;
}
action set_port(bit<9> port) {
    meta.egress = port;
}
table route {
    key = { meta.dst : exact; }
    actions = { set_port; NoAction; }
    size = 8;
    default_action = NoAction;
}
control Ingress(inout metadata meta) {
    apply { route.apply(); }
}
"""


class TestTables:
    def test_table_hit_runs_action_with_data(self):
        _, pipe = build(TABLED)
        pipe.table_add("route", match=(42,), action="set_port", action_data=(7,))
        hit = pipe.process(Packet(fields={"dst": 42}))
        assert hit.hit("route")
        assert hit.get("meta.egress") == 7

    def test_table_miss_runs_default(self):
        _, pipe = build(TABLED)
        miss = pipe.process(Packet(fields={"dst": 1}))
        assert not miss.hit("route")
        assert miss.get("meta.egress") == 0

    def test_entry_removal(self):
        _, pipe = build(TABLED)
        pipe.table_add("route", match=(42,), action="set_port", action_data=(7,))
        assert pipe.table_remove("route", (42,))
        assert not pipe.process(Packet(fields={"dst": 42})).hit("route")


class TestValidation:
    def test_validation_catches_misplaced_register(self):
        from repro.pisa.pipeline import ValidationError

        target = small_target(stages=6, memory_kb=32)
        compiled = compile_source(COUNTER, target)  # fresh artifact to mutate
        unit = next(u for u in compiled.units if u.instance.registers)
        unit.stage = (unit.stage + 1) % target.stages
        with pytest.raises(ValidationError):
            Pipeline(compiled)

    def test_packets_processed_counter(self):
        _, pipe = build(COUNTER)
        pipe.process_many([Packet(fields={"flow_id": i}) for i in range(5)])
        assert pipe.packets_processed == 5
