"""Vector engine unit tests: columnar kernels, scalar islands, runtime
bail-outs, the batch conflict check, and the flow-sharded fan-out."""

import numpy as np
import pytest

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.pisa.interp import SimulationError
from repro.pisa.sharded import classify_registers, shard_assignments

from .test_pipeline import COUNTER, GUARDED, TABLED, build


def packets_for(flows):
    return [Packet(fields={"flow_id": f}) for f in flows]


def register_state(pipe):
    return {
        name: list(pipe.registers.get(name).dump())
        for name in pipe.registers.names()
    }


def both(source, packets, prepare=None):
    """Run packets on compiled and vector pipelines; return both."""
    compiled, _ = build(source)
    out = {}
    for engine in ("compiled", "vector"):
        pipe = Pipeline(compiled, engine=engine)
        if prepare is not None:
            prepare(pipe)
        results = pipe.process_many(
            [Packet(fields=dict(p.fields)) for p in packets])
        out[engine] = (pipe, results)
    return out


def assert_exact(out):
    pc, rc = out["compiled"]
    pv, rv = out["vector"]
    assert len(rc) == len(rv)
    for i, (a, b) in enumerate(zip(rc, rv)):
        assert a.phv == b.phv, f"packet {i} PHV"
        assert a.table_hits == b.table_hits, f"packet {i} hits"
    assert register_state(pc) == register_state(pv)


class TestVectorKernels:
    def test_counter_fully_vectorized(self):
        _, pipe = build(COUNTER)
        pipe = Pipeline(pipe.compiled, engine="vector")
        assert pipe.vplan is not None and pipe.vplan.ok
        assert not pipe.vplan.island_stages
        assert "vectorized" in pipe.vplan.describe()

    def test_same_key_read_after_write_exact(self):
        # Every packet hits the same cell: the segmented prefix-sum
        # add_read must reproduce the sequential running count.
        out = both(COUNTER, packets_for([5] * 50 + [6, 5, 6]))
        assert_exact(out)
        _, rv = out["vector"]
        assert [r.get("meta.total") for r in rv[:3]] == [1, 2, 3]

    def test_branch_masks(self):
        out = both(GUARDED, [Packet(fields={"flow_id": f})
                             for f in (200, 50, 101, 100, 0)])
        assert_exact(out)

    def test_table_lookup_hits_and_misses(self):
        def prepare(pipe):
            pipe.table_add("route", match=(42,), action="set_port",
                           action_data=(7,))

        out = both(TABLED, [Packet(fields={"dst": d})
                            for d in (42, 1, 42, 9)], prepare=prepare)
        assert_exact(out)
        _, rv = out["vector"]
        assert [r.hit("route") for r in rv] == [True, False, True, False]

    def test_table_mutation_invalidates_lookup_cache(self):
        compiled, _ = build(TABLED)
        pipe = Pipeline(compiled, engine="vector")
        assert not pipe.process_many([Packet(fields={"dst": 42})])[0].hit("route")
        pipe.table_add("route", match=(42,), action="set_port",
                       action_data=(7,))
        hit = pipe.process_many([Packet(fields={"dst": 42})])[0]
        assert hit.hit("route") and hit.get("meta.egress") == 7
        pipe.table_remove("route", (42,))
        assert not pipe.process_many([Packet(fields={"dst": 42})])[0].hit("route")

    def test_single_packet_process_uses_scalar_path(self):
        compiled, _ = build(COUNTER)
        pipe = Pipeline(compiled, engine="vector")
        assert pipe.process(Packet(fields={"flow_id": 1})).get("meta.total") == 1


WIDE = """
struct metadata {
    bit<32> flow_id;
    bit<64> wide;
}
control Ingress(inout metadata meta) {
    apply {
        meta.wide = meta.flow_id - 1;
    }
}
"""


class TestWideFields:
    def test_wide_field_bit_patterns_round_trip(self):
        # flow_id 0 wraps to 2**64 - 1 in a 64-bit field: stored as an
        # int64 bit pattern in the column, converted back on the way out.
        out = both(WIDE, packets_for([0, 1, 7]))
        assert_exact(out)
        _, rv = out["vector"]
        assert rv[0].get("meta.wide") == (1 << 64) - 1
        assert rv[1].get("meta.wide") == 0


REG64 = """
struct metadata {
    bit<32> flow_id;
    bit<64> total;
}
register<bit<64>>[16] counts;
control Ingress(inout metadata meta) {
    apply {
        counts.add_read(meta.total, meta.flow_id, 1);
    }
}
"""


class TestScalarIslands:
    def test_64bit_registers_island_but_stay_exact(self):
        compiled, _ = build(REG64)
        pipe = Pipeline(compiled, engine="vector")
        assert pipe.vplan is not None and pipe.vplan.ok
        assert pipe.vplan.island_stages
        assert "island" in pipe.vplan.describe()
        out = both(REG64, packets_for([5] * 10 + [6]))
        assert_exact(out)


class TestRuntimeBail:
    def test_oversized_action_data_bails_to_scalar(self):
        # Action data outside the vector engine's static range flags the
        # entry; lanes selecting it re-run the stage as a scalar island.
        big = (1 << 31) + 5

        def prepare(pipe):
            pipe.table_add("route", match=(1,), action="set_port",
                           action_data=(big,))
            pipe.table_add("route", match=(2,), action="set_port",
                           action_data=(7,))

        out = both(TABLED, [Packet(fields={"dst": d})
                            for d in (1, 2, 3, 1)], prepare=prepare)
        assert_exact(out)


CONFLICT = """
struct metadata {
    bit<16> a;
    bit<16> out;
}
control Ingress(inout metadata meta) {
    apply {
        meta.out = meta.a + 1;
        meta.out = meta.a + 2;
    }
}
"""


class TestConflictError:
    def test_batch_conflict_raises_scalar_error_message(self):
        target = small_target(stages=4, memory_kb=8)
        try:
            compiled = compile_source(CONFLICT, target,
                                      source_name="conflict")
        except Exception:
            pytest.skip("compiler schedules the writes apart")
        pipe = Pipeline(compiled, engine="vector")
        if pipe.vplan is None or not pipe.vplan.ok:
            pytest.skip("conflict source not vector-eligible")
        with pytest.raises(SimulationError,
                           match="write different values"):
            pipe.process_many([Packet(fields={"a": 1})] * 3)


class TestSharded:
    # Both multiprocess modes must satisfy the same merge contract:
    # "pool" is the persistent worker pool, "fork" the per-batch
    # fallback it replaced.
    @pytest.mark.parametrize("mode", ["pool", "fork"])
    def test_additive_merge_bit_exact(self, monkeypatch, mode):
        monkeypatch.setenv("REPRO_PISA_SHARD_MODE", mode)
        compiled, _ = build(COUNTER)
        flows = [i % 7 for i in range(400)]
        seq = Pipeline(compiled, engine="vector")
        seq.process_many(packets_for(flows), collect=False)
        for workers in (2, 3):
            shard = Pipeline(compiled, engine="vector")
            n = shard.process_many(packets_for(flows), collect=False,
                                   workers=workers)
            assert n == 400
            assert shard.packets_processed == 400
            assert register_state(seq) == register_state(shard)
            report = shard.last_shard_report
            assert report["mode"] == mode
            assert report["workers"] == workers
            assert sum(report["counts"]) == 400
            assert all(b >= 0 for b in report["busy_seconds"])
            shard.close()

    @pytest.mark.parametrize("mode", ["pool", "fork"])
    def test_lane_order_preserved(self, monkeypatch, mode):
        monkeypatch.setenv("REPRO_PISA_SHARD_MODE", mode)
        compiled, _ = build(COUNTER)
        with Pipeline(compiled, engine="vector") as pipe:
            flows = [(i * 31) % 97 for i in range(120)]
            results = pipe.process_many(packets_for(flows), workers=2)
            assert [r.get("meta.flow_id") for r in results] == flows

    def test_same_key_routes_to_one_worker(self):
        pkts = packets_for([3] * 10 + [8] * 10)
        assign = shard_assignments(pkts, workers=4)
        assert len(set(assign[:10].tolist())) == 1
        assert len(set(assign[10:].tolist())) == 1

    def test_callback_incompatible_with_workers(self):
        compiled, _ = build(COUNTER)
        pipe = Pipeline(compiled, engine="vector")
        with pytest.raises(ValueError, match="workers"):
            pipe.process_many(packets_for([1]), workers=2,
                              callback=lambda r: None)

    def test_classification(self):
        compiled, _ = build(COUNTER)
        pipe = Pipeline(compiled, engine="vector")
        classes = classify_registers(pipe)
        assert set(classes.values()) == {"additive"}

    def test_inline_fallback_matches_fork(self, monkeypatch):
        import multiprocessing as mp

        compiled, _ = build(COUNTER)
        flows = [i % 5 for i in range(100)]
        forked = Pipeline(compiled, engine="vector")
        forked.process_many(packets_for(flows), collect=False, workers=2)

        def no_fork(method=None):
            raise ValueError("fork unavailable")

        monkeypatch.setattr(mp, "get_context", no_fork)
        inline = Pipeline(compiled, engine="vector")
        inline.process_many(packets_for(flows), collect=False, workers=2)
        assert inline.last_shard_report["mode"] == "inline"
        assert register_state(forked) == register_state(inline)

    def test_shard_mode_env_forces_inline(self, monkeypatch):
        monkeypatch.setenv("REPRO_PISA_SHARD_MODE", "inline")
        compiled, _ = build(COUNTER)
        pipe = Pipeline(compiled, engine="vector")
        pipe.process_many(packets_for([i % 5 for i in range(60)]),
                          collect=False, workers=2)
        report = pipe.last_shard_report
        assert report["mode"] == "inline"
        assert sum(report["counts"]) == 60

    def test_works_on_compiled_engine_too(self):
        # Sharding is an engine-independent front end.
        compiled, _ = build(COUNTER)
        pipe = Pipeline(compiled, engine="compiled")
        n = pipe.process_many(packets_for([1, 2, 3, 4]), collect=False,
                              workers=2)
        assert n == 4
