"""Register array / register file semantics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pisa.registers import RegisterArray, RegisterError, RegisterFile


class TestRegisterArray:
    def test_initially_zero(self):
        r = RegisterArray("r", 8, 32)
        assert all(r.read(i) == 0 for i in range(8))

    def test_write_read(self):
        r = RegisterArray("r", 8, 32)
        r.write(3, 77)
        assert r.read(3) == 77

    def test_write_masks_to_width(self):
        r = RegisterArray("r", 4, 8)
        r.write(0, 0x1FF)
        assert r.read(0) == 0xFF

    def test_index_wraps_modulo_size(self):
        r = RegisterArray("r", 4, 32)
        r.write(6, 5)
        assert r.read(2) == 5

    def test_add_returns_new_value_and_wraps(self):
        r = RegisterArray("r", 2, 8)
        assert r.add(0, 200) == 200
        assert r.add(0, 100) == (300 % 256)

    def test_min_max_update(self):
        r = RegisterArray("r", 2, 16)
        r.write(0, 50)
        assert r.max_update(0, 40) == 50
        assert r.max_update(0, 60) == 60
        assert r.min_update(0, 55) == 55
        assert r.min_update(0, 70) == 55

    def test_swap_returns_old(self):
        r = RegisterArray("r", 2, 16)
        r.write(1, 9)
        assert r.swap(1, 42) == 9
        assert r.read(1) == 42

    def test_cond_add(self):
        r = RegisterArray("r", 2, 16)
        assert r.cond_add(0, False, 5) == 0
        assert r.cond_add(0, True, 5) == 5
        assert r.read(0) == 5

    def test_size_bits(self):
        assert RegisterArray("r", 128, 32).size_bits == 4096

    def test_dump_is_a_copy(self):
        r = RegisterArray("r", 4, 32)
        dump = r.dump()
        dump[0] = 99
        assert r.read(0) == 0

    def test_load_shape_checked(self):
        r = RegisterArray("r", 4, 32)
        with pytest.raises(RegisterError, match="load shape"):
            r.load(np.zeros(5))

    def test_invalid_construction(self):
        with pytest.raises(RegisterError):
            RegisterArray("r", 0, 32)
        with pytest.raises(RegisterError):
            RegisterArray("r", 4, 65)

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 2**31)),
                    max_size=50))
    def test_model_matches_dict(self, ops):
        """Register behaves like a dict with modular indexing + masking."""
        r = RegisterArray("r", 16, 32)
        model = {}
        for idx, value in ops:
            r.write(idx, value)
            model[idx % 16] = value & 0xFFFFFFFF
        for idx, expected in model.items():
            assert r.read(idx) == expected


class TestRegisterFile:
    def test_create_and_stage_tracking(self):
        rf = RegisterFile()
        rf.create("cms[0]", 64, 32, stage=2)
        rf.create("cms[1]", 64, 32, stage=3)
        assert rf.stage_of("cms[0]") == 2
        assert [a.name for a in rf.in_stage(3)] == ["cms[1]"]
        assert rf.memory_bits_in_stage(2) == 64 * 32

    def test_duplicate_rejected(self):
        rf = RegisterFile()
        rf.create("r[0]", 4, 8, stage=0)
        with pytest.raises(RegisterError, match="created twice"):
            rf.create("r[0]", 4, 8, stage=0)

    def test_missing_lookup(self):
        with pytest.raises(RegisterError, match="no register instance"):
            RegisterFile().get("ghost[0]")

    def test_clear_all(self):
        rf = RegisterFile()
        rf.create("a[0]", 4, 8, stage=0)
        rf.get("a[0]").write(0, 3)
        rf.clear_all()
        assert rf.get("a[0]").read(0) == 0


class TestOccupancy:
    def test_nonzero_cells_and_occupancy(self):
        r = RegisterArray("r", 8, 32)
        assert r.nonzero_cells() == 0
        assert r.occupancy == 0.0
        r.write(0, 5)
        r.write(3, 1)
        assert r.nonzero_cells() == 2
        assert r.occupancy == pytest.approx(0.25)


class TestStateSnapshots:
    def make_file(self):
        rf = RegisterFile()
        rf.create("a[0]", 4, 32, stage=0)
        rf.create("b[0]", 8, 16, stage=1)
        rf.get("a[0]").write(1, 11)
        rf.get("b[0]").write(2, 22)
        return rf

    def test_export_import_round_trip(self):
        rf = self.make_file()
        snapshot = rf.export_state()
        rf.clear_all()
        loaded = rf.import_state(snapshot)
        assert sorted(loaded) == ["a[0]", "b[0]"]
        assert rf.get("a[0]").read(1) == 11
        assert rf.get("b[0]").read(2) == 22

    def test_export_is_a_snapshot_not_a_view(self):
        rf = self.make_file()
        snapshot = rf.export_state()
        rf.get("a[0]").write(1, 99)
        assert snapshot["a[0]"][1] == 11

    def test_import_skips_mismatched_shapes(self):
        rf = self.make_file()
        snapshot = rf.export_state()
        other = RegisterFile()
        other.create("a[0]", 4, 32, stage=0)   # matches
        other.create("b[0]", 16, 16, stage=1)  # resized: skipped
        loaded = other.import_state(snapshot)
        assert loaded == ["a[0]"]
        assert other.get("b[0]").read(2) == 0

    def test_import_strict_raises_on_mismatch(self):
        rf = self.make_file()
        snapshot = rf.export_state()
        other = RegisterFile()
        other.create("a[0]", 4, 32, stage=0)
        with pytest.raises(RegisterError, match="no matching array"):
            other.import_state(snapshot, strict=True)
