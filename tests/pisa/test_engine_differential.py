"""Differential testing: compiled plan ≡ interpreter ≡ vector engine.

The compiled engine (`repro.pisa.compiled`) and the columnar vector
engine (`repro.pisa.vector`) are optimizations, not semantics changes:
for every example app — CMS, Bloom filter, key-value store, NetCache
with its routing table — random packet streams must produce identical
PHV results, table hits, and final register state on all three engines,
including after a runtime hot-swap with state migration.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import BLOOM_SOURCE, CMS_SOURCE, KV_SOURCE

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

flow_ids = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    min_size=1, max_size=60,
)


@pytest.fixture(scope="module")
def small6():
    return small_target(stages=6, memory_kb=32)


@pytest.fixture(scope="module", params=["cms", "bloom", "kv"],
                ids=["cms", "bloom", "kv"])
def compiled_app(request, small6):
    source = {"cms": CMS_SOURCE, "bloom": BLOOM_SOURCE,
              "kv": KV_SOURCE}[request.param]
    return compile_source(source, small6, source_name=request.param)


def _register_state(pipeline):
    state = {}
    for alloc in pipeline.compiled.registers:
        name = f"{alloc.family}[{alloc.index}]"
        state[name] = list(pipeline.registers.get(name).dump())
    return state


def assert_equivalent(compiled, packets, prepare=None):
    """Run the same packets through all engines; everything must match."""
    engines = {}
    for engine in ("compiled", "interp", "vector"):
        pipe = Pipeline(compiled, engine=engine)
        if prepare is not None:
            prepare(pipe)
        results = pipe.process_many(list(packets))
        engines[engine] = (pipe, results)
    pc, rc = engines["compiled"]
    for other in ("interp", "vector"):
        po, ro = engines[other]
        for n, (a, b) in enumerate(zip(rc, ro)):
            assert a.phv == b.phv, f"packet {n}: PHV diverged on {other}"
            assert a.table_hits == b.table_hits, \
                f"packet {n}: hits diverged on {other}"
        assert _register_state(pc) == _register_state(po), \
            f"register state diverged on {other}"


class TestExampleApps:
    @_SETTINGS
    @given(flows=flow_ids)
    def test_library_apps_equivalent(self, compiled_app, flows):
        packets = [Packet(fields={"flow_id": f}) for f in flows]
        assert_equivalent(compiled_app, packets)

    def test_compiled_engine_builds_plan(self, compiled_app):
        pipe = Pipeline(compiled_app, engine="compiled")
        assert pipe.plan is not None
        assert pipe.plan.stages
        # All three library apps are fully static: the codegen fast path
        # must have kicked in (it is where the throughput target lives).
        assert pipe.plan.fast_run is not None
        assert "def _fast_run" in pipe.plan.fast_source


class TestCollisionBatches:
    """The vector engine's same-key read-after-write hazard handling:
    batches engineered to hit the same register cells many times within
    one kernel invocation must still match the sequential engines
    exactly (segmented prefix sums or a scalar island — either way,
    bit-for-bit)."""

    @_SETTINGS
    @given(
        hot=st.lists(st.integers(min_value=0, max_value=3),
                     min_size=4, max_size=80),
        salt=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_same_key_collision_batches(self, compiled_app, hot, salt):
        # Mostly a handful of hot keys (guaranteed same-cell collisions
        # within every batch), with one arbitrary key mixed in.
        flows = [h * 7 + 1 for h in hot] + [salt]
        packets = [Packet(fields={"flow_id": f}) for f in flows]
        assert_equivalent(compiled_app, packets)

    def test_single_hot_key_long_batch(self, compiled_app):
        packets = [Packet(fields={"flow_id": 42}) for _ in range(300)]
        assert_equivalent(compiled_app, packets)


class TestNetCache:
    """Tables, actions with data, guards, and the cache controller."""

    @pytest.fixture(scope="class")
    def nc_compiled(self):
        import dataclasses

        from repro.apps.netcache import netcache_source
        from repro.pisa.resources import tofino

        mini = dataclasses.replace(
            tofino(), stages=6, memory_bits_per_stage=64 * 1024
        )
        return compile_source(
            netcache_source(), mini, source_name="netcache"
        )

    @_SETTINGS
    @given(
        keys=st.lists(st.integers(min_value=1, max_value=200),
                      min_size=1, max_size=60),
        dsts=st.lists(st.integers(min_value=0, max_value=5),
                      min_size=1, max_size=60),
    )
    def test_route_table_and_sketch_equivalent(self, nc_compiled, keys, dsts):
        def prepare(pipe):
            pipe.table_add("route", (1,), "set_port", (7,))
            pipe.table_add("route", (2,), "set_port", (9,))

        packets = [
            Packet(fields={"req_key": k, "dst": d})
            for k, d in zip(keys, dsts * (len(keys) // len(dsts) + 1))
        ]
        assert_equivalent(nc_compiled, packets, prepare=prepare)

    def test_app_with_controller_equivalent(self, nc_compiled):
        import dataclasses

        from repro.apps.netcache import NetCacheApp
        from repro.pisa.resources import tofino
        from repro.workloads import ZipfGenerator

        mini = dataclasses.replace(
            tofino(), stages=6, memory_bits_per_stage=64 * 1024
        )
        keys = ZipfGenerator(1000, alpha=1.3, seed=17).sample(2000)
        apps = {}
        for engine in ("compiled", "interp", "vector"):
            app = NetCacheApp(mini, hot_threshold=4, compiled=nc_compiled,
                              engine=engine)
            apps[engine] = (app, app.run_trace(keys))
        ac, sc = apps["compiled"]
        for other in ("interp", "vector"):
            ao, so = apps[other]
            assert sc == so, f"stats diverged on {other}"
            assert sorted(ac.cached_entries()) == sorted(ao.cached_entries())
            assert (_register_state(ac.pipeline)
                    == _register_state(ao.pipeline))


class TestPostMigration:
    """Equivalence must survive a hot-swap: warm a pipeline, migrate its
    state into a smaller layout, and diff the engines on the new app."""

    def test_migrated_apps_equivalent(self):
        import dataclasses

        from repro.apps.netcache import NetCacheApp, netcache_source
        from repro.pisa.resources import tofino
        from repro.runtime import migrate_netcache_state
        from repro.workloads import ZipfGenerator

        mini64 = dataclasses.replace(
            tofino(), stages=6, memory_bits_per_stage=64 * 1024
        )
        mini32 = dataclasses.replace(mini64, memory_bits_per_stage=32 * 1024)
        source = netcache_source(with_routing=False)
        compiled64 = compile_source(source, mini64, source_name="netcache")
        compiled32 = compile_source(source, mini32, source_name="netcache")

        old = NetCacheApp(mini64, hot_threshold=4, compiled=compiled64)
        old.run_trace(ZipfGenerator(1500, alpha=1.3, seed=5).sample(3000))
        assert old.cached_entries()

        new_apps = {}
        for engine in ("compiled", "interp", "vector"):
            app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32,
                              engine=engine)
            migrate_netcache_state(old, app)
            new_apps[engine] = app
        ac = new_apps["compiled"]
        for other in ("interp", "vector"):
            assert (_register_state(ac.pipeline)
                    == _register_state(new_apps[other].pipeline))

        # Post-swap traffic behaves identically on every engine.
        keys = ZipfGenerator(1500, alpha=1.3, seed=6).sample(2000)
        stats = {name: app.run_trace(keys) for name, app in new_apps.items()}
        for other in ("interp", "vector"):
            ao = new_apps[other]
            assert stats["compiled"] == stats[other]
            assert sorted(ac.cached_entries()) == sorted(ao.cached_entries())
            assert (_register_state(ac.pipeline)
                    == _register_state(ao.pipeline))


class TestGeneratedLinkedPrograms:
    """Random verified-isolated module pairs (the property-test
    generator) must behave identically on every engine when co-linked —
    engine equivalence is not a property of the hand-written examples
    only."""

    @_SETTINGS
    @given(
        specs=st.sampled_from([
            [("ma", 1, 256), ("mb", 2, 512)],
            [("ma", 2, 512), ("mb", 1, 1024)],
            [("ma", 1, 512), ("mb", 1, 512), ("mc", 2, 256)],
        ]),
        flows=flow_ids,
    )
    def test_generated_linked_equivalent(self, small6, specs, flows):
        from repro.core import compile_linked
        from repro.link import link_files

        from tests.property.generators import clean_module_source

        linked = link_files(
            [(name, clean_module_source(name, rows, cells))
             for name, rows, cells in specs]
        )
        compiled = compile_linked(linked, small6)
        assert compiled.verify is not None and compiled.verify.clean
        packets = [Packet(fields={"flow_id": f}) for f in flows]
        assert_equivalent(compiled, packets)
