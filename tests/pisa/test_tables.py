"""Match-action table semantics: exact, ternary, lpm."""

import pytest

from repro.pisa.tables import MatchActionTable, TableEntry, TableError


def exact_table(**kwargs):
    return MatchActionTable("t", ["dst"], ["exact"],
                            default_action="miss", **kwargs)


class TestExactMatch:
    def test_hit_and_miss(self):
        t = exact_table()
        t.add_entry(TableEntry(match=(10,), action="fwd", action_data=(3,)))
        hit = t.lookup([10])
        assert hit.hit and hit.action == "fwd" and hit.action_data == (3,)
        miss = t.lookup([11])
        assert not miss.hit and miss.action == "miss"

    def test_remove_entry(self):
        t = exact_table()
        t.add_entry(TableEntry(match=(10,), action="fwd"))
        assert t.remove_entry((10,))
        assert not t.lookup([10]).hit
        assert not t.remove_entry((10,))

    def test_capacity_enforced(self):
        t = exact_table(size=2)
        t.add_entry(TableEntry(match=(1,), action="a"))
        t.add_entry(TableEntry(match=(2,), action="a"))
        with pytest.raises(TableError, match="full"):
            t.add_entry(TableEntry(match=(3,), action="a"))

    def test_multi_field_exact(self):
        t = MatchActionTable("t", ["src", "dst"], ["exact", "exact"])
        t.add_entry(TableEntry(match=(1, 2), action="a"))
        assert t.lookup([1, 2]).hit
        assert not t.lookup([2, 1]).hit


class TestTernaryMatch:
    def test_mask_and_priority(self):
        t = MatchActionTable("t", ["port"], ["ternary"])
        t.add_entry(TableEntry(match=((0x80, 0x80),), action="high", priority=1))
        t.add_entry(TableEntry(match=((0, 0),), action="any", priority=0))
        assert t.lookup([0x81]).action == "high"
        assert t.lookup([0x01]).action == "any"

    def test_higher_priority_wins(self):
        t = MatchActionTable("t", ["x"], ["ternary"])
        t.add_entry(TableEntry(match=((5, 0xFF),), action="exactish", priority=10))
        t.add_entry(TableEntry(match=((0, 0),), action="wild", priority=1))
        assert t.lookup([5]).action == "exactish"


class TestLpmMatch:
    def test_longest_prefix_wins(self):
        t = MatchActionTable("t", ["dst"], ["lpm"])
        t.add_entry(TableEntry(match=((0x0A000000, 8),), action="coarse"))
        t.add_entry(TableEntry(match=((0x0A010000, 16),), action="fine"))
        assert t.lookup([0x0A01FFFF]).action == "fine"
        assert t.lookup([0x0AFF0000]).action == "coarse"

    def test_no_match_uses_default(self):
        t = MatchActionTable("t", ["dst"], ["lpm"], default_action="drop")
        t.add_entry(TableEntry(match=((0x0A000000, 8),), action="fwd"))
        assert t.lookup([0x0B000000]).action == "drop"

    def test_two_lpm_fields_rejected(self):
        with pytest.raises(TableError, match="at most one lpm"):
            MatchActionTable("t", ["a", "b"], ["lpm", "lpm"])


class TestValidation:
    def test_mismatched_keys_and_kinds(self):
        with pytest.raises(TableError, match="differ in length"):
            MatchActionTable("t", ["a"], ["exact", "exact"])

    def test_unknown_match_kind(self):
        with pytest.raises(TableError, match="unknown match kind"):
            MatchActionTable("t", ["a"], ["range"])

    def test_entry_width_checked(self):
        t = exact_table()
        with pytest.raises(TableError, match="match fields"):
            t.add_entry(TableEntry(match=(1, 2), action="a"))

    def test_lookup_width_checked(self):
        t = exact_table()
        with pytest.raises(TableError, match="lookup with"):
            t.lookup([1, 2])
