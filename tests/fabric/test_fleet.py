"""Fleet controller: shared-cache installs, concurrent recompiles,
sharded serving, scheduled cuts, skew rebalancing."""

import numpy as np
import pytest

from repro.core.cache import CompileCache
from repro.fabric import FabricTopology, FleetConfig, FleetController
from repro.runtime import TelemetryBus
from repro.workloads import ZipfGenerator


def make_controller(mini64, cache, n=3, standby=0, **config):
    fabric = FabricTopology.flat(n, mini64, standby=standby)
    return FleetController(
        fabric,
        config=FleetConfig(window_packets=500, vnodes=32, **config),
        telemetry=TelemetryBus(),
        cache=cache,
    )


class TestInstall:
    def test_install_all_hits_layout_cache(self, mini64):
        # 4 identical switches from a cold cache: the leader solves, the
        # other 3 fan out concurrently and land layout-cache hits.
        cache = CompileCache()
        controller = make_controller(mini64, cache, n=4)
        plans = controller.install_all()
        assert set(plans) == {"s0", "s1", "s2", "s3"}
        snap = cache.snapshot()
        assert snap["layout_misses"] == 1
        assert snap["layout_hits"] >= 3
        # Every switch ends up with the same stretched layout.
        symbols = {frozenset(p.compiled.symbol_values.items())
                   for p in plans.values()}
        assert len(symbols) == 1

    def test_install_two_target_groups(self, mini64, mini32):
        cache = CompileCache()
        fabric = FabricTopology.flat(2, mini64)
        fabric.add_switch("little0", mini32, role="switch")
        fabric.add_link("lb0", "little0")
        fabric.add_switch("little1", mini32, role="switch")
        fabric.add_link("lb0", "little1")
        controller = FleetController(
            fabric, config=FleetConfig(window_packets=500, vnodes=32),
            telemetry=TelemetryBus(), cache=cache,
        )
        plans = controller.install_all()
        snap = cache.snapshot()
        # One real solve per distinct target, cache hits for the rest.
        assert snap["layout_misses"] == 2
        assert snap["layout_hits"] >= 2
        big = plans["s0"].compiled.symbol_values
        small = plans["little0"].compiled.symbol_values
        assert big["kv_cols"] > small["kv_cols"]

    def test_install_emits_fleet_configured(self, mini64, shared_cache):
        controller = make_controller(mini64, shared_cache)
        controller.install_all()
        events = controller.telemetry.events_of("fleet_configured")
        assert len(events) == 1
        assert events[0].data["switches"] == 3

    def test_empty_fleet_rejected(self, mini64):
        fabric = FabricTopology()
        fabric.add_switch("lb0", mini64, role="lb")
        with pytest.raises(ValueError, match="no serving switches"):
            FleetController(fabric)


class TestServing:
    def test_run_conserves_packets(self, mini64, shared_cache):
        controller = make_controller(mini64, shared_cache)
        stream = ZipfGenerator(universe=3000, alpha=1.1, seed=11)
        report = controller.run(stream, 3000)
        assert report.packets == 3000
        assert report.dropped_packets == 0
        assert sum(s.packets for s in report.per_switch.values()) == 3000
        assert len(report.windows) == 6
        assert 0.0 < report.hit_rate < 1.0
        assert report.aggregate_pkts_per_sec > report.serial_pkts_per_sec

    def test_sharding_is_disjoint_across_switches(self, mini64,
                                                  shared_cache):
        controller = make_controller(mini64, shared_cache)
        controller.install_all()
        keys = ZipfGenerator(universe=3000, alpha=1.1, seed=2).sample(1000)
        shards = controller.ring.shard(keys)
        assert sum(len(s) for s in shards.values()) == len(keys)
        # Every key consistently routes to one switch.
        for name, shard in shards.items():
            assert all(controller.ring.lookup(int(k)) == name
                       for k in shard[:20])

    def test_run_continues_previous_report(self, mini64, shared_cache):
        controller = make_controller(mini64, shared_cache)
        stream = ZipfGenerator(universe=3000, alpha=1.1, seed=4)
        report = controller.run(stream, 1000)
        report = controller.run(stream, 1000, report=report)
        assert report.packets == 2000
        assert len(report.windows) == 4


class TestReconfiguration:
    def test_cut_switch_commits_and_migrates(self, mini64, mini32,
                                             shared_cache):
        controller = make_controller(mini64, shared_cache)
        stream = ZipfGenerator(universe=3000, alpha=1.1, seed=7)
        controller.run(stream, 2000)
        before_cols = controller.topology.node("s1").app.kv_cols
        record = controller.cut_switch("s1", mini32)
        assert record.committed, record.error
        assert record.migration is not None
        assert record.migration.kv_migrated > 0
        after = controller.topology.node("s1").app
        assert after.kv_cols < before_cols
        assert controller.topology.node("s1").target == mini32
        # The other switches kept their layouts.
        assert controller.topology.node("s0").app.kv_cols == before_cols

    def test_recompile_all_concurrent_uses_cache(self, mini64, mini32):
        cache = CompileCache()
        controller = make_controller(mini64, cache, n=4)
        controller.install_all()
        before = cache.snapshot()
        records = controller.recompile_all(mini32, cause="fleet-cut")
        assert all(r.committed for r in records.values())
        snap = cache.snapshot()
        # One new solve for the new target; the other 3 switches hit.
        assert snap["layout_misses"] == before["layout_misses"] + 1
        assert snap["layout_hits"] >= before["layout_hits"] + 3
        events = controller.telemetry.events_of("fleet_recompile")
        fleet_cut = [e for e in events if e.data["cause"] == "fleet-cut"]
        assert fleet_cut and fleet_cut[0].data["concurrent"] == 3

    def test_scheduled_cut_fires_in_run(self, mini64, mini32,
                                        shared_cache):
        controller = make_controller(mini64, shared_cache)
        stream = ZipfGenerator(universe=3000, alpha=1.1, seed=9)
        controller.schedule_cut(1000, "s0", mini32)
        report = controller.run(stream, 3000)
        assert len(report.reconfigs) == 1
        name, record = report.reconfigs[0]
        assert name == "s0" and record.committed
        assert record.packet_index == 1000
        assert report.packets == 3000

    def test_final_symbols_reflect_cut(self, mini64, mini32,
                                       shared_cache):
        controller = make_controller(mini64, shared_cache)
        stream = ZipfGenerator(universe=3000, alpha=1.1, seed=13)
        controller.schedule_cut(500, "s2", mini32)
        report = controller.run(stream, 2000)
        assert (report.final_symbols["s2"]["kv_cols"]
                < report.final_symbols["s0"]["kv_cols"])


class TestRebalance:
    def test_skew_triggers_bounded_rebalance(self, mini64, shared_cache):
        controller = make_controller(mini64, shared_cache,
                                     skew_threshold=1.5,
                                     max_move_fraction=0.15)

        class Hammer:
            """Every key identical: one switch takes the whole window."""

            def sample(self, count):
                return np.full(count, 7, dtype=np.int64)

        report = controller.run(Hammer(), 3000)
        assert report.rebalances
        for entry in report.rebalances:
            assert entry["moved_fraction"] <= 0.15
            assert entry["load_ratio"] >= 1.5

    def test_no_rebalance_when_disabled(self, mini64, shared_cache):
        controller = make_controller(mini64, shared_cache)
        stream = ZipfGenerator(universe=50, alpha=1.4, seed=1)
        report = controller.run(stream, 2000)
        assert report.rebalances == []
