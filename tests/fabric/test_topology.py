"""Fabric graph semantics: construction, roles, routing, generators."""

import pytest

from repro.fabric import FabricTopology, TopologyError


class TestConstruction:
    def test_duplicate_switch_rejected(self, mini64):
        fabric = FabricTopology()
        fabric.add_switch("s0", mini64)
        with pytest.raises(TopologyError, match="added twice"):
            fabric.add_switch("s0", mini64)

    def test_link_endpoints_must_exist(self, mini64):
        fabric = FabricTopology()
        fabric.add_switch("s0", mini64)
        with pytest.raises(TopologyError, match="not a switch"):
            fabric.add_link("s0", "ghost")

    def test_self_link_rejected(self, mini64):
        fabric = FabricTopology()
        fabric.add_switch("s0", mini64)
        with pytest.raises(TopologyError, match="self-link"):
            fabric.add_link("s0", "s0")

    def test_validate_rejects_disconnected(self, mini64):
        fabric = FabricTopology()
        fabric.add_switch("a", mini64)
        fabric.add_switch("b", mini64)
        with pytest.raises(TopologyError, match="disconnected"):
            fabric.validate()

    def test_per_switch_targets(self, mini64, mini32):
        fabric = FabricTopology()
        fabric.add_switch("big", mini64)
        fabric.add_switch("small", mini32)
        fabric.add_link("big", "small")
        assert fabric.node("big").target.memory_bits_per_stage == 64 * 1024
        assert fabric.node("small").target.memory_bits_per_stage == 32 * 1024


class TestRouting:
    def test_shortest_path_leaf_to_leaf(self, mini64):
        fabric = FabricTopology.leaf_spine(leaves=3, spines=2, target=mini64)
        path = fabric.path("leaf0", "leaf2")
        assert len(path) == 3               # leaf - spine - leaf
        assert path[0] == "leaf0" and path[-1] == "leaf2"
        assert fabric.node(path[1]).role == "spine"

    def test_route_from_ingress(self, mini64):
        fabric = FabricTopology.flat(3, mini64)
        assert fabric.route("s2") == ("lb0", "s2")

    def test_no_path_raises(self, mini64):
        fabric = FabricTopology()
        fabric.add_switch("a", mini64)
        fabric.add_switch("b", mini64)
        with pytest.raises(TopologyError, match="no path"):
            fabric.path("a", "b")

    def test_route_cache_invalidated_on_growth(self, mini64):
        fabric = FabricTopology(ingress="a")
        fabric.add_switch("a", mini64)
        fabric.add_switch("b", mini64)
        fabric.add_switch("c", mini64)
        fabric.add_link("a", "b")
        fabric.add_link("b", "c")
        assert fabric.path("a", "c") == ("a", "b", "c")
        fabric.add_link("a", "c")           # direct shortcut appears
        assert fabric.path("a", "c") == ("a", "c")


class TestGenerators:
    def test_leaf_spine_shape(self, mini64):
        fabric = FabricTopology.leaf_spine(leaves=4, spines=2, target=mini64)
        assert len(fabric) == 6
        assert len(fabric.links) == 8       # full mesh leaves x spines
        assert fabric.serving() == ["leaf0", "leaf1", "leaf2", "leaf3"]
        assert fabric.ingress == "spine0"

    def test_leaf_spine_standby_outside_ring(self, mini64):
        fabric = FabricTopology.leaf_spine(leaves=2, spines=1,
                                           target=mini64, standby=1)
        assert fabric.serving() == ["leaf0", "leaf1"]
        assert fabric.standby() == ["leaf2"]

    def test_flat_shape(self, mini64):
        fabric = FabricTopology.flat(3, mini64, standby=1)
        assert fabric.serving() == ["s0", "s1", "s2"]
        assert fabric.standby() == ["s3"]
        assert all(fabric.route(s) == ("lb0", s) for s in fabric.serving())

    def test_spine_target_override(self, mini64, mini32):
        fabric = FabricTopology.leaf_spine(
            leaves=2, spines=1, target=mini32, spine_target=mini64
        )
        assert fabric.node("spine0").target == mini64
        assert fabric.node("leaf0").target == mini32

    def test_empty_generators_rejected(self, mini64):
        with pytest.raises(TopologyError):
            FabricTopology.leaf_spine(leaves=0, spines=1, target=mini64)
        with pytest.raises(TopologyError):
            FabricTopology.flat(0, mini64)
