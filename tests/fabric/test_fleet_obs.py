"""Fleet observability: fleet-level spans, per-switch reconfig
attribution, and the FleetReport bridge into the span tree."""

import pytest

from repro import obs
from repro.fabric import FabricTopology, FleetConfig, FleetController
from repro.runtime import TelemetryBus
from repro.workloads import ZipfGenerator


@pytest.fixture(autouse=True)
def _clean_trace():
    """These tests drive the global tracer the fabric instrumentation
    records on; restore it disabled+empty afterwards."""
    yield
    obs.trace.disable()
    obs.trace.reset()


def make_controller(mini64, cache, n=3, **config):
    fabric = FabricTopology.flat(n, mini64)
    return FleetController(
        fabric,
        config=FleetConfig(window_packets=500, vnodes=32, **config),
        telemetry=TelemetryBus(),
        cache=cache,
    )


def _fleet_reconfigs(switch: str) -> float:
    metric = obs.metrics.get("p4all_fleet_reconfigs_total")
    if metric is None:
        return 0.0
    return sum(v for key, v in metric.to_dict()["values"].items()
               if key.split(",")[0] == switch)


class TestFleetSpans:
    def test_install_records_fleet_install_and_plan(self, mini64,
                                                    shared_cache):
        obs.trace.enable()
        controller = make_controller(mini64, shared_cache)
        controller.install_all()
        [install] = obs.trace.spans_named("fleet.install")
        assert install.attrs["switches"] == 3
        plans = obs.trace.spans_named("fleet.plan")
        assert plans and plans[0].attrs["switches"] >= 1

    def test_scheduled_cut_records_fleet_migrate_free_swap(self, mini64,
                                                           mini32,
                                                           shared_cache):
        obs.trace.enable()
        controller = make_controller(mini64, shared_cache)
        controller.schedule_cut(1000, "s0", mini32)
        before = _fleet_reconfigs("s0")
        report = controller.run(ZipfGenerator(3000, alpha=1.1, seed=9),
                                3000)
        assert len(report.reconfigs) == 1

        # The per-switch fleet counter attributes the cut to s0.
        assert _fleet_reconfigs("s0") == before + 1
        metric = obs.metrics.get("p4all_fleet_reconfigs_total")
        keys = [k.split(",") for k in metric.to_dict()["values"]]
        assert ["s0", "scheduled-cut", "committed"] in keys \
            or any(k[0] == "s0" and k[2] == "committed" for k in keys)

        # The replan for the cut ran inside a fleet.plan span.
        plans = obs.trace.spans_named("fleet.plan")
        assert plans
        swaps = obs.trace.spans_named("fabric.swap")
        assert any(s.attrs["switch"] == "s0" and s.attrs["committed"]
                   for s in swaps)

    def test_run_bridges_fleet_report_into_run_span(self, mini64, mini32,
                                                    shared_cache):
        obs.trace.enable()
        controller = make_controller(mini64, shared_cache)
        controller.schedule_cut(500, "s1", mini32)
        report = controller.run(ZipfGenerator(3000, alpha=1.1, seed=13),
                                2000)
        [run_span] = obs.trace.spans_named("fabric.run")
        names = {e.name for e in run_span.events}
        assert "fleet.report" in names
        assert "fleet.reconfig" in names
        [summary] = [e for e in run_span.events
                     if e.name == "fleet.report"]
        assert summary.attrs["packets"] == report.packets
        assert summary.attrs["reconfigs"] == len(report.reconfigs)

    def test_untraced_run_still_counts_fleet_metrics(self, mini64, mini32,
                                                     shared_cache):
        assert not obs.trace.enabled
        controller = make_controller(mini64, shared_cache)
        controller.schedule_cut(500, "s2", mini32)
        before = _fleet_reconfigs("s2")
        controller.run(ZipfGenerator(3000, alpha=1.1, seed=5), 2000)
        assert _fleet_reconfigs("s2") == before + 1
        assert len(obs.trace) == 0
