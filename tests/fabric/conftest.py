"""Fabric test fixtures.

Fleet controllers compile one layout per distinct target; sharing one
session-scoped :class:`CompileCache` across tests makes every install
after the first a layout-cache hit, so the fabric suite pays for one
real solve per target shape.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.cache import CompileCache
from repro.pisa.resources import tofino


@pytest.fixture(scope="session")
def mini64():
    """6-stage target with 64KB of register memory per stage."""
    return dataclasses.replace(
        tofino(), stages=6, memory_bits_per_stage=64 * 1024
    )


@pytest.fixture(scope="session")
def mini32(mini64):
    """The same switch after a 2x memory cut."""
    return dataclasses.replace(mini64, memory_bits_per_stage=32 * 1024)


@pytest.fixture(scope="session")
def shared_cache():
    return CompileCache()
