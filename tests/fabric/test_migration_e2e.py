"""Live migration end-to-end: a Zipf workload on a 3-switch fabric, the
hottest switch migrated to a warm standby mid-run, with zero logical
key loss and steady hit rate preserved."""

import numpy as np
import pytest

from repro.fabric import FabricTopology, FleetConfig, FleetController
from repro.runtime import TelemetryBus
from repro.workloads import ZipfGenerator

WINDOW = 500
MIGRATE_AT = 3000
TOTAL = 6000


@pytest.fixture(scope="module")
def migrated_run(mini64, shared_cache):
    """One 6000-packet run with a hottest→standby migration at pkt 3000."""
    fabric = FabricTopology.flat(3, mini64, standby=1)
    controller = FleetController(
        fabric,
        config=FleetConfig(window_packets=WINDOW, vnodes=32),
        telemetry=TelemetryBus(),
        cache=shared_cache,
    )
    stream = ZipfGenerator(universe=2000, alpha=1.2, seed=21)
    controller.schedule_migration(MIGRATE_AT, "hottest", "s3")
    report = controller.run(stream, TOTAL)
    return controller, report


class TestLiveMigration:
    def test_committed_with_zero_logical_key_loss(self, migrated_run):
        controller, report = migrated_run
        assert len(report.migrations) == 1
        mig = report.migrations[0]
        assert mig.committed, mig.error
        # Zero logical loss, twice over: every cached entry re-admitted
        # on the destination, and every buffered in-flight key replayed.
        assert mig.kv_dropped == 0
        assert mig.kv_migrated == mig.kv_entries_old > 0
        assert mig.replayed_packets == mig.downtime_packets > 0
        assert report.dropped_packets == 0
        assert report.packets == TOTAL

    def test_sketch_mass_conserved(self, migrated_run):
        _controller, report = migrated_run
        mig = report.migrations[0]
        assert mig.cms_exact_fold            # same geometry: exact fold
        assert mig.cms_mass_new >= mig.cms_mass_old > 0

    def test_ring_and_roles_shift(self, migrated_run):
        controller, report = migrated_run
        mig = report.migrations[0]
        assert mig.src not in controller.ring
        assert mig.dst in controller.ring
        assert controller.topology.node(mig.src).role == "drained"
        assert controller.topology.node(mig.dst).role == "switch"
        # Only the source's keyspace moved.
        assert 0.0 < mig.moved_fraction < 1.0

    def test_destination_serves_migrated_keys(self, migrated_run):
        controller, report = migrated_run
        mig = report.migrations[0]
        dst_app = controller.topology.node(mig.dst).app
        migrated = {key for _r, key, _v in dst_app.cached_entries()}
        assert mig.canary_key in migrated
        stats = dst_app.run_trace(sorted(migrated))
        assert stats.hits == len(migrated)

    def test_hit_rate_recovers_within_5_percent(self, migrated_run):
        """Post-migration steady-state fleet hit rate is within 5% of
        the pre-migration steady state (warmup windows excluded)."""
        _controller, report = migrated_run
        migration_window = MIGRATE_AT // WINDOW
        pre = report.steady_rate(last=3, before=migration_window)
        post = report.steady_rate(last=3)
        assert pre > 0.2                      # the cache actually warmed
        assert post >= 0.95 * pre

    def test_downtime_bounded_by_one_window_share(self, migrated_run):
        # The drain buffers at most the source's share of one window.
        _controller, report = migrated_run
        mig = report.migrations[0]
        assert mig.downtime_packets <= WINDOW

    def test_migration_telemetry_emitted(self, migrated_run):
        controller, report = migrated_run
        events = controller.telemetry.events_of("fabric_migration")
        assert len(events) == 1
        data = events[0].data
        assert data["committed"] is True
        assert data["downtime_packets"] == report.migrations[0].downtime_packets


class TestMigrationRollback:
    def test_failed_canary_rolls_back(self, mini64, shared_cache,
                                      monkeypatch):
        fabric = FabricTopology.flat(2, mini64, standby=1)
        controller = FleetController(
            fabric,
            config=FleetConfig(window_packets=WINDOW, vnodes=32),
            telemetry=TelemetryBus(),
            cache=shared_cache,
        )
        controller.install_all()
        stream = ZipfGenerator(universe=1000, alpha=1.2, seed=5)
        controller.run(stream, 2000)
        ring_before = controller.ring.digest()
        dst_app = controller.topology.node("s2").app
        sketch_before = [
            dst_app.pipeline.registers.get(f"cms_sketch[{r}]").dump().copy()
            for r in range(dst_app.cms_rows)
        ]
        # Sabotage the destination: installs fail, so the canary must.
        monkeypatch.setattr(dst_app, "install",
                            lambda _key, _value: False)
        mig = controller.migrate("s0", "s2")
        assert not mig.committed
        assert "canary" in mig.error
        # The fabric is exactly as it was: ring, roles, registers.
        assert controller.ring.digest() == ring_before
        assert controller.topology.node("s0").role == "switch"
        assert controller.topology.node("s2").role == "standby"
        for row, dump in enumerate(sketch_before):
            now = dst_app.pipeline.registers.get(
                f"cms_sketch[{row}]").dump()
            assert np.array_equal(now, dump)

    def test_migrating_non_serving_switch_fails_cleanly(self, mini64,
                                                        shared_cache):
        fabric = FabricTopology.flat(2, mini64, standby=1)
        controller = FleetController(
            fabric, config=FleetConfig(window_packets=WINDOW, vnodes=32),
            telemetry=TelemetryBus(), cache=shared_cache,
        )
        controller.install_all()
        mig = controller.migrate("s2", "s0")   # standby is not on the ring
        assert not mig.committed
        assert "not serving" in mig.error
