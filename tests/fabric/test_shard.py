"""Consistent-hash sharding invariants.

The fleet controller's correctness rests on three properties, all
asserted here: key→switch stability under membership change (only the
affected node's keys move), the moved-fraction bound (a node's share —
hence a removal's movement — concentrates around ``1/n``), and ring
determinism independent of ``PYTHONHASHSEED``.
"""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import RING_SPACE, HashRing, key_hash

# Node-count / vnode / salt strategy shared by the membership properties.
RING_SHAPES = {
    "n": st.integers(min_value=2, max_value=8),
    "vnodes": st.sampled_from([64, 128]),
    "salt": st.text(alphabet="abcdef", min_size=0, max_size=4),
}


def ring_of(n: int, vnodes: int, salt: str) -> HashRing:
    return HashRing([f"{salt}sw{i}" for i in range(n)], vnodes=vnodes)


def sample_keys(count: int = 4000, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 1 << 40, size=count)


class TestLookup:
    def test_lookup_matches_lookup_many(self):
        ring = ring_of(4, 64, "")
        keys = sample_keys(100)
        owners = [ring.names[i] for i in ring.lookup_many(keys)]
        assert owners == [ring.lookup(int(k)) for k in keys]

    def test_shard_partitions_batch(self):
        ring = ring_of(5, 64, "")
        keys = sample_keys()
        shards = ring.shard(keys)
        assert sum(len(s) for s in shards.values()) == len(keys)
        assert set(shards) <= set(ring.names)
        rebuilt = np.sort(np.concatenate(list(shards.values())))
        assert np.array_equal(rebuilt, np.sort(keys))

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError, match="empty ring"):
            HashRing().lookup(1)

    def test_key_hash_is_fixed(self):
        # Pinned value: the ring function must never drift between
        # versions, or a deployed fleet's placement would churn.
        assert int(key_hash(123)[0]) == 13032462758197477675
        assert int(key_hash(0)[0]) == 16294208416658607535


class TestStability:
    @given(**RING_SHAPES)
    @settings(max_examples=25, deadline=None)
    def test_add_moves_only_to_new_node(self, n, vnodes, salt):
        ring = ring_of(n, vnodes, salt)
        keys = sample_keys(2000)
        before = ring.lookup_many(keys)
        before_names = [ring.names[i] for i in before]
        ring.add("newcomer")
        after_names = [ring.names[i] for i in ring.lookup_many(keys)]
        for old, new in zip(before_names, after_names):
            if old != new:
                assert new == "newcomer"

    @given(**RING_SHAPES)
    @settings(max_examples=25, deadline=None)
    def test_remove_moves_only_from_removed(self, n, vnodes, salt):
        ring = ring_of(n, vnodes, salt)
        victim = ring.names[n // 2]
        keys = sample_keys(2000)
        before_names = [ring.names[i] for i in ring.lookup_many(keys)]
        ring.remove(victim)
        after_names = [ring.names[i] for i in ring.lookup_many(keys)]
        for old, new in zip(before_names, after_names):
            if old != new:
                assert old == victim

    def test_reassign_moves_exactly_src_share(self):
        ring = ring_of(4, 64, "")
        src = ring.names[1]
        share = ring.owner_shares()[src]
        before = ring.copy()
        ring.reassign(src, "standby")
        plan = before.plan_change(ring)
        assert plan.sources() == {src}
        assert plan.destinations() == {"standby"}
        assert plan.moved_fraction == pytest.approx(share, abs=1e-15)
        # Every key src owned now belongs to the standby; nobody else's
        # placement changed.
        keys = sample_keys(2000)
        before_names = [before.names[i] for i in before.lookup_many(keys)]
        after_names = [ring.names[i] for i in ring.lookup_many(keys)]
        for old, new in zip(before_names, after_names):
            assert new == ("standby" if old == src else old)


class TestMovedFractionBound:
    @given(**RING_SHAPES)
    @settings(max_examples=25, deadline=None)
    def test_removal_bounded_by_fair_share(self, n, vnodes, salt):
        """Removing one of n switches moves ≤ 1/n + ε of the keyspace.

        The moved fraction equals the victim's arc share exactly; with
        ``vnodes`` virtual nodes the share concentrates around 1/n with
        std ≈ sqrt(2/vnodes)/n, so ε is a generous multiple of that.
        """
        ring = ring_of(n, vnodes, salt)
        epsilon = 4.0 * np.sqrt(2.0 / vnodes) / np.sqrt(n)
        for victim in ring.names:
            before = ring.copy()
            trimmed = ring.copy()
            trimmed.remove(victim)
            plan = before.plan_change(trimmed)
            share = before.owner_shares()[victim]
            assert plan.moved_fraction == pytest.approx(share, abs=1e-12)
            assert plan.moved_fraction <= 1.0 / n + epsilon

    def test_shares_sum_to_one(self):
        for n in (1, 2, 5, 9):
            shares = ring_of(n, 64, "x").owner_shares()
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-12)
            assert all(s > 0 for s in shares.values())

    def test_plan_measure_matches_empirical_movement(self):
        ring = ring_of(6, 64, "")
        after = ring.copy()
        after.remove(ring.names[0])
        plan = ring.plan_change(after)
        keys = sample_keys(40000, seed=3)
        before_names = [ring.names[i] for i in ring.lookup_many(keys)]
        after_names = [after.names[i] for i in after.lookup_many(keys)]
        moved = sum(o != a for o, a in zip(before_names, after_names))
        empirical = moved / len(keys)
        sigma = np.sqrt(plan.moved_fraction * (1 - plan.moved_fraction)
                        / len(keys))
        assert abs(empirical - plan.moved_fraction) <= 5 * sigma + 1e-9

    def test_donate_respects_move_budget(self):
        ring = ring_of(4, 64, "")
        src, dst = ring.names[0], ring.names[1]
        plan = ring.donate(src, dst, fraction=0.9,
                           max_move_fraction=0.05)
        assert plan.moved_fraction <= 0.05
        if plan.moves:
            assert plan.sources() == {src}
            assert plan.destinations() == {dst}

    def test_donate_keeps_src_on_ring(self):
        ring = ring_of(3, 64, "")
        src, dst = ring.names[0], ring.names[1]
        ring.donate(src, dst, fraction=1.0)
        assert src in ring
        assert ring.owner_shares()[src] > 0


class TestDeterminism:
    def test_digest_ignores_construction_order_of_keys(self):
        a = ring_of(5, 64, "q")
        b = ring_of(5, 64, "q")
        assert a.digest() == b.digest()
        assert a.digest() != ring_of(5, 64, "r").digest()

    def test_copy_preserves_placement(self):
        ring = ring_of(4, 64, "")
        clone = ring.copy()
        keys = sample_keys(500)
        assert np.array_equal(ring.lookup_many(keys),
                              clone.lookup_many(keys))
        assert ring.digest() == clone.digest()

    def test_ring_independent_of_pythonhashseed(self):
        """The ring never consults Python's randomized ``hash``: two
        interpreters with different PYTHONHASHSEED values must agree on
        every vnode point and every key placement."""
        probe = (
            "from repro.fabric import HashRing, key_hash\n"
            "r = HashRing(['sw%d' % i for i in range(5)], vnodes=64)\n"
            "keys = list(range(0, 5000, 37))\n"
            "owners = [r.lookup(k) for k in keys]\n"
            "print(r.digest(), ','.join(owners))\n"
        )
        root = pathlib.Path(__file__).resolve().parents[2]
        outputs = set()
        for seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(root / "src")
            result = subprocess.run(
                [sys.executable, "-c", probe],
                capture_output=True, text=True, check=True, env=env,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1
