"""Property-based verification of the whole compile pipeline.

Random P4All programs (from :mod:`tests.property.generators`) check the
three end-to-end properties the taint verifier promises:

1. **Isolation is real**: a program pair the verifier calls isolated
   produces per-tenant outputs identical whether the tenants are
   co-linked into one layout or compiled alone.
2. **The two taint passes agree**: the depgraph-level pass and the
   independent plan-level pass compute the same labels on every
   program, clean or leaky (disagreement would be a lowering bug and
   raises :class:`~repro.core.TaintMismatchError`).
3. **Leaks are always caught**: the writer→reader metadata leak — which
   names no foreign register, so the legacy check accepts it — is
   rejected by the semantic pass with a witness naming both modules.

Plus the layout property: every ILP solution satisfies every Fig-10
constraint family, re-checked from the artifact by
:func:`~repro.core.validate_layout`.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core import (
    CompileCache,
    CompileOptions,
    LayoutInfeasibleError,
    compile_linked,
    compile_source,
    validate_layout,
    verify_taint,
)
from repro.link import IsolationError, link_files
from repro.pisa import Packet, Pipeline, small_target

from .generators import (
    clean_module_source,
    clean_module_specs,
    flow_streams,
    leaky_pair_specs,
    leaky_reader_source,
    module_fields,
    writer_module_source,
)

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TARGET = small_target(stages=6, memory_kb=32)

#: One cache for the whole module: the generators draw from small
#: parameter pools, so repeated examples recompile for free and the
#: hypothesis run stays fast.
_CACHE = CompileCache()


def _options() -> CompileOptions:
    return CompileOptions(cache=_CACHE)


def _compile_pair(specs):
    sources = [(name, clean_module_source(name, rows, cells))
               for name, rows, cells in specs]
    linked = link_files(sources)
    return sources, compile_linked(linked, TARGET, options=_options())


class TestVerifiedIsolation:
    """Property 1: verified-isolated ⇒ co-linking changes no output."""

    @given(specs=clean_module_specs(), flows=flow_streams)
    @_SETTINGS
    def test_colinked_outputs_match_solo(self, specs, flows):
        sources, co = _compile_pair(specs)
        assert co.verify is not None and co.verify.clean
        packets = lambda: [Packet(fields={"flow_id": f}) for f in flows]
        co_results = Pipeline(co).process_many(packets())
        for (name, source), (_, rows, _cells) in zip(sources, specs):
            solo = compile_source(source, TARGET, source_name=name,
                                  options=_options())
            solo_results = Pipeline(solo).process_many(packets())
            fields = module_fields(name, rows)
            for n, (s, c) in enumerate(zip(solo_results, co_results)):
                for key in fields:
                    assert s.phv[key] == c.phv[key], (
                        f"packet {n}: tenant {name} diverged on {key} "
                        f"when co-linked"
                    )


class TestTaintPassAgreement:
    """Property 2: depgraph taint ≡ plan-IR taint on every program."""

    @given(specs=clean_module_specs())
    @_SETTINGS
    def test_clean_programs_agree(self, specs):
        _, co = _compile_pair(specs)
        result = verify_taint(co)  # raises TaintMismatchError on drift
        assert result.agree and result.clean

    @given(pair=leaky_pair_specs())
    @_SETTINGS
    def test_leaky_programs_agree(self, pair):
        writer, reader, cells, slots = pair
        linked = link_files(
            [(writer, writer_module_source(writer, cells)),
             (reader, leaky_reader_source(reader, writer, slots))],
            allow_cross_module_state=True,
        )
        co = compile_linked(linked, TARGET, options=_options())
        result = verify_taint(co)
        assert result.agree
        assert any(f.source == writer and f.sink_module == reader
                   for f in result.flows)


class TestLeakDetection:
    """Property 3: the metadata leak is always rejected with a witness."""

    @given(pair=leaky_pair_specs())
    @_SETTINGS
    def test_leak_always_detected(self, pair):
        writer, reader, cells, slots = pair
        with pytest.raises(IsolationError) as exc:
            link_files(
                [(writer, writer_module_source(writer, cells)),
                 (reader, leaky_reader_source(reader, writer, slots))]
            )
        message = str(exc.value)
        assert writer in message and reader in message
        assert f"{writer}_reg" in message  # witness starts at the state


class TestLayoutProperties:
    """Every ILP layout satisfies every Fig-10 constraint family."""

    @given(specs=clean_module_specs(),
           stages=st.sampled_from((6, 8)),
           memory_kb=st.sampled_from((32, 64)))
    @_SETTINGS
    def test_layout_validates_on_random_targets(self, specs, stages,
                                                memory_kb):
        target = small_target(stages=stages, memory_kb=memory_kb)
        sources = [(name, clean_module_source(name, rows, cells))
                   for name, rows, cells in specs]
        linked = link_files(sources)
        try:
            co = compile_linked(linked, target, options=_options())
        except LayoutInfeasibleError:
            # Pinned symbolics leave the ILP no elasticity to shrink
            # into a tight target — a legitimately infeasible draw, not
            # a constraint violation. The property is vacuous here.
            assume(False)
        validate_layout(co)  # raises LayoutValidationError on violation
