"""Random P4All program generators for property-based testing.

Every generated module pins its symbolic to one feasible value
(``assume X >= R && X <= R``) so a solo compile and a co-linked compile
are forced to choose the *same* elasticity — which is what lets the
isolation property compare per-tenant outputs across the two compiles
without chasing layout differences.

Two shapes:

* :func:`clean_module_source` — a self-contained per-flow counter: own
  register family, own output fields, keyed only on the shared
  ``meta.flow_id``. Any set of these links (and verifies) clean.
* :func:`writer_module_source` / :func:`leaky_reader_source` — the
  cross-tenant leak: the writer deposits register-derived state into a
  metadata field, and the reader hashes on that field. No register is
  named across module boundaries, so the legacy name-based isolation
  check accepts the pair; the semantic taint pass must reject it.
"""

from __future__ import annotations

from hypothesis import strategies as st

#: Identifier pool for generated module names (kept short and distinct
#: so witness paths in failure output stay readable).
MODULE_NAMES = ("ma", "mb", "mc", "md")

CLEAN_TEMPLATE = """\
symbolic int {m}_rows;
assume {m}_rows >= {rows} && {m}_rows <= {rows};

struct metadata {{
    bit<32> flow_id;
    bit<32>[{m}_rows] {m}_val;
}}

register<bit<32>>[{cells}][{m}_rows] {m}_reg;

action {m}_bump()[int i] {{
    {m}_reg[i].add_read(meta.{m}_val[i], hash(i, meta.flow_id), 1);
}}

control Ingress(inout metadata meta) {{
    apply {{
        for (i < {m}_rows) {{ {m}_bump()[i]; }}
    }}
}}

optimize({m}_rows * {cells});
"""

WRITER_TEMPLATE = """\
symbolic int {m}_rows;
assume {m}_rows >= 1 && {m}_rows <= 1;

struct metadata {{
    bit<32> flow_id;
    bit<32> {m}_shared;
}}

register<bit<32>>[{cells}][{m}_rows] {m}_reg;

action {m}_bump()[int i] {{
    {m}_reg[i].add_read(meta.{m}_shared, hash(i, meta.flow_id), 1);
}}

control Ingress(inout metadata meta) {{
    apply {{
        for (i < {m}_rows) {{ {m}_bump()[i]; }}
    }}
}}

optimize({m}_rows * {cells});
"""

LEAKY_READER_TEMPLATE = """\
symbolic int {m}_slots;
assume {m}_slots >= {slots} && {m}_slots <= {slots};

struct metadata {{
    bit<32> flow_id;
    bit<32> {src}_shared;
    bit<1> {m}_seen;
}}

register<bit<1>>[{m}_slots][1] {m}_reg;

action {m}_set() {{
    {m}_reg[0].swap(meta.{m}_seen, hash(7, meta.{src}_shared), 1);
}}

control Ingress(inout metadata meta) {{
    apply {{
        {m}_set();
    }}
}}

optimize({m}_slots);
"""


def clean_module_source(name: str, rows: int = 1, cells: int = 512) -> str:
    """A self-contained counter module, symbolic pinned to ``rows``."""
    return CLEAN_TEMPLATE.format(m=name, rows=rows, cells=cells)


def writer_module_source(name: str, cells: int = 1024) -> str:
    """A module whose register state lands in ``meta.{name}_shared``."""
    return WRITER_TEMPLATE.format(m=name, cells=cells)


def leaky_reader_source(name: str, source_module: str,
                        slots: int = 256) -> str:
    """A module hashing on ``source_module``'s deposited field.

    Links without naming any foreign register — the flow is purely
    through metadata, visible only to the semantic taint pass.
    """
    return LEAKY_READER_TEMPLATE.format(m=name, src=source_module,
                                        slots=slots)


def module_fields(name: str, rows: int) -> list:
    """The per-packet PHV output keys a clean module owns."""
    return [f"meta.{name}_val[{i}]" for i in range(rows)]


@st.composite
def clean_module_specs(draw, min_modules: int = 2, max_modules: int = 3):
    """Draw ``[(name, rows, cells), ...]`` with distinct names."""
    count = draw(st.integers(min_value=min_modules, max_value=max_modules))
    names = list(MODULE_NAMES[:count])
    specs = []
    for name in names:
        rows = draw(st.integers(min_value=1, max_value=2))
        cells = draw(st.sampled_from((256, 512, 1024)))
        specs.append((name, rows, cells))
    return specs


@st.composite
def leaky_pair_specs(draw):
    """Draw ``(writer_name, reader_name, cells, slots)``."""
    writer, reader = draw(st.sampled_from(
        [(a, b) for a in MODULE_NAMES for b in MODULE_NAMES if a != b]
    ))
    cells = draw(st.sampled_from((512, 1024)))
    slots = draw(st.sampled_from((256, 512)))
    return writer, reader, cells, slots


flow_streams = st.lists(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    min_size=1, max_size=40,
)
