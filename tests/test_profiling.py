"""Tests for the :func:`repro.profiling.profiled` context manager."""

from pathlib import Path

import pytest

from repro.profiling import profiled


def _busy_work() -> int:
    return sum(i * i for i in range(2000))


class TestNoopPath:
    def test_none_path_yields_none(self):
        with profiled(None) as profiler:
            assert profiler is None
            _busy_work()

    def test_none_path_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with profiled(None):
            _busy_work()
        assert list(tmp_path.iterdir()) == []


class TestStatsFile:
    def test_writes_stats_file(self, tmp_path):
        out = tmp_path / "profile.txt"
        with profiled(out) as profiler:
            assert profiler is not None
            _busy_work()
        text = out.read_text()
        assert "cumulative" in text
        assert "_busy_work" in text
        # The callers section rides along after the main table.
        assert "Ordered by" in text

    def test_accepts_string_path(self, tmp_path):
        out = tmp_path / "profile.txt"
        with profiled(str(out)):
            _busy_work()
        assert out.exists()

    def test_creates_parent_directories(self, tmp_path):
        out = tmp_path / "deep" / "nested" / "profile.txt"
        with profiled(out):
            _busy_work()
        assert out.exists()

    def test_bare_filename_in_cwd(self, tmp_path, monkeypatch):
        # A path with no directory part must not trip the mkdir logic.
        monkeypatch.chdir(tmp_path)
        with profiled("profile.txt"):
            _busy_work()
        assert (tmp_path / "profile.txt").exists()

    def test_writes_even_when_body_raises(self, tmp_path):
        out = tmp_path / "profile.txt"
        with pytest.raises(RuntimeError):
            with profiled(out):
                _busy_work()
                raise RuntimeError("boom")
        assert "_busy_work" in out.read_text()


class TestSortAndLimit:
    def test_sort_argument_controls_ordering(self, tmp_path):
        out = tmp_path / "profile.txt"
        with profiled(out, sort="ncalls"):
            _busy_work()
        assert "call count" in out.read_text()

    def test_limit_caps_rows(self, tmp_path):
        wide = tmp_path / "wide.txt"
        narrow = tmp_path / "narrow.txt"
        with profiled(wide, limit=60):
            _busy_work()
        with profiled(narrow, limit=1):
            _busy_work()
        assert "due to restriction <1>" in narrow.read_text()
        assert len(narrow.read_text()) < len(wide.read_text())
