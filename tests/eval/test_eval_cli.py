"""Tests for the ``python -m repro.eval`` experiment runner."""

import pytest

from repro.eval.__main__ import EXPERIMENTS, main


class TestEvalCli:
    def test_single_experiment_prints(self, capsys):
        assert main(["fig09"]) == 0
        out, _ = capsys.readouterr()
        assert "Figure 9" in out
        assert "bound for 'cms_rows': 2" in out

    def test_output_directory(self, tmp_path, capsys):
        assert main(["fig09", "--out", str(tmp_path)]) == 0
        written = tmp_path / "fig09.txt"
        assert written.exists()
        assert "bound" in written.read_text()

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["fig99"]) == 2
        _, err = capsys.readouterr()
        assert "unknown experiments" in err

    def test_registry_covers_all_figures(self):
        assert {"fig01", "fig04", "fig07", "fig09", "fig11", "fig12",
                "fig13", "runtime", "fleet", "ablations"} == set(EXPERIMENTS)
