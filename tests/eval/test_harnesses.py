"""Experiment-harness shape tests (small configurations).

These assert the *shape* claims of each paper figure (see DESIGN.md §4)
on reduced parameters; the full-scale runs live in benchmarks/.
"""

import dataclasses

import pytest

from repro.eval import (
    compare_exclusion_handling,
    compare_greedy_vs_ilp,
    compare_solvers,
    measure_bound_tightness,
    render_table,
    run_quality_sweep,
    run_unroll_example,
)
from repro.pisa.resources import small_target, toy_three_stage
from repro.structures import CMS_SOURCE


class TestFig09Harness:
    def test_matches_paper(self):
        facts = run_unroll_example()
        assert facts.bound == 2
        assert facts.path_lengths == [2, 3, 4]
        assert len(facts.k3_exclusion) == 3
        assert "incr" in facts.format()


class TestFig04Harness:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_quality_sweep(
            memory_budget_bits=1 << 20,
            cms_row_options=(2,),
            kv_fractions=(0.0, 0.5, 0.95),
            packets=8_000,
            universe=5_000,
        )

    def test_extremes_lose(self, sweep):
        # No cache at all -> 0 hit rate; the balanced point must win.
        no_cache = next(p for p in sweep.points if p.kv_cols == 0)
        assert no_cache.hit_rate == 0.0
        assert sweep.best.kv_cols > 0
        assert sweep.best.cms_cols > 0

    def test_oracle_dominates(self, sweep):
        assert sweep.best.hit_rate <= sweep.oracle_hit_rate + 0.02

    def test_format_renders(self, sweep):
        text = sweep.format()
        assert "hit_rate" in text and "best:" in text


class TestAblationHarnesses:
    def test_greedy_vs_ilp(self):
        target = small_target(stages=6, memory_kb=32)
        result = compare_greedy_vs_ilp(CMS_SOURCE, target, name="cms")
        assert result.utility_gain >= 1.0
        assert "gain" in result.format()

    def test_exclusion_ablation(self):
        target = toy_three_stage()
        result = compare_exclusion_handling(CMS_SOURCE, target, name="cms")
        # All-precedence can only do worse or equal (§5 limitation).
        assert result.degraded_utility <= result.full_utility

    def test_bound_tightness(self):
        target = small_target(stages=6, memory_kb=32)
        result = measure_bound_tightness(CMS_SOURCE, target, name="cms")
        for sym, bound in result.bounds.items():
            assert result.chosen[sym] <= bound

    def test_solver_agreement(self):
        target = small_target(stages=4, memory_kb=8)
        result = compare_solvers(CMS_SOURCE, target, name="cms")
        assert result.agree, result.format()


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert len(lines) == 5
