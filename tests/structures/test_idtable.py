"""ID-indexed table: reference semantics + simulator cross-validation."""

import numpy as np
import pytest

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import IDTABLE_SOURCE, IdIndexedTable


class TestReference:
    def test_get_set_add(self):
        t = IdIndexedTable(size=16)
        t.set(3, 100)
        assert t.get(3) == 100
        assert t.add(3, 5) == 105

    def test_width_masking(self):
        t = IdIndexedTable(size=4, width=8)
        t.set(0, 0x1FF)
        assert t.get(0) == 0xFF

    def test_modular_indexing(self):
        t = IdIndexedTable(size=4)
        t.set(6, 9)
        assert t.get(2) == 9

    def test_in_range(self):
        t = IdIndexedTable(size=10)
        assert t.in_range(9) and not t.in_range(10)

    def test_memory_bits(self):
        assert IdIndexedTable(size=100, width=64).memory_bits == 6400

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            IdIndexedTable(size=0)


class TestPipelineCrossValidation:
    def test_per_id_counters_match(self):
        compiled = compile_source(
            IDTABLE_SOURCE, small_target(stages=4, memory_kb=64)
        )
        pipe = Pipeline(compiled)
        size = compiled.symbol_values["idt_size"]
        ref = IdIndexedTable(size=size)
        rng = np.random.default_rng(29)
        for flow in rng.integers(0, size, size=300):
            result = pipe.process(Packet(fields={"flow_id": int(flow)}))
            expected = ref.add(int(flow), 1)
            assert result.get("meta.idt_state") == expected
        assert np.array_equal(pipe.register_dump("idt_table"), ref.cells)
