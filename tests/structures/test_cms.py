"""Count-min sketch: reference properties + simulator cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import CMS_SOURCE, CountMinSketch


class TestReferenceProperties:
    def test_never_underestimates(self):
        cms = CountMinSketch(rows=3, cols=64)
        truth = {}
        rng = np.random.default_rng(1)
        for key in rng.integers(1, 100, size=2000):
            key = int(key)
            cms.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert cms.estimate(key) >= count

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 50), min_size=1, max_size=300))
    def test_overestimate_property(self, keys):
        cms = CountMinSketch(rows=2, cols=32)
        for key in keys:
            cms.update(key)
        for key in set(keys):
            assert cms.estimate(key) >= keys.count(key)

    def test_exact_when_no_collisions(self):
        cms = CountMinSketch(rows=4, cols=4096)
        for key in range(1, 5):
            for _ in range(key):
                cms.update(key)
        for key in range(1, 5):
            assert cms.estimate(key) == key

    def test_update_returns_current_estimate(self):
        cms = CountMinSketch(rows=3, cols=128)
        assert cms.update(7) == 1
        assert cms.update(7) == 2

    def test_vectorized_matches_scalar(self):
        keys = np.array([3, 7, 3, 9, 7, 3], dtype=np.int64)
        a = CountMinSketch(rows=3, cols=64, seed_offset=5)
        b = CountMinSketch(rows=3, cols=64, seed_offset=5)
        a.update_many(keys)
        for key in keys:
            b.update(int(key))
        assert np.array_equal(a.table, b.table)
        assert list(a.estimate_many(np.array([3, 7, 9]))) == [
            b.estimate(3), b.estimate(7), b.estimate(9),
        ]

    def test_error_bound_holds_with_margin(self):
        # ε = e/cols; overestimate ≤ εN w.h.p. — test the aggregate.
        cms = CountMinSketch(rows=4, cols=256)
        rng = np.random.default_rng(2)
        keys = rng.integers(1, 2000, size=5000)
        cms.update_many(keys)
        truth = {k: int(c) for k, c in
                 zip(*np.unique(keys, return_counts=True))}
        violations = sum(
            1 for k, c in truth.items()
            if cms.estimate(int(k)) - c > cms.error_bound()
        )
        # δ = e^-4 ≈ 1.8%; allow 5% of keys to exceed.
        assert violations <= len(truth) * 0.05

    def test_more_columns_reduce_error(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(1, 3000, size=20000)
        truth = {k: int(c) for k, c in zip(*np.unique(keys, return_counts=True))}

        def total_error(cols):
            cms = CountMinSketch(rows=2, cols=cols)
            cms.update_many(keys)
            return sum(cms.estimate(int(k)) - c for k, c in truth.items())

        assert total_error(1024) <= total_error(64)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(rows=0, cols=10)

    def test_memory_accounting(self):
        assert CountMinSketch(rows=2, cols=100).memory_bits == 6400

    def test_clear(self):
        cms = CountMinSketch(rows=2, cols=16)
        cms.update(1)
        cms.clear()
        assert cms.estimate(1) == 0
        assert cms.items_seen == 0


class TestPipelineCrossValidation:
    """The compiled sketch and the reference must agree bit-for-bit."""

    @pytest.fixture(scope="class")
    def setup(self):
        compiled = compile_source(
            CMS_SOURCE, small_target(stages=6, memory_kb=32)
        )
        pipe = Pipeline(compiled)
        rows = compiled.symbol_values["cms_rows"]
        cols = compiled.symbol_values["cms_cols"]
        ref = CountMinSketch(rows=rows, cols=cols, seed_offset=0)
        return pipe, ref, rows

    def test_counters_identical_after_trace(self, setup):
        pipe, ref, rows = setup
        rng = np.random.default_rng(9)
        keys = [int(k) for k in rng.integers(1, 200, size=400)]
        estimates = []
        for key in keys:
            result = pipe.process(Packet(fields={"flow_id": key}))
            estimates.append(result.get("meta.cms_min"))
        ref_estimates = [ref.update(key) for key in keys]
        assert estimates == ref_estimates
        for row in range(rows):
            assert np.array_equal(
                pipe.register_dump("cms_sketch", row), ref.table[row]
            )
