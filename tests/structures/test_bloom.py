"""Bloom filter: reference properties + simulator cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import BLOOM_SOURCE, BloomFilter


class TestReferenceProperties:
    def test_no_false_negatives(self):
        bf = BloomFilter(hashes=3, bits_per_partition=256)
        keys = list(range(1, 60))
        for key in keys:
            bf.insert(key)
        assert all(bf.contains(key) for key in keys)

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(1, 10_000), min_size=1, max_size=100))
    def test_no_false_negatives_property(self, keys):
        bf = BloomFilter(hashes=2, bits_per_partition=512)
        for key in keys:
            bf.insert(key)
        assert all(bf.contains(key) for key in keys)

    def test_insert_reports_prior_presence(self):
        bf = BloomFilter(hashes=4, bits_per_partition=1024)
        assert bf.insert(42) is False  # new
        assert bf.insert(42) is True   # already present

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(hashes=4, bits_per_partition=4096)
        rng = np.random.default_rng(5)
        inserted = set(int(k) for k in rng.integers(1, 1 << 30, size=1000))
        for key in inserted:
            bf.insert(key)
        probes = [int(k) for k in rng.integers(1 << 30, 1 << 31, size=5000)]
        fp = sum(1 for p in probes if bf.contains(p)) / len(probes)
        # Expected FPR ≈ (1 - e^(-1000/4096))^4 ≈ 0.2%; allow 10x margin.
        assert fp < 0.02

    def test_fpr_formula_monotone_in_fill(self):
        bf = BloomFilter(hashes=3, bits_per_partition=128)
        before = bf.false_positive_rate()
        for key in range(50):
            bf.insert(key)
        assert bf.false_positive_rate() > before

    def test_clear(self):
        bf = BloomFilter(hashes=2, bits_per_partition=64)
        bf.insert(7)
        bf.clear()
        assert not bf.contains(7)


class TestPipelineCrossValidation:
    @pytest.fixture(scope="class")
    def setup(self):
        compiled = compile_source(
            BLOOM_SOURCE, small_target(stages=6, memory_kb=32)
        )
        pipe = Pipeline(compiled)
        hashes = compiled.symbol_values["bf_hashes"]
        bits = compiled.symbol_values["bf_bits"]
        ref = BloomFilter(hashes=hashes, bits_per_partition=bits, seed_offset=0)
        return pipe, ref

    def test_membership_matches_reference(self, setup):
        pipe, ref = setup
        rng = np.random.default_rng(11)
        keys = [int(k) for k in rng.integers(1, 500, size=300)]
        for key in keys:
            result = pipe.process(Packet(fields={"flow_id": key}))
            expected = ref.insert(key)
            assert bool(result.get("meta.bf_member")) == expected, key

    def test_partitions_identical(self, setup):
        pipe, ref = setup
        for i in range(ref.hashes):
            dump = pipe.register_dump("bf_filter", i).astype(bool)
            assert np.array_equal(dump, ref.partitions[i])
