"""Hierarchical sketch: reference semantics + simulator cross-validation."""

import numpy as np
import pytest

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import SKETCHLEARN_SOURCE, HierarchicalSketch


class TestReference:
    def test_level0_counts_everything(self):
        sketch = HierarchicalSketch(key_bits=4, cols=64)
        for key in (1, 2, 3, 1):
            sketch.update(key)
        assert sketch.packets == 4
        assert int(sketch.levels[0].sum()) == 4

    def test_bit_levels_count_set_bits(self):
        sketch = HierarchicalSketch(key_bits=4, cols=1024)
        sketch.update(0b1010)
        assert int(sketch.levels[1].sum()) == 0  # bit 0 clear
        assert int(sketch.levels[2].sum()) == 1  # bit 1 set
        assert int(sketch.levels[3].sum()) == 0
        assert int(sketch.levels[4].sum()) == 1  # bit 3 set

    def test_bit_ratio_for_dominant_flow(self):
        sketch = HierarchicalSketch(key_bits=4, cols=4096)
        for _ in range(100):
            sketch.update(0b0110)
        assert sketch.bit_ratio(0b0110, 1) == pytest.approx(1.0)
        assert sketch.bit_ratio(0b0110, 0) == pytest.approx(0.0)

    def test_infer_key_bits_recovers_identifier(self):
        sketch = HierarchicalSketch(key_bits=6, cols=4096)
        key = 0b101101
        for _ in range(200):
            sketch.update(key)
        bits = sketch.infer_key_bits(key)
        assert bits == [(key >> i) & 1 for i in range(6)]

    def test_ambiguous_bits_reported_none(self):
        sketch = HierarchicalSketch(key_bits=1, cols=1)
        # Two flows with opposite bit 0 share the single slot 50/50.
        for _ in range(50):
            sketch.update(0b0)
            sketch.update(0b1)
        assert sketch.infer_key_bits(0b1) == [None]


class TestPipelineCrossValidation:
    def test_levels_match_reference(self):
        compiled = compile_source(
            SKETCHLEARN_SOURCE, small_target(stages=6, memory_kb=64)
        )
        pipe = Pipeline(compiled)
        cols = compiled.symbol_values["sl_cols"]
        ref = HierarchicalSketch(key_bits=8, cols=cols, seed_offset=300)
        rng = np.random.default_rng(23)
        for key in rng.integers(1, 256, size=400):
            pipe.process(Packet(fields={"flow_id": int(key)}))
            ref.update(int(key))
        for level in range(9):
            assert np.array_equal(
                pipe.register_dump("sl_lvl", level), ref.levels[level]
            ), f"level {level} diverged"
