"""Counting hash table: reference semantics + simulator cross-validation."""

import numpy as np
import pytest

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import HASHTABLE_SOURCE, CountingHashTable


class TestReference:
    def test_untracked_key_not_counted(self):
        ht = CountingHashTable(rows=2, cols=64)
        assert not ht.increment(5)
        assert ht.count(5) == 0

    def test_tracked_key_counts(self):
        ht = CountingHashTable(rows=2, cols=64)
        assert ht.install(5)
        assert ht.increment(5)
        assert ht.increment(5)
        assert ht.count(5) == 2

    def test_install_prefers_empty_slot(self):
        ht = CountingHashTable(rows=2, cols=1)
        assert ht.install(1)
        assert ht.install(2)
        assert not ht.install(3)  # full

    def test_replace_min_evicts_smallest(self):
        ht = CountingHashTable(rows=2, cols=1)
        ht.install(1, count=10)
        ht.install(2, count=3)
        evicted = ht.replace_min(9, count=1)
        assert evicted == 3
        assert ht.count(9) == 1
        assert ht.count(1) == 10

    def test_min_candidate_count(self):
        ht = CountingHashTable(rows=2, cols=1)
        ht.install(1, count=10)
        ht.install(2, count=3)
        assert ht.min_candidate_count(99) == 3

    def test_heavy_keys(self):
        ht = CountingHashTable(rows=2, cols=64)
        ht.install(5, count=100)
        ht.install(6, count=1)
        assert ht.heavy_keys(50) == {5}


class TestPipelineCrossValidation:
    @pytest.fixture(scope="class")
    def setup(self):
        compiled = compile_source(
            HASHTABLE_SOURCE, small_target(stages=8, memory_kb=64)
        )
        pipe = Pipeline(compiled)
        rows = compiled.symbol_values["ht_rows"]
        cols = compiled.symbol_values["ht_cols"]
        ref = CountingHashTable(rows=rows, cols=cols, seed_offset=200)
        return pipe, ref

    def install_both(self, pipe, ref, key):
        assert ref.install(key)
        for row in range(ref.rows):
            idx = ref.slot_of(row, key)
            stored = int(pipe.registers.get(f"ht_keys[{row}]").read(idx))
            if stored in (0, key):
                pipe.registers.get(f"ht_keys[{row}]").write(idx, key)
                return

    def test_counts_match_reference(self, setup):
        pipe, ref = setup
        tracked = [11, 22, 33]
        for key in tracked:
            self.install_both(pipe, ref, key)
        rng = np.random.default_rng(17)
        trace = [int(k) for k in rng.choice(tracked + [44, 55], size=300)]
        for key in trace:
            result = pipe.process(Packet(fields={"flow_id": key}))
            expected = ref.increment(key)
            assert bool(result.get("meta.ht_matched")) == expected
        for key in tracked:
            assert pipe_count(pipe, ref, key) == ref.count(key)


def pipe_count(pipe, ref, key):
    for row in range(ref.rows):
        idx = ref.slot_of(row, key)
        stored = int(pipe.registers.get(f"ht_keys[{row}]").read(idx))
        if stored == key:
            return int(pipe.registers.get(f"ht_counts[{row}]").read(idx))
    return 0
