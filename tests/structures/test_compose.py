"""Module-composition tests: multiple library modules in one program."""

import pytest

from repro.core import compile_source
from repro.lang import check_program, parse_program
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import (
    bloom_module,
    cms_module,
    compose,
    hashtable_module,
    idtable_module,
    kv_module,
)


class TestComposition:
    def test_two_modules_parse_and_check(self):
        source = compose(
            modules=[
                cms_module(prefix="a", key_field="meta.flow_id", seed_offset=0),
                cms_module(prefix="b", key_field="meta.flow_id", seed_offset=50),
            ],
            extra_metadata=["bit<32> flow_id;"],
            utility="a_rows * a_cols + b_rows * b_cols",
        )
        info = check_program(parse_program(source))
        assert {"a_rows", "a_cols", "b_rows", "b_cols"} <= set(info.symbolics)

    def test_utility_weights_render(self):
        cms = cms_module(prefix="cms")
        kv = kv_module(prefix="kv")
        source = compose(
            modules=[cms, kv],
            extra_metadata=["bit<32> flow_id;"],
            utility_weights={"cms": 0.4, "kv": 0.6},
        )
        assert "optimize 0.4 * (cms_rows * cms_cols) + 0.6 * (kv_rows * kv_cols);" \
            in source

    def test_two_sketches_compile_and_run_independently(self):
        source = compose(
            modules=[
                cms_module(prefix="a", max_cols=256, seed_offset=0),
                cms_module(prefix="b", max_cols=256, seed_offset=50),
            ],
            extra_metadata=["bit<32> flow_id;"],
            utility="a_rows * a_cols + b_rows * b_cols",
        )
        compiled = compile_source(source, small_target(stages=8, memory_kb=64))
        assert compiled.symbol_values["a_rows"] >= 1
        assert compiled.symbol_values["b_rows"] >= 1
        pipe = Pipeline(compiled)
        result = pipe.process(Packet(fields={"flow_id": 7}))
        # Both sketches saw the packet once.
        assert result.get("meta.a_min") == 1
        assert result.get("meta.b_min") == 1

    def test_all_library_modules_compose_together(self):
        # One program instantiating five structures at once must still be
        # syntactically/semantically valid (compile would need a big
        # target; parsing and checking suffice here).
        source = compose(
            modules=[
                cms_module(prefix="cms", max_cols=1024),
                bloom_module(prefix="bf", max_bits=1024),
                kv_module(prefix="kv", max_cols=1024),
                hashtable_module(prefix="ht", max_cols=1024),
                idtable_module(prefix="idt", max_size=1024),
            ],
            extra_metadata=["bit<32> flow_id;"],
            utility="cms_rows * cms_cols + kv_rows * kv_cols",
        )
        info = check_program(parse_program(source))
        assert len(info.registers) >= 7

    def test_consts_render_first(self):
        source = compose(
            modules=[cms_module()],
            extra_metadata=["bit<32> flow_id;"],
            consts={"THRESHOLD": 128},
        )
        assert source.splitlines()[0] == "const int THRESHOLD = 128;"
