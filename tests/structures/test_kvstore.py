"""Key-value store: reference semantics + simulator cross-validation."""

import numpy as np
import pytest

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import KV_SOURCE, KeyValueStore


class TestReference:
    def test_insert_lookup(self):
        kv = KeyValueStore(rows=2, cols=64)
        assert kv.insert(5, 500)
        assert kv.lookup(5) == 500
        assert kv.lookup(6) is None

    def test_update_existing(self):
        kv = KeyValueStore(rows=2, cols=64)
        kv.insert(5, 500)
        kv.insert(5, 501)
        assert kv.lookup(5) == 501
        assert kv.occupancy == 1

    def test_evict(self):
        kv = KeyValueStore(rows=2, cols=64)
        kv.insert(5, 500)
        assert kv.evict(5)
        assert kv.lookup(5) is None
        assert not kv.evict(5)

    def test_collision_falls_to_next_row(self):
        kv = KeyValueStore(rows=2, cols=1)  # row slot is always 0
        assert kv.insert(1, 10)
        assert kv.insert(2, 20)   # row 0 slot taken -> row 1
        assert not kv.insert(3, 30)  # both rows taken
        assert kv.lookup(1) == 10 and kv.lookup(2) == 20

    def test_capacity_and_memory(self):
        kv = KeyValueStore(rows=3, cols=100, value_slices=2)
        assert kv.capacity == 300
        assert kv.item_bits == 32 + 128
        assert kv.memory_bits == 300 * 160

    def test_keys_view(self):
        kv = KeyValueStore(rows=2, cols=64)
        kv.insert(5, 1)
        kv.insert(9, 2)
        assert kv.keys() == {5, 9}


class TestPipelineCrossValidation:
    @pytest.fixture(scope="class")
    def setup(self):
        compiled = compile_source(KV_SOURCE, small_target(stages=8, memory_kb=64))
        pipe = Pipeline(compiled)
        rows = compiled.symbol_values["kv_rows"]
        cols = compiled.symbol_values["kv_cols"]
        ref = KeyValueStore(rows=rows, cols=cols, value_slices=1, seed_offset=100)
        return pipe, ref, rows

    def install(self, pipe, ref, key, value):
        """Install through both the reference and the pipeline registers."""
        assert ref.insert(key, value)
        for row in range(ref.rows):
            idx = ref.slot_of(row, key)
            stored = int(pipe.registers.get(f"kv_keys[{row}]").read(idx))
            if stored in (0, key):
                pipe.registers.get(f"kv_keys[{row}]").write(idx, key)
                pipe.registers.get(f"kv_val0[{row}]").write(idx, value)
                return

    def test_lookup_hits_match_reference(self, setup):
        pipe, ref, _rows = setup
        rng = np.random.default_rng(13)
        hot = [int(k) for k in rng.integers(1, 1000, size=40)]
        for key in hot:
            self.install(pipe, ref, key, key * 3)
        for key in hot + [2000, 2001]:
            result = pipe.process(Packet(fields={"flow_id": key}))
            expected = ref.lookup(key)
            assert bool(result.get("meta.kv_hit")) == (expected is not None)
            if expected is not None:
                assert result.get("meta.kv_val") == expected
