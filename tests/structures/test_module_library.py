"""Library-wide module contract tests.

Every module factory must produce a prefix-consistent, semantically valid
fragment whose standalone source agrees with the factory output.
"""

import pytest

from repro.lang import check_program, parse_program
from repro.structures import (
    LIBRARY_SOURCES,
    bloom_module,
    cms_module,
    compose,
    hashtable_module,
    hierarchical_module,
    idtable_module,
    kv_module,
    matrix_module,
)

FACTORIES = {
    "cms": cms_module,
    "bloom": bloom_module,
    "kv": kv_module,
    "hashtable": hashtable_module,
    "hierarchical": hierarchical_module,
    "idtable": idtable_module,
    "matrix": matrix_module,
}


@pytest.mark.parametrize("name,factory", sorted(FACTORIES.items()))
class TestModuleContract:
    def test_default_module_composes_and_checks(self, name, factory):
        module = factory()
        source = compose(
            modules=[module],
            extra_metadata=["bit<32> flow_id;"],
            utility=module.utility_term or None,
        )
        info = check_program(parse_program(source, f"{name}.p4all"))
        for sym in module.symbolics:
            assert sym in info.symbolics

    def test_custom_prefix_isolates_names(self, name, factory):
        a = factory(prefix="alpha")
        b = factory(prefix="beta")
        source = compose(
            modules=[a, b],
            extra_metadata=["bit<32> flow_id;"],
        )
        info = check_program(parse_program(source))
        assert not (set(a.symbolics) & set(b.symbolics))
        for sym in a.symbolics + b.symbolics:
            assert sym in info.symbolics

    def test_all_declarations_prefixed(self, name, factory):
        module = factory(prefix="zzz")
        for sym in module.symbolics:
            assert sym.startswith("zzz_"), sym
        for field_line in module.metadata_fields:
            assert "zzz_" in field_line, field_line


class TestStandaloneSources:
    @pytest.mark.parametrize("name", sorted(LIBRARY_SOURCES))
    def test_source_checks(self, name):
        info = check_program(parse_program(LIBRARY_SOURCES[name], name))
        assert "Ingress" in info.controls
        assert info.program.optimize() is not None

    def test_package_data_matches_constants(self):
        from pathlib import Path

        import repro.structures as structures

        data_dir = Path(structures.__file__).parent / "p4all_src"
        for name, source in LIBRARY_SOURCES.items():
            on_disk = (data_dir / f"{name}.p4all").read_text()
            assert on_disk == source, f"{name}.p4all out of sync"
