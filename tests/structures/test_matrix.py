"""Hash-matrix structure tests + simulator cross-validation."""

import numpy as np
import pytest

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target
from repro.structures import MATRIX_SOURCE, HashMatrix


class TestReference:
    def test_accumulates_in_every_row(self):
        mx = HashMatrix(rows=3, cols=64)
        mx.update(7, amount=10)
        mx.update(7, amount=5)
        assert mx.row_values(7) == [15, 15, 15]

    def test_total_counts_all_traffic(self):
        mx = HashMatrix(rows=2, cols=64)
        for key in (1, 2, 3):
            mx.update(key, amount=2)
        assert mx.total() == 6

    def test_median_estimate_robust_to_one_collision(self):
        mx = HashMatrix(rows=3, cols=4096)
        mx.update(1, amount=100)
        # Even if some other key collided in one row, median of three
        # rows still reports ~100 for key 1.
        mx.update(2, amount=50)
        assert mx.median_estimate(1) in (100, 150)

    def test_wraps_at_width(self):
        mx = HashMatrix(rows=1, cols=4, width=8)
        mx.update(1, amount=200)
        mx.update(1, amount=100)
        assert mx.row_values(1)[0] == (300 % 256)

    def test_clear(self):
        mx = HashMatrix(rows=2, cols=16)
        mx.update(5)
        mx.clear()
        assert mx.total() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HashMatrix(rows=0, cols=4)


class TestPipelineCrossValidation:
    def test_matrix_matches_reference(self):
        compiled = compile_source(
            MATRIX_SOURCE, small_target(stages=8, memory_kb=64)
        )
        pipe = Pipeline(compiled)
        rows = compiled.symbol_values["mx_rows"]
        cols = compiled.symbol_values["mx_cols"]
        ref = HashMatrix(rows=rows, cols=cols, seed_offset=500)
        rng = np.random.default_rng(61)
        for key in rng.integers(1, 300, size=250):
            size = int(rng.integers(64, 1500))
            pipe.process(Packet(fields={"flow_id": int(key), "pkt_bytes": size}))
            ref.update(int(key), amount=size)
        for row in range(rows):
            assert np.array_equal(
                pipe.register_dump("mx_matrix", row), ref.table[row]
            ), f"row {row} diverged"
