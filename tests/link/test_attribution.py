"""Per-module resource attribution: stage/memory/ALU accounting, the
utility breakdown, and the runtime planner's telemetry export."""

import pytest

from repro.apps.netcache import netcache_linked
from repro.core import (
    compile_linked,
    compile_linked_greedy,
    compile_source,
    module_attribution,
    module_report,
)


@pytest.fixture(scope="module")
def compiled_pair(runtime_target):
    return compile_linked(netcache_linked(with_routing=False),
                          runtime_target)


class TestModuleAttribution:
    def test_every_module_attributed(self, compiled_pair):
        attribution = module_attribution(compiled_pair)
        assert {"kv", "cms"} <= set(attribution)
        for a in attribution.values():
            assert a.units > 0
            assert a.stages

    def test_memory_partitions_total(self, compiled_pair):
        attribution = module_attribution(compiled_pair)
        total = sum(a.memory_bits for a in attribution.values())
        assert total == compiled_pair.total_register_bits()

    def test_utility_shares_partition_objective(self, compiled_pair):
        attribution = module_attribution(compiled_pair)
        shares = [a.utility_share for a in attribution.values()
                  if a.utility_share is not None]
        assert shares
        assert sum(shares) == pytest.approx(1.0)
        total_utility = sum(a.utility for a in attribution.values()
                            if a.utility is not None)
        assert total_utility == pytest.approx(
            compiled_pair.solution.objective
        )

    def test_symbols_scoped_to_owner(self, compiled_pair):
        attribution = module_attribution(compiled_pair)
        assert set(attribution["cms"].symbols) == {"cms_rows", "cms_cols"}
        assert set(attribution["kv"].symbols) == {"kv_rows", "kv_cols"}

    def test_to_dict_schema(self, compiled_pair):
        a = next(iter(module_attribution(compiled_pair).values()))
        d = a.to_dict()
        for key in ("units", "stages", "memory_bits",
                    "register_cells", "stateful_alus", "stateless_alus",
                    "hash_ops", "symbols", "utility", "utility_share"):
            assert key in d

    def test_plain_source_has_no_attribution(self, runtime_target):
        from repro.apps.netcache import netcache_source

        compiled = compile_source(
            netcache_source(with_routing=False), runtime_target,
            source_name="netcache",
        )
        assert compiled.namespace is None
        assert module_attribution(compiled) == {}

    def test_report_renders_all_modules(self, compiled_pair):
        text = module_report(compiled_pair)
        assert "kv" in text and "cms" in text
        assert "%" in text  # utility shares rendered

    def test_greedy_backend_attributes_too(self, runtime_target):
        compiled = compile_linked_greedy(
            netcache_linked(with_routing=False), runtime_target
        )
        attribution = module_attribution(compiled)
        assert {"kv", "cms"} <= set(attribution)
        total = sum(a.memory_bits for a in attribution.values())
        assert total == compiled.total_register_bits()


class TestPlannerTelemetry:
    def test_plan_exports_attribution(self, runtime_target):
        from repro.runtime.planner import ReconfigPlanner
        from repro.runtime.telemetry import TelemetryBus

        bus = TelemetryBus()
        planner = ReconfigPlanner(telemetry=bus)
        result = planner.plan(netcache_linked(with_routing=False),
                              runtime_target, cause="test")
        assert {"kv", "cms"} <= set(result.module_attribution)
        events = bus.events_of("module_attribution")
        assert events, "planner must emit the module_attribution event"

    def test_plan_on_string_source_has_no_attribution(self, runtime_target):
        from repro.apps.netcache import netcache_source
        from repro.runtime.planner import ReconfigPlanner

        planner = ReconfigPlanner()
        result = planner.plan(netcache_source(with_routing=False),
                              runtime_target, cause="test")
        assert result.module_attribution == {}

    def test_reweight_cycle(self, runtime_target):
        from repro.runtime.planner import ReconfigPlanner

        planner = ReconfigPlanner()
        linked = netcache_linked(with_routing=False,
                                 cache=planner.cache)
        planner.plan(linked, runtime_target, cause="initial")
        relinked, result = planner.reweight(
            linked, {"kv": 10.0, "cms": 1.0}, runtime_target
        )
        assert relinked.fingerprint != linked.fingerprint
        assert {"kv", "cms"} <= set(result.module_attribution)
