"""Module-linker semantics: IR extraction, namespacing, collisions,
metadata unification, isolation, weights, and floors."""

import pytest

from repro.core import UtilityError, compile_linked
from repro.link import (
    APP_MODULE,
    IsolationError,
    LinkError,
    build_module_ir,
    link_files,
    link_p4all_modules,
    module_ir_from_source,
)
from repro.structures import cms_module

from .conftest import COUNTER_SOURCE, MARKER_SOURCE, SPY_SOURCE


class TestModuleIR:
    def test_standalone_extraction(self):
        ir = build_module_ir("ctr", COUNTER_SOURCE, entry="Ingress")
        assert ir.name == "ctr"
        assert ir.symbolics == ["ctr_rows"]
        assert ir.registers == ["ctr_reg"]
        assert "ctr_bump" in ir.actions
        # The entry control is inlined, not kept as a module control.
        assert "Ingress" not in ir.controls
        assert ir.apply_stmts, "entry apply statements must be captured"
        assert ir.utility is not None

    def test_owned_names_exclude_shared_fields(self):
        ir = build_module_ir("ctr", COUNTER_SOURCE, entry="Ingress")
        owned = ir.owned_names()
        assert "ctr_rows" in owned and "ctr_reg" in owned
        # Metadata fields are sharable across modules, never "owned"
        # for collision purposes.
        assert "flow_id" not in owned

    def test_library_module_roundtrip(self):
        module = cms_module(prefix="c", key_field="meta.flow_id",
                            max_cols=4096)
        from repro.link import module_ir

        ir = module_ir(module)
        assert set(ir.symbolics) == set(module.symbolics)
        assert ir.utility is not None

    def test_parse_error_becomes_link_error(self):
        with pytest.raises(LinkError):
            module_ir_from_source("bad", "symbolic int ;")


class TestNamespace:
    def test_ownership_recorded(self):
        linked = link_files([("ctr", COUNTER_SOURCE),
                             ("mark", MARKER_SOURCE)])
        ns = linked.namespace
        assert ns.modules == ["ctr", "mark"]
        assert ns.symbolics["ctr_rows"] == "ctr"
        assert ns.symbolics["mark_slots"] == "mark"
        assert ns.registers["ctr_reg"] == "ctr"
        assert ns.registers["mark_reg"] == "mark"
        assert ns.actions["ctr_bump"] == "ctr"
        # The shared metadata field is owned by its first declarer.
        assert ns.fields["flow_id"] == "ctr"

    def test_glue_owned_by_app(self):
        linked = link_p4all_modules(
            [cms_module(prefix="a", key_field="meta.flow_id")],
            extra_metadata=["bit<32> flow_id;"],
            utility="a_rows * a_cols",
        )
        assert linked.namespace.fields["flow_id"] == APP_MODULE


class TestCollisions:
    CLASH_A = """\
symbolic int rows;
assume rows >= 1 && rows <= 2;
struct metadata { bit<32> flow_id; bit<32>[rows] a_val; }
register<bit<32>>[512][rows] a_reg;
action bump()[int i] {
    a_reg[i].add_read(meta.a_val[i], hash(i, meta.flow_id), 1);
}
control Ingress(inout metadata meta) {
    apply { for (i < rows) { bump()[i]; } }
}
optimize(rows * 512);
"""

    CLASH_B = """\
symbolic int rows;
assume rows >= 1 && rows <= 2;
struct metadata { bit<32> flow_id; bit<32>[rows] b_val; }
register<bit<32>>[256][rows] b_reg;
action bump()[int i] {
    b_reg[i].add_read(meta.b_val[i], hash(i + 9, meta.flow_id), 1);
}
control Ingress(inout metadata meta) {
    apply { for (i < rows) { bump()[i]; } }
}
optimize(rows * 256);
"""

    def test_colliding_names_prefix_rewritten(self):
        linked = link_files([("alpha", self.CLASH_A),
                             ("beta", self.CLASH_B)])
        ns = linked.namespace
        # First module keeps its names; the later one is rewritten.
        assert ns.symbolics["rows"] == "alpha"
        assert ns.symbolics["beta_rows"] == "beta"
        assert ns.actions["bump"] == "alpha"
        assert ns.actions["beta_bump"] == "beta"
        assert "beta_rows" in linked.source
        # The rewritten program still names both utility terms.
        assert [m for m, _, _ in linked.utility_terms] == ["alpha", "beta"]

    def test_renamed_program_compiles(self, runtime_target):
        linked = link_files([("alpha", self.CLASH_A),
                             ("beta", self.CLASH_B)])
        compiled = compile_linked(linked, runtime_target)
        assert "rows" in compiled.symbol_values
        assert "beta_rows" in compiled.symbol_values


class TestMetadataMerge:
    def test_identical_fields_unify(self):
        linked = link_files([("ctr", COUNTER_SOURCE),
                             ("mark", MARKER_SOURCE)])
        # Both modules declare bit<32> flow_id; the merged struct holds
        # exactly one copy.
        assert linked.source.count("bit<32> flow_id;") == 1

    def test_conflicting_fields_rejected(self):
        conflicting = MARKER_SOURCE.replace(
            "bit<32> flow_id;", "bit<16> flow_id;"
        )
        with pytest.raises(LinkError, match="flow_id"):
            link_files([("ctr", COUNTER_SOURCE), ("mark", conflicting)])


class TestIsolation:
    def test_cross_module_register_access_rejected(self):
        with pytest.raises(IsolationError) as exc:
            link_files([("ctr", COUNTER_SOURCE), ("spy", SPY_SOURCE)])
        message = str(exc.value)
        assert "spy" in message and "ctr_reg" in message and "ctr" in message

    def test_downgrade_to_diagnostics(self):
        linked = link_files(
            [("ctr", COUNTER_SOURCE), ("spy", SPY_SOURCE)],
            allow_cross_module_state=True,
        )
        assert linked.diagnostics
        assert any("ctr_reg" in d for d in linked.diagnostics)

    def test_rejection_names_both_modules_and_witness_register(self):
        """The error must carry everything a tenant operator needs:
        which module's state leaked, into whose sink, and through which
        register the flow started."""
        with pytest.raises(IsolationError) as exc:
            link_files([("ctr", COUNTER_SOURCE), ("spy", SPY_SOURCE)])
        message = str(exc.value)
        assert "module 'ctr'" in message or "'ctr'" in message
        assert "'spy'" in message
        assert "ctr_reg" in message  # the witness register
        assert "allow_cross_module_state" in message  # the way out

    def test_metadata_leak_rejected_without_foreign_register_names(self):
        """A writes a field that feeds B's hash key: nothing names a
        foreign register, so only the semantic pass can catch it — with
        a witness path from A's register to B's sink."""
        from tests.property.generators import (
            leaky_reader_source,
            writer_module_source,
        )

        with pytest.raises(IsolationError) as exc:
            link_files([("wr", writer_module_source("wr")),
                        ("rd", leaky_reader_source("rd", "wr"))])
        message = str(exc.value)
        assert "'wr'" in message and "'rd'" in message
        assert "wr_reg" in message and "witness" in message

    def test_downgrade_keeps_structured_flows(self):
        """allow_cross_module_state must not mean silence: the linked
        program carries structured FlowDiagnostics alongside the
        rendered diagnostic strings."""
        linked = link_files(
            [("ctr", COUNTER_SOURCE), ("spy", SPY_SOURCE)],
            allow_cross_module_state=True,
        )
        assert linked.flows, "downgraded flows must stay visible"
        pairs = {(f.source, f.sink_module) for f in linked.flows}
        assert ("ctr", "spy") in pairs
        for flow in linked.flows:
            assert flow.witness, "every flow carries a witness path"
            assert flow.render() in linked.diagnostics or any(
                flow.sink in d for d in linked.diagnostics
            )

    def test_per_edge_allow_list(self):
        """A collection of (src, dst) pairs downgrades only those edges."""
        linked = link_files(
            [("ctr", COUNTER_SOURCE), ("spy", SPY_SOURCE)],
            allow_cross_module_state=[("ctr", "spy")],
        )
        assert linked.flows
        # An allow list not covering the edge still rejects.
        with pytest.raises(IsolationError):
            link_files(
                [("ctr", COUNTER_SOURCE), ("spy", SPY_SOURCE)],
                allow_cross_module_state=[("ctr", "mark")],
            )


class TestWeightsAndFloors:
    def test_unknown_weight_module_rejected(self):
        with pytest.raises(LinkError, match="unknown module"):
            link_files([("ctr", COUNTER_SOURCE), ("mark", MARKER_SOURCE)],
                       weights={"nope": 1.0})

    def test_weights_scale_objective_terms(self, runtime_target):
        linked = link_files(
            [("ctr", COUNTER_SOURCE), ("mark", MARKER_SOURCE)],
            weights={"ctr": 1.0, "mark": 2.0},
        )
        compiled = compile_linked(linked, runtime_target)
        breakdown = compiled.solution.utility_breakdown
        assert set(breakdown) == {"ctr", "mark"}
        # mark's term is weight * mark_slots.
        assert breakdown["mark"] == pytest.approx(
            2.0 * compiled.symbol_values["mark_slots"]
        )
        assert sum(breakdown.values()) == pytest.approx(
            compiled.solution.objective
        )

    def test_floor_enforced(self, runtime_target):
        linked = link_files(
            [("ctr", COUNTER_SOURCE), ("mark", MARKER_SOURCE)],
            weights={"ctr": 1.0, "mark": 1.0},
            floors={"ctr": 2048.0},
        )
        compiled = compile_linked(linked, runtime_target)
        assert compiled.solution.utility_breakdown["ctr"] >= 2048.0 - 1e-6

    def test_floor_for_unknown_module_rejected(self, runtime_target):
        with pytest.raises((LinkError, UtilityError)):
            linked = link_files(
                [("ctr", COUNTER_SOURCE), ("mark", MARKER_SOURCE)],
                floors={"ghost": 10.0},
            )
            compile_linked(linked, runtime_target)
