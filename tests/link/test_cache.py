"""Per-module compile-cache behavior: editing one module re-parses only
that module, and re-weighting touches no module frontend at all."""

from repro.apps.netcache import netcache_linked
from repro.core import CompileCache, compile_linked

from .conftest import COUNTER_SOURCE, MARKER_SOURCE


def _pair(ctr_source=COUNTER_SOURCE):
    return [("ctr", ctr_source), ("mark", MARKER_SOURCE)]


class TestModuleTier:
    def test_initial_link_misses_every_module(self):
        from repro.link import link_files

        cache = CompileCache()
        link_files(_pair(), cache=cache)
        assert cache.stats.module_misses == 2
        assert cache.stats.module_hits == 0

    def test_relink_hits_every_module(self):
        from repro.link import link_files

        cache = CompileCache()
        link_files(_pair(), cache=cache)
        link_files(_pair(), cache=cache)
        assert cache.stats.module_misses == 2
        assert cache.stats.module_hits == 2

    def test_editing_one_module_reparses_only_it(self):
        from repro.link import link_files

        cache = CompileCache()
        link_files(_pair(), cache=cache)
        before_hits = cache.stats.module_hits
        before_misses = cache.stats.module_misses

        edited = COUNTER_SOURCE.replace("[1024]", "[2048]")
        assert edited != COUNTER_SOURCE
        link_files(_pair(ctr_source=edited), cache=cache)
        # Exactly one re-parse (the edited module); the other is a hit.
        assert cache.stats.module_misses == before_misses + 1
        assert cache.stats.module_hits == before_hits + 1

    def test_linked_frontend_tier(self, runtime_target):
        cache = CompileCache()
        linked = netcache_linked(with_routing=False, cache=cache)
        from repro.core import CompileOptions

        options = CompileOptions(cache=cache)
        first = compile_linked(linked, runtime_target, options=options)
        assert not first.stats.frontend_cached

        # Identical (program, target, options): the whole artifact is
        # served from the layout tier.
        repeat = compile_linked(linked, runtime_target, options=options)
        assert repeat.stats.layout_cached
        assert repeat.symbol_values == first.symbol_values

        # New target: the layout re-solves but the linked frontend
        # (semantic check + IR) is a cache hit.
        import dataclasses

        cut = dataclasses.replace(
            runtime_target,
            memory_bits_per_stage=runtime_target.memory_bits_per_stage // 2,
        )
        shrunk = compile_linked(linked, cut, options=options)
        assert shrunk.stats.frontend_cached
        assert not shrunk.stats.layout_cached

    def test_verify_tier_answers_warm_recompiles(self, runtime_target):
        """Taint verification runs once; an unchanged program's warm
        recompile serves the VerifyResult from the cache's verify tier."""
        from repro.core import CompileOptions

        cache = CompileCache()
        linked = netcache_linked(with_routing=False, cache=cache)
        options = CompileOptions(cache=cache)

        first = compile_linked(linked, runtime_target, options=options)
        assert first.verify is not None and first.verify.clean
        assert not first.stats.verify_cached
        assert cache.stats.verify_misses == 1

        warm = compile_linked(linked, runtime_target, options=options)
        assert warm.stats.verify_cached
        assert cache.stats.verify_hits >= 1
        assert warm.verify.flows == first.verify.flows
        # The verify tier shows up in the cache's bookkeeping too.
        snap = cache.snapshot()
        assert snap["verify_entries"] >= 1
        assert "verify" in repr(cache)


class TestReweight:
    def test_reweight_never_reparses_modules(self):
        cache = CompileCache()
        linked = netcache_linked(with_routing=False, cache=cache)
        baseline_misses = cache.stats.module_misses

        re1 = linked.reweight({"kv": 2.0, "cms": 1.0}, cache=cache)
        # The kv and cms frontends are cache hits; only the (tiny) glue
        # fragment may re-parse, because the objective moved out of it.
        module_misses = cache.stats.module_misses - baseline_misses
        assert module_misses <= 1
        assert cache.stats.module_hits >= 2
        assert [(m, w) for m, w, _ in re1.utility_terms] == [
            ("kv", 2.0), ("cms", 1.0)
        ]

        # A second re-weighting is fully cached.
        misses_before = cache.stats.module_misses
        re2 = re1.reweight({"kv": 1.0, "cms": 3.0}, cache=cache)
        assert cache.stats.module_misses == misses_before
        assert [(m, w) for m, w, _ in re2.utility_terms] == [
            ("kv", 1.0), ("cms", 3.0)
        ]

    def test_reweight_changes_solution_priorities(self, runtime_target):
        cache = CompileCache()
        from repro.core import CompileOptions

        options = CompileOptions(cache=cache)
        linked = netcache_linked(with_routing=False, cache=cache)
        base = compile_linked(linked, runtime_target, options=options)

        # Crank kv's weight: its weighted share must not shrink.
        heavier = linked.reweight({"kv": 50.0, "cms": 1.0}, cache=cache)
        tilted = compile_linked(heavier, runtime_target, options=options)
        assert tilted.solution.utility_breakdown["kv"] >= (
            base.solution.utility_breakdown.get("kv", 0.0)
        )
        assert heavier.fingerprint != linked.fingerprint
