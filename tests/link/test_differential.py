"""Differential: the linker and the legacy string splice must agree
bit-for-bit — identical source text, identical symbolic sizes, identical
stage mapping and register allocation, identical generated P4."""

import dataclasses
import importlib.util
import sys
from pathlib import Path

import pytest

from repro.apps.netcache import netcache_linked, netcache_source
from repro.core import compile_linked, compile_source
from repro.link import link_p4all_modules
from repro.pisa.resources import tofino
from repro.structures import compose

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def assert_identical_layouts(legacy, linked_compiled):
    assert linked_compiled.symbol_values == legacy.symbol_values
    assert linked_compiled.solution.objective == pytest.approx(
        legacy.solution.objective
    )
    legacy_stages = {u.instance.uid: u.stage for u in legacy.units}
    linked_stages = {u.instance.uid: u.stage
                     for u in linked_compiled.units}
    assert linked_stages == legacy_stages
    legacy_regs = [(r.family, r.index, r.stage, r.cells, r.width)
                   for r in legacy.registers]
    linked_regs = [(r.family, r.index, r.stage, r.cells, r.width)
                   for r in linked_compiled.registers]
    assert linked_regs == legacy_regs
    assert linked_compiled.p4_source == legacy.p4_source


class TestNetCachePair:
    """The paper's running example: kv + cms under one utility."""

    def test_source_byte_identical(self):
        legacy_text = netcache_source(with_routing=False)
        linked = netcache_linked(with_routing=False)
        assert linked.source == legacy_text

    def test_layout_identical(self, runtime_target):
        legacy = compile_source(
            netcache_source(with_routing=False), runtime_target,
            source_name="netcache",
        )
        linked = netcache_linked(with_routing=False)
        linked_compiled = compile_linked(linked, runtime_target)
        assert_identical_layouts(legacy, linked_compiled)

    def test_with_routing_source_identical(self):
        assert netcache_linked().source == netcache_source()


class TestComposeYourOwn:
    """The three-module example app (Bloom + matrix + CMS)."""

    @pytest.fixture(scope="class")
    def example(self):
        return _load_example("compose_your_own")

    @pytest.fixture(scope="class")
    def target(self):
        return dataclasses.replace(
            tofino(), stages=8, memory_bits_per_stage=128 * 1024
        )

    def test_source_byte_identical(self, example):
        legacy_text = compose(modules=example.build_modules(),
                              **example.COMPOSE_KWARGS)
        linked = link_p4all_modules(example.build_modules(),
                                    **example.COMPOSE_KWARGS)
        assert linked.source == legacy_text

    def test_layout_identical(self, example, target):
        legacy = compile_source(
            compose(modules=example.build_modules(),
                    **example.COMPOSE_KWARGS),
            target, source_name="composite",
        )
        linked = link_p4all_modules(example.build_modules(),
                                    name="composite",
                                    **example.COMPOSE_KWARGS)
        linked_compiled = compile_linked(linked, target)
        assert_identical_layouts(legacy, linked_compiled)

    def test_utility_split_names_all_modules(self, example):
        linked = link_p4all_modules(example.build_modules(),
                                    **example.COMPOSE_KWARGS)
        assert {m for m, _, _ in linked.utility_terms} == {
            "seen", "vol", "cnt"
        }
