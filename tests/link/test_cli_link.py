"""CLI: ``p4all compile a.p4all b.p4all --weights ...`` — the linked
multi-program compile, its per-module report, and its diagnostics."""

import pytest

from repro.cli import main

from .conftest import COUNTER_SOURCE, MARKER_SOURCE, SPY_SOURCE

TARGET_FLAGS = ["--stages", "6", "--memory", "65536"]


@pytest.fixture()
def sources(tmp_path):
    ctr = tmp_path / "ctr.p4all"
    ctr.write_text(COUNTER_SOURCE)
    mark = tmp_path / "mark.p4all"
    mark.write_text(MARKER_SOURCE)
    return ctr, mark


class TestLinkedCompile:
    def test_joint_layout_with_weights(self, sources, tmp_path, capsys):
        ctr, mark = sources
        out = tmp_path / "out.p4"
        rc = main(["compile", str(ctr), str(mark),
                   "--weights", "ctr=1,mark=2",
                   "-o", str(out), *TARGET_FLAGS])
        assert rc == 0
        _, err = capsys.readouterr()
        # The per-module attribution report lands on stderr.
        assert "Per-module attribution" in err
        assert "ctr" in err and "mark" in err
        # The joint program was emitted with both modules' registers.
        p4 = out.read_text()
        assert "ctr_reg" in p4 and "mark_reg" in p4

    def test_floors_accepted(self, sources, capsys):
        ctr, mark = sources
        rc = main(["compile", str(ctr), str(mark),
                   "--weights", "ctr=1,mark=1",
                   "--floors", "ctr=2048", *TARGET_FLAGS])
        assert rc == 0

    def test_single_file_stays_single(self, sources, capsys):
        ctr, _ = sources
        rc = main(["compile", str(ctr), *TARGET_FLAGS])
        assert rc == 0
        _, err = capsys.readouterr()
        # No linking: no per-module attribution block.
        assert "Per-module attribution" not in err

    def test_weights_promote_single_file_to_linked(self, sources, capsys):
        ctr, _ = sources
        rc = main(["compile", str(ctr), "--weights", "ctr=3",
                   *TARGET_FLAGS])
        assert rc == 0
        _, err = capsys.readouterr()
        assert "Per-module attribution" in err


class TestLinkedCompileErrors:
    def test_malformed_weights(self, sources, capsys):
        ctr, mark = sources
        rc = main(["compile", str(ctr), str(mark), "--weights", "ctr-2"])
        assert rc == 1
        _, err = capsys.readouterr()
        assert "malformed --weights" in err

    def test_unknown_weight_module(self, sources, capsys):
        ctr, mark = sources
        rc = main(["compile", str(ctr), str(mark),
                   "--weights", "ghost=1"])
        assert rc == 1
        _, err = capsys.readouterr()
        assert "unknown module" in err

    def test_cross_module_register_access_rejected(self, tmp_path, capsys):
        ctr = tmp_path / "ctr.p4all"
        ctr.write_text(COUNTER_SOURCE)
        spy = tmp_path / "spy.p4all"
        spy.write_text(SPY_SOURCE)
        rc = main(["compile", str(ctr), str(spy), *TARGET_FLAGS])
        assert rc == 1
        _, err = capsys.readouterr()
        assert "isolation violation" in err
        assert "ctr_reg" in err and "spy" in err
