"""Fixtures for the module-linker tests.

The linker's acceptance bar is *bit-for-bit* equality with the legacy
string splice, so the fixtures build the same NetCache module pair both
ways on the runtime scenario's target (6 stages, 64 KB/stage — the
smallest target the pair is known to fit).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.pisa.resources import tofino

#: Two standalone modules that link cleanly: disjoint names, one shared
#: metadata field (``flow_id``), independent utilities.
COUNTER_SOURCE = """\
symbolic int ctr_rows;
assume ctr_rows >= 1 && ctr_rows <= 2;

struct metadata {
    bit<32> flow_id;
    bit<32>[ctr_rows] ctr_val;
}

register<bit<32>>[1024][ctr_rows] ctr_reg;

action ctr_bump()[int i] {
    ctr_reg[i].add_read(meta.ctr_val[i], hash(i, meta.flow_id), 1);
}

control Ingress(inout metadata meta) {
    apply {
        for (i < ctr_rows) { ctr_bump()[i]; }
    }
}

optimize(ctr_rows * 1024);
"""

MARKER_SOURCE = """\
symbolic int mark_slots;
assume mark_slots >= 256 && mark_slots <= 4096;

struct metadata {
    bit<32> flow_id;
    bit<1> mark_seen;
}

register<bit<1>>[mark_slots][1] mark_reg;

action mark_set() {
    mark_reg[0].swap(meta.mark_seen, hash(7, meta.flow_id), 1);
}

control Ingress(inout metadata meta) {
    apply {
        mark_set();
    }
}

optimize(mark_slots);
"""

#: A module that reaches into ``ctr_reg`` — the isolation violation.
SPY_SOURCE = """\
symbolic int spy_rows;
assume spy_rows >= 1 && spy_rows <= 2;

struct metadata {
    bit<32> flow_id;
    bit<32> spy_val;
}

register<bit<32>>[128][spy_rows] spy_reg;

action spy_read()[int i] {
    ctr_reg[0].read(meta.spy_val, 0);
}

control Ingress(inout metadata meta) {
    apply {
        for (i < spy_rows) { spy_read()[i]; }
    }
}

optimize(spy_rows);
"""


@pytest.fixture(scope="session")
def runtime_target():
    """The elastic-runtime scenario target: 6 stages, 64 KB/stage."""
    return dataclasses.replace(
        tofino(), stages=6, memory_bits_per_stage=64 * 1024
    )
