"""Property-based compilation tests: random targets, invariant layouts.

For randomly drawn (small) targets, compiling the library CMS must either
fail cleanly (infeasible) or produce a layout satisfying every resource
and dependency invariant — the same checks the PISA simulator enforces at
load time.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LayoutInfeasibleError, compile_source
from repro.pisa import Pipeline
from repro.pisa.resources import TargetSpec
from repro.structures import CMS_SOURCE


@st.composite
def random_target(draw):
    return TargetSpec(
        name="rand",
        stages=draw(st.integers(min_value=2, max_value=6)),
        memory_bits_per_stage=draw(st.sampled_from([1024, 4096, 16384, 65536])),
        stateful_alus_per_stage=draw(st.integers(min_value=1, max_value=4)),
        stateless_alus_per_stage=draw(st.integers(min_value=2, max_value=8)),
        phv_bits=draw(st.sampled_from([256, 1024, 4096])),
        hash_units_per_stage=draw(st.integers(min_value=1, max_value=4)),
    )


class TestCompileInvariants:
    @settings(max_examples=12, deadline=None)
    @given(random_target())
    def test_layout_respects_every_budget(self, target):
        try:
            compiled = compile_source(CMS_SOURCE, target)
        except LayoutInfeasibleError:
            return  # a clean refusal is acceptable on starved targets
        # The pipeline's load-time validation re-checks memory, ALUs,
        # hash units, PHV, and register co-location independently.
        Pipeline(compiled)
        # Dependency invariants.
        stages = {u.label: u.stage for u in compiled.units}
        rows = compiled.symbol_values["cms_rows"]
        for i in range(rows):
            assert stages[f"cms_incr[{i}]"] < stages[f"cms_take_min[{i}]"]
        mins = [stages[f"cms_take_min[{i}]"] for i in range(rows)]
        assert len(set(mins)) == len(mins)
        # Equal sizes + assume caps.
        sizes = {r.cells for r in compiled.registers}
        assert len(sizes) <= 1
        assert rows <= 4
