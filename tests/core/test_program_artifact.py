"""CompiledProgram artifact-API tests."""

import pytest

from repro.core.program import CompileStats


class TestCompiledProgramHelpers:
    def test_units_partition_by_stage(self, compiled_cms):
        total = sum(
            len(compiled_cms.units_in_stage(s))
            for s in range(compiled_cms.target.stages)
        )
        assert total == len(compiled_cms.units)

    def test_registers_partition_by_stage(self, compiled_cms):
        total = sum(
            len(compiled_cms.registers_in_stage(s))
            for s in range(compiled_cms.target.stages)
        )
        assert total == len(compiled_cms.registers)

    def test_family_total_cells(self, compiled_cms):
        syms = compiled_cms.symbol_values
        assert compiled_cms.family_total_cells("cms_sketch") == \
            syms["cms_rows"] * syms["cms_cols"]
        assert compiled_cms.family_total_cells("ghost") == 0

    def test_total_register_bits(self, compiled_cms):
        expected = sum(r.cells * r.width for r in compiled_cms.registers)
        assert compiled_cms.total_register_bits() == expected

    def test_stages_used_sorted_unique(self, compiled_cms):
        used = compiled_cms.stages_used()
        assert used == sorted(set(used))

    def test_register_alloc_names(self, compiled_cms):
        reg = compiled_cms.registers[0]
        assert reg.name == f"{reg.family}[{reg.index}]"
        assert reg.size_bits == reg.cells * reg.width

    def test_repr_mentions_symbols(self, compiled_cms):
        assert "cms_rows=" in repr(compiled_cms)


class TestCompileStats:
    def test_total_is_sum_of_phases(self):
        stats = CompileStats(
            parse_seconds=0.1,
            analysis_seconds=0.2,
            ilp_build_seconds=0.3,
            ilp_solve_seconds=0.4,
            codegen_seconds=0.5,
        )
        assert stats.total_seconds == pytest.approx(1.5)
