"""Differential testing: staged execution ≡ sequential execution.

For any well-formed straight-line program, the compiler's stage layout
plus the simulator's snapshot/commit semantics must produce exactly the
behavior of naive sequential interpretation — the dependency analysis
exists to guarantee it. Hypothesis generates random programs (chained
arithmetic over metadata fields, guarded updates, register counters);
each is compiled onto a roomy target, run over random packets, and
compared field-for-field against a direct sequential evaluator.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import compile_source
from repro.pisa import Packet, Pipeline, small_target

WIDTH = 16
MASK = (1 << WIDTH) - 1
FIELDS = ["f0", "f1", "f2", "f3"]
INPUTS = ["in0", "in1"]


# --------------------------------------------------------------------------
# Random-program generation: a list of simple statements.
# Each statement: (kind, target, a, b, op) with operands drawn from fields,
# inputs, and constants.
# --------------------------------------------------------------------------

_operand = st.one_of(
    st.sampled_from([f"meta.{f}" for f in FIELDS + INPUTS]),
    st.integers(min_value=0, max_value=MASK),
)
_op = st.sampled_from(["+", "-", "&", "|", "^", "*"])


@st.composite
def statement(draw):
    kind = draw(st.sampled_from(["assign", "guarded", "count"]))
    target = draw(st.sampled_from(FIELDS))
    a = draw(_operand)
    b = draw(_operand)
    op = draw(_op)
    guard_field = draw(st.sampled_from(FIELDS + INPUTS))
    guard_const = draw(st.integers(min_value=0, max_value=4))
    return (kind, target, a, b, op, guard_field, guard_const)


def render_program(stmts) -> str:
    lines = [
        "struct metadata {",
        *(f"    bit<{WIDTH}> {f};" for f in FIELDS),
        *(f"    bit<{WIDTH}> {f};" for f in INPUTS),
        f"    bit<{WIDTH}> total;",
        "}",
        "register<bit<16>>[8] counter;",
        "control Ingress(inout metadata meta) {",
        "    apply {",
    ]
    for kind, target, a, b, op, guard_field, guard_const in stmts:
        expr = f"{_fmt(a)} {op} {_fmt(b)}"
        if kind == "assign":
            lines.append(f"        meta.{target} = {expr};")
        elif kind == "guarded":
            lines.append(
                f"        if (meta.{guard_field} > {guard_const}) "
                f"{{ meta.{target} = {expr}; }}"
            )
        else:  # count
            lines.append(
                f"        counter.add_read(meta.total, meta.{guard_field}, 1);"
            )
    lines += ["    }", "}"]
    return "\n".join(lines)


def _fmt(operand) -> str:
    return str(operand) if isinstance(operand, int) else operand


# --------------------------------------------------------------------------
# Sequential oracle.
# --------------------------------------------------------------------------


def run_sequential(stmts, packets) -> list[dict]:
    counter = [0] * 8
    results = []
    for packet in packets:
        env = {f"meta.{f}": 0 for f in FIELDS}
        env["meta.total"] = 0
        for name in INPUTS:
            env[f"meta.{name}"] = packet[name] & MASK
        for kind, target, a, b, op, guard_field, guard_const in stmts:
            def val(operand):
                return operand if isinstance(operand, int) else env[operand]

            if kind == "count":
                idx = env[f"meta.{guard_field}"] % 8
                counter[idx] = (counter[idx] + 1) & MASK
                env["meta.total"] = counter[idx]
                continue
            if kind == "guarded" and not env[f"meta.{guard_field}"] > guard_const:
                continue
            ops = {
                "+": lambda x, y: x + y,
                "-": lambda x, y: x - y,
                "&": lambda x, y: x & y,
                "|": lambda x, y: x | y,
                "^": lambda x, y: x ^ y,
                "*": lambda x, y: x * y,
            }
            env[f"meta.{target}"] = ops[op](val(a), val(b)) & MASK
        results.append(dict(env))
    return results


# --------------------------------------------------------------------------
# The differential property.
# --------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    stmts=st.lists(statement(), min_size=1, max_size=6),
    packet_values=st.lists(
        st.tuples(st.integers(0, MASK), st.integers(0, MASK)),
        min_size=1,
        max_size=4,
    ),
)
def test_pipeline_matches_sequential_semantics(stmts, packet_values):
    source = render_program(stmts)
    target = small_target(stages=8, memory_kb=64)
    try:
        compiled = compile_source(source, target)
    except Exception as exc:  # infeasible programs are out of scope here
        from repro.core import LayoutInfeasibleError
        from repro.analysis.dependencies import AnalysisError

        if isinstance(exc, (LayoutInfeasibleError, AnalysisError)):
            return
        raise
    pipe = Pipeline(compiled)
    packets = [{"in0": a, "in1": b} for a, b in packet_values]
    expected = run_sequential(stmts, packets)
    for packet, want in zip(packets, expected):
        result = pipe.process(Packet(fields=packet))
        for key, value in want.items():
            assert result.get(key) == value, (
                f"{key}: pipeline {result.get(key)} != sequential {value}\n"
                f"program:\n{source}"
            )
