"""Standalone layout-validator tests (fault injection)."""

import dataclasses

import pytest

from repro.core import compile_source, validate_layout
from repro.core.validate import LayoutValidationError
from repro.pisa.resources import small_target
from repro.structures import CMS_SOURCE


@pytest.fixture()
def compiled():
    # Fresh artifact per test — these tests mutate it.
    return compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))


class TestValidateLayout:
    def test_clean_artifact_passes(self, compiled):
        validate_layout(compiled)

    def test_misplaced_register_rejected(self, compiled):
        compiled.registers[0].stage = (compiled.registers[0].stage + 1) % 6
        with pytest.raises(LayoutValidationError):
            validate_layout(compiled)

    def test_memory_overflow_detected(self, compiled):
        compiled.registers[0].cells *= 100
        with pytest.raises(LayoutValidationError):
            validate_layout(compiled)

    def test_unequal_family_sizes_detected(self, compiled):
        if len(compiled.registers) < 2:
            pytest.skip("needs two register instances")
        compiled.registers[0].cells -= 1
        with pytest.raises(LayoutValidationError, match="unequal sizes"):
            validate_layout(compiled)

    def test_stage_swap_rejected(self, compiled):
        incr = next(u for u in compiled.units if u.instance.name == "cms_incr")
        take = next(
            u for u in compiled.units
            if u.instance.name == "cms_take_min"
            and u.instance.iteration == incr.instance.iteration
        )
        # Also move the register so the co-location check doesn't fire first.
        incr.stage, take.stage = take.stage, incr.stage
        for reg in compiled.registers:
            if reg.index == incr.instance.iteration:
                reg.stage = incr.stage
        with pytest.raises(LayoutValidationError):
            validate_layout(compiled)

    def test_colocated_exclusive_units_rejected(self, compiled):
        mins = [u for u in compiled.units if u.instance.name == "cms_take_min"]
        if len(mins) < 2:
            pytest.skip("needs two take_min units")
        mins[1].stage = mins[0].stage
        with pytest.raises(LayoutValidationError):
            validate_layout(compiled)

    def test_symbol_value_mismatch_detected(self, compiled):
        compiled.solution.symbol_values["cms_rows"] += 1
        with pytest.raises(LayoutValidationError, match="placed iterations"):
            validate_layout(compiled)

    def test_phv_overflow_detected(self, compiled):
        compiled = dataclasses.replace(
            compiled,
            target=dataclasses.replace(compiled.target, phv_bits=8),
        )
        with pytest.raises(LayoutValidationError, match="PHV"):
            validate_layout(compiled)
