"""Report-formatting tests (summary line, stage map, figure tables)."""

import pytest

from repro.core import compile_source, layout_report, summary_line
from repro.pisa.resources import small_target
from repro.structures import BLOOM_SOURCE


@pytest.fixture(scope="module")
def compiled():
    return compile_source(
        BLOOM_SOURCE, small_target(stages=6, memory_kb=32), source_name="bloom"
    )


class TestSummaryLine:
    def test_contains_essentials(self, compiled):
        line = summary_line(compiled)
        assert "bloom" in line
        assert "bf_hashes=" in line and "bf_bits=" in line
        assert "objective" in line and "vars" in line

    def test_single_line(self, compiled):
        assert "\n" not in summary_line(compiled)


class TestLayoutReport:
    def test_percentages_bounded(self, compiled):
        report = layout_report(compiled)
        for token in report.split():
            if token.endswith("%)"):
                pct = float(token.strip("()%"))
                assert 0.0 <= pct <= 100.0

    def test_every_placed_register_listed(self, compiled):
        report = layout_report(compiled)
        for reg in compiled.registers:
            assert reg.name in report

    def test_empty_stages_omitted(self, compiled):
        report = layout_report(compiled)
        used = compiled.stages_used()
        for stage in range(compiled.target.stages):
            line = f"stage {stage}:"
            if stage in used:
                assert line in report
            else:
                assert line not in report

    def test_solver_backend_mentioned(self, compiled):
        assert compiled.solution.backend in layout_report(compiled)
