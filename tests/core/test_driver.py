"""End-to-end compiler-driver tests."""

import pytest

from repro.core import (
    CompileOptions,
    compile_file,
    compile_source,
    layout_report,
    summary_line,
)
from repro.core.errors import CompileError
from repro.pisa.resources import small_target
from repro.structures import CMS_SOURCE


class TestDriver:
    def test_stats_populated(self, compiled_cms):
        stats = compiled_cms.stats
        assert stats.ilp_variables > 0
        assert stats.ilp_constraints > 0
        assert stats.total_seconds > 0
        assert stats.ilp_solve_seconds <= stats.total_seconds

    def test_units_sorted_by_stage(self, compiled_cms):
        stages = [u.stage for u in compiled_cms.units]
        assert stages == sorted(stages)

    def test_registers_have_widths(self, compiled_cms):
        for reg in compiled_cms.registers:
            assert reg.width == 32
            assert reg.cells > 0

    def test_compile_file(self, tmp_path, small8):
        path = tmp_path / "cms.p4all"
        path.write_text(CMS_SOURCE)
        compiled = compile_file(path, small8)
        assert compiled.source_name.endswith("cms.p4all")

    def test_custom_entry_control(self, small8):
        source = """
        struct metadata { bit<32> x; }
        control MyPipe(inout metadata meta) {
            apply { meta.x = 1; }
        }
        """
        compiled = compile_source(
            source, small8, options=CompileOptions(entry="MyPipe")
        )
        assert len(compiled.units) == 1

    def test_bb_backend_agrees_with_scipy(self):
        target = small_target(stages=4, memory_kb=4)
        a = compile_source(CMS_SOURCE, target)
        b = compile_source(
            CMS_SOURCE, target, options=CompileOptions(backend="bb")
        )
        assert a.solution.objective == pytest.approx(
            b.solution.objective, rel=1e-4
        )

    def test_program_without_optimize_still_compiles(self, small8):
        source = CMS_SOURCE.replace("optimize cms_rows * cms_cols;", "")
        compiled = compile_source(source, small8)
        # Without a utility, any feasible placement is acceptable; the
        # inelastic parts must still be placed.
        assert any(u.instance.name == "op1" for u in compiled.units)


class TestReports:
    def test_summary_line_contents(self, compiled_cms):
        line = summary_line(compiled_cms)
        assert "cms_rows=" in line and "ILP" in line

    def test_layout_report_contents(self, compiled_cms):
        report = layout_report(compiled_cms)
        assert "stage 0" in report
        assert "register cms_sketch[0]" in report
        assert "%" in report
