"""Layout-ILP correctness: every Figure-10 constraint family, checked on
real compiled artifacts rather than on the ILP matrices."""

import dataclasses

import pytest

from repro.core import (
    CompileOptions,
    LayoutOptions,
    compile_source,
    LayoutInfeasibleError,
)
from repro.pisa.resources import small_target, toy_three_stage, tofino
from repro.structures import CMS_SOURCE, KV_SOURCE


def verify_resource_model(compiled) -> None:
    """Independent re-check of per-stage budgets on a compiled artifact."""
    from repro.core.tablemem import table_memory_bits

    target = compiled.target
    for stage in range(target.stages):
        units = compiled.units_in_stage(stage)
        regs = compiled.registers_in_stage(stage)
        mem = sum(r.size_bits for r in regs)
        mem += sum(
            table_memory_bits(compiled.info.tables[u.instance.table], compiled.info)
            for u in units
            if u.instance.table is not None
        )
        assert mem <= target.memory_bits_per_stage, f"stage {stage} memory"
        stateful = sum(target.hf(u.instance.cost) for u in units)
        stateless = sum(target.hl(u.instance.cost) for u in units)
        hashes = sum(u.instance.cost.hash_ops for u in units)
        assert stateful <= target.stateful_alus_per_stage, f"stage {stage} F"
        assert stateless <= target.stateless_alus_per_stage, f"stage {stage} L"
        assert hashes <= target.hash_units_per_stage, f"stage {stage} hash"


@pytest.fixture(scope="module")
def cms_small():
    return compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))


class TestResourceConstraints:
    def test_budgets_respected(self, cms_small):
        verify_resource_model(cms_small)

    def test_register_colocated_with_action(self, cms_small):
        # #9: every register instance lives where its accessor is placed.
        reg_stage = {(r.family, r.index): r.stage for r in cms_small.registers}
        for unit in cms_small.units:
            for fam, idx in unit.instance.registers:
                assert reg_stage[(fam, idx)] == unit.stage

    def test_equal_register_sizes(self, cms_small):
        # #10: all placed instances of one family have the same size.
        sizes = {}
        for reg in cms_small.registers:
            sizes.setdefault(reg.family, set()).add(reg.cells)
        for family, cells in sizes.items():
            assert len(cells) == 1, f"{family} sizes differ: {cells}"

    def test_phv_budget_respected(self, cms_small):
        info = cms_small.info
        used = info.metadata_fixed_bits()
        rows = cms_small.symbol_values["cms_rows"]
        for fd in info.metadata.values():
            if fd.is_elastic:
                used += fd.width * rows
        assert used <= cms_small.target.phv_bits


class TestDependencyConstraints:
    def test_precedence_in_stage_numbers(self, cms_small):
        # incr[i] strictly before take_min[i].
        stages = {u.label: u.stage for u in cms_small.units}
        rows = cms_small.symbol_values["cms_rows"]
        for i in range(rows):
            assert stages[f"cms_incr[{i}]"] < stages[f"cms_take_min[{i}]"]

    def test_exclusion_in_distinct_stages(self, cms_small):
        stages = {u.label: u.stage for u in cms_small.units}
        rows = cms_small.symbol_values["cms_rows"]
        mins = [stages[f"cms_take_min[{i}]"] for i in range(rows)]
        assert len(set(mins)) == rows, "take_min instances must not share stages"

    def test_iterations_form_a_prefix(self, cms_small):
        # #16: active iterations are 0..rows-1 with no gaps.
        rows = cms_small.symbol_values["cms_rows"]
        active = {
            i for (sym, i), on in cms_small.solution.iteration_active.items()
            if sym == "cms_rows" and on
        }
        assert active == set(range(rows))

    def test_paired_loops_keep_same_count(self, cms_small):
        # #7: hash_inc and find_min loops share 'cms_rows': equal numbers
        # of incr and take_min units are placed.
        incr = sum(1 for u in cms_small.units if u.instance.name == "cms_incr")
        take = sum(1 for u in cms_small.units if u.instance.name == "cms_take_min")
        assert incr == take == cms_small.symbol_values["cms_rows"]


class TestAssumes:
    def test_assume_bounds_respected(self, cms_small):
        syms = cms_small.symbol_values
        assert 1 <= syms["cms_rows"] <= 4
        assert syms["cms_cols"] <= 65536

    def test_memory_floor_assume(self):
        # Figure-13 style product assume forces a minimum total size.
        floor_bits = 6 * 32 * 1024  # 6 KV-rows worth at 32 b/key... (toy)
        source = KV_SOURCE.replace(
            "assume kv_rows >= 1;",
            f"assume kv_rows >= 1;\nassume kv_rows * kv_cols * 96 >= {floor_bits};",
        )
        compiled = compile_source(source, small_target(stages=8, memory_kb=64))
        total_bits = sum(
            96 * 0 + r.size_bits for r in compiled.registers
        )
        assert total_bits >= floor_bits

    def test_contradictory_assume_is_infeasible(self):
        source = CMS_SOURCE.replace(
            "assume cms_rows >= 1 && cms_rows <= 4;",
            "assume cms_rows >= 3 && cms_rows <= 4;",
        )
        # On the 3-stage toy target at most 2 rows fit -> infeasible.
        with pytest.raises(Exception) as excinfo:
            compile_source(source, toy_three_stage())
        from repro.lang.errors import SemanticError

        assert isinstance(
            excinfo.value, (LayoutInfeasibleError, SemanticError)
        )


class TestOptimality:
    def test_cms_maximizes_total_cells(self):
        # 6 stages x 32 kb: with rows<=4 and the min-chain, the optimum
        # fills whole stages; total cells must equal rows * cols.
        target = small_target(stages=6, memory_kb=32)
        compiled = compile_source(CMS_SOURCE, target)
        syms = compiled.symbol_values
        total = compiled.family_total_cells("cms_sketch")
        assert total == syms["cms_rows"] * syms["cms_cols"]

    def test_bigger_target_never_decreases_objective(self):
        small = compile_source(CMS_SOURCE, small_target(stages=4, memory_kb=16))
        large = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=64))
        assert large.solution.objective >= small.solution.objective

    def test_symmetry_breaking_preserves_objective(self):
        target = small_target(stages=5, memory_kb=32)
        on = compile_source(CMS_SOURCE, target)
        off = compile_source(
            CMS_SOURCE,
            target,
            options=CompileOptions(layout=LayoutOptions(symmetry_breaking=False)),
        )
        assert on.solution.objective == pytest.approx(
            off.solution.objective, rel=1e-4
        )


class TestApplicationLayouts:
    def test_netcache_layout_resources(self):
        from repro.apps import netcache_source

        compiled = compile_source(netcache_source(), tofino())
        verify_resource_model(compiled)

    def test_precision_layout_resources(self):
        from repro.apps import precision_source

        compiled = compile_source(precision_source(), tofino())
        verify_resource_model(compiled)
