"""Utility-function linearization tests."""

import pytest

from repro.analysis import build_ir, compute_upper_bounds
from repro.core.errors import UtilityError
from repro.core.layout import LayoutBuilder
from repro.core.utility import linearize_condition, linearize_term
from repro.lang import check_program, parse_expression, parse_program
from repro.pisa.resources import small_target

SOURCE = """
symbolic int rows;
symbolic int cols;
symbolic int spare;
const int W = 8;
assume rows >= 1 && rows <= 3;
struct metadata {
    bit<32> fkey;
    bit<32>[rows] idx;
}
register<bit<32>>[cols][rows] grid;
action put()[int i] {
    meta.idx[i] = hash(i, meta.fkey);
    grid[i].add(meta.idx[i], 1);
}
control Ingress(inout metadata meta) {
    apply { for (i < rows) { put()[i]; } }
}
"""


@pytest.fixture(scope="module")
def layout_model():
    info = check_program(parse_program(SOURCE))
    ir = build_ir(info, "Ingress")
    target = small_target(stages=4, memory_kb=16)
    builder = LayoutBuilder(ir, compute_upper_bounds(ir, target), target)
    return builder.build(), info


class TestLinearizeTerm:
    def test_constant(self, layout_model):
        lm, info = layout_model
        expr = linearize_term(parse_expression("42"), lm, info)
        assert expr.constant == 42 and not expr.terms

    def test_const_name(self, layout_model):
        lm, info = layout_model
        expr = linearize_term(parse_expression("W * 2"), lm, info)
        assert expr.constant == 16

    def test_loop_symbolic_is_iteration_sum(self, layout_model):
        lm, info = layout_model
        expr = linearize_term(parse_expression("rows"), lm, info)
        assert len(expr.terms) == 3  # bound is 3 (assume)

    def test_size_symbolic_is_size_var(self, layout_model):
        lm, info = layout_model
        expr = linearize_term(parse_expression("cols"), lm, info)
        assert len(expr.terms) == 1
        (var,) = expr.terms
        assert "size[cols]" in var.name

    def test_count_times_size_maps_to_total_cells(self, layout_model):
        lm, info = layout_model
        expr = linearize_term(parse_expression("rows * cols"), lm, info)
        # One m-variable per (instance, stage): 3 instances x 4 stages.
        assert len(expr.terms) == 12

    def test_scaled_product(self, layout_model):
        lm, info = layout_model
        expr = linearize_term(parse_expression("0.4 * (rows * cols)"), lm, info)
        assert all(c == pytest.approx(0.4) for c in expr.terms.values())

    def test_weighted_sum(self, layout_model):
        lm, info = layout_model
        expr = linearize_term(
            parse_expression("2 * rows + 3 * cols - 1"), lm, info
        )
        assert expr.constant == -1
        assert len(expr.terms) == 4  # 3 iteration vars + 1 size var

    def test_division_by_constant(self, layout_model):
        lm, info = layout_model
        expr = linearize_term(parse_expression("rows / 2"), lm, info)
        assert all(c == pytest.approx(0.5) for c in expr.terms.values())

    def test_min_creates_bounded_aux(self, layout_model):
        lm, info = layout_model
        before = lm.model.num_constraints
        expr = linearize_term(parse_expression("min(rows, cols)"), lm, info)
        assert len(expr.terms) == 1
        assert lm.model.num_constraints == before + 2

    def test_unrelated_product_rejected(self, layout_model):
        lm, info = layout_model
        with pytest.raises(UtilityError, match="does not match any register"):
            linearize_term(parse_expression("rows * spare"), lm, info)

    def test_unknown_name_rejected(self, layout_model):
        lm, info = layout_model
        with pytest.raises(UtilityError, match="unknown name"):
            linearize_term(parse_expression("bogus"), lm, info)

    def test_symbolic_division_rejected(self, layout_model):
        lm, info = layout_model
        with pytest.raises(UtilityError, match="constant divisor"):
            linearize_term(parse_expression("rows / cols"), lm, info)


class TestLinearizeCondition:
    def test_conjunction_splits(self, layout_model):
        lm, info = layout_model
        constrs = linearize_condition(
            parse_expression("rows >= 1 && cols <= 512"), lm, info
        )
        assert len(constrs) == 2

    def test_strict_comparison_tightened(self, layout_model):
        lm, info = layout_model
        (constr,) = linearize_condition(parse_expression("rows < 3"), lm, info)
        # rows < 3 becomes rows + 1 <= 3, i.e. rows - 2 <= 0.
        assert constr.expr.constant == pytest.approx(-2)

    def test_product_condition(self, layout_model):
        lm, info = layout_model
        (constr,) = linearize_condition(
            parse_expression("rows * cols * 32 >= 1024"), lm, info
        )
        assert len(constr.expr.terms) == 12

    def test_disjunction_rejected(self, layout_model):
        lm, info = layout_model
        with pytest.raises(UtilityError, match="conjunctions"):
            linearize_condition(parse_expression("rows == 1 || rows == 2"), lm, info)
