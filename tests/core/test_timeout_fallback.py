"""Structured solver-timeout surfacing and the greedy compile backend.

A solver time-limit expiry used to "succeed" with every symbol at zero —
a silently unconfigured pipeline. Now: no incumbent at the limit raises
a structured :class:`LayoutTimeoutError`; an incumbent is kept and
tagged ``SolveStatus.TIMEOUT``; and ``backend="greedy"`` compiles
through the first-fit heuristic without the ILP at all.
"""

import pytest

from repro.core import (
    CompileOptions,
    LayoutTimeoutError,
    compile_source,
    compile_source_greedy,
    validate_layout,
)
from repro.ilp import SolveStatus
from repro.pisa import Pipeline, Packet
from repro.structures import CMS_SOURCE


class TestStructuredTimeout:
    def test_no_incumbent_raises_layout_timeout(self, small8):
        with pytest.raises(LayoutTimeoutError) as excinfo:
            compile_source(
                CMS_SOURCE, small8,
                options=CompileOptions(time_limit=1e-5),
            )
        err = excinfo.value
        assert err.time_limit == pytest.approx(1e-5)
        assert err.backend
        assert "time limit" in str(err)

    def test_generous_limit_compiles_normally(self, small8):
        compiled = compile_source(
            CMS_SOURCE, small8, options=CompileOptions(time_limit=300.0)
        )
        assert compiled.solution.status is SolveStatus.OPTIMAL
        assert compiled.symbol_values["cms_rows"] >= 1

    def test_timeout_status_has_usable_flag(self):
        assert SolveStatus.TIMEOUT.usable
        assert SolveStatus.OPTIMAL.usable
        assert SolveStatus.FEASIBLE.usable
        assert not SolveStatus.INFEASIBLE.usable


class TestGreedyBackend:
    def test_compile_source_greedy(self, small8):
        compiled = compile_source_greedy(CMS_SOURCE, small8)
        assert compiled.solution.backend == "greedy"
        assert compiled.solution.status is SolveStatus.FEASIBLE
        assert compiled.units
        assert compiled.symbol_values["cms_rows"] >= 1
        validate_layout(compiled)

    def test_backend_option_routes_to_greedy(self, small8):
        compiled = compile_source(
            CMS_SOURCE, small8, options=CompileOptions(backend="greedy")
        )
        assert compiled.solution.backend == "greedy"

    def test_greedy_artifact_executes(self, small8):
        compiled = compile_source_greedy(CMS_SOURCE, small8)
        pipe = Pipeline(compiled)
        for _ in range(3):
            result = pipe.process(Packet(fields={"flow_id": 7}))
        assert result.get("meta.cms_min") >= 3

    def test_greedy_never_beats_ilp(self, small8, compiled_cms):
        greedy = compile_source_greedy(CMS_SOURCE, small8)
        assert greedy.solution.objective <= compiled_cms.solution.objective
