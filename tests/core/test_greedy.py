"""Greedy first-fit baseline tests."""

import pytest

from repro.analysis import build_ir, compute_upper_bounds
from repro.core import compile_source, greedy_layout
from repro.lang import check_program, parse_program
from repro.lang.symbols import eval_static
from repro.pisa.resources import small_target
from repro.structures import CMS_SOURCE


def greedy_for(source: str, target):
    info = check_program(parse_program(source))
    ir = build_ir(info, "Ingress")
    bounds = compute_upper_bounds(ir, target)
    return info, greedy_layout(ir, bounds, target)


class TestGreedyFeasibility:
    def test_stage_assignments_within_range(self):
        target = small_target(stages=6, memory_kb=32)
        _, result = greedy_for(CMS_SOURCE, target)
        for stage in result.instance_stage.values():
            assert stage is None or 0 <= stage < target.stages

    def test_memory_within_budget(self):
        target = small_target(stages=6, memory_kb=32)
        info, result = greedy_for(CMS_SOURCE, target)
        per_stage: dict[int, int] = {}
        for (fam, _idx), (stage, cells) in result.register_alloc.items():
            bits = cells * info.registers[fam].cell_bits
            per_stage[stage] = per_stage.get(stage, 0) + bits
        for stage, bits in per_stage.items():
            assert bits <= target.memory_bits_per_stage

    def test_symbol_values_consistent(self):
        target = small_target(stages=6, memory_kb=32)
        _, result = greedy_for(CMS_SOURCE, target)
        rows = result.symbol_values["cms_rows"]
        placed_regs = len(result.register_alloc)
        assert placed_regs == rows

    def test_utility_evaluation(self):
        target = small_target(stages=6, memory_kb=32)
        info, result = greedy_for(CMS_SOURCE, target)
        opt = info.program.optimize()
        value = result.utility_value(opt.utility, info.consts)
        assert value > 0


class TestGreedyVsIlp:
    def test_ilp_at_least_as_good(self):
        target = small_target(stages=6, memory_kb=32)
        info, greedy = greedy_for(CMS_SOURCE, target)
        compiled = compile_source(CMS_SOURCE, target)
        opt = info.program.optimize().utility
        env_ilp = dict(info.consts)
        env_ilp.update(compiled.symbol_values)
        ilp_value = eval_static(opt, env_ilp)
        greedy_value = greedy.utility_value(opt, info.consts)
        assert ilp_value >= greedy_value

    def test_netcache_gap(self):
        # Greedy allocates the KV store (first in program order) whole
        # stages before it ever considers the sketch; the ILP balances.
        from repro.apps import netcache_source
        from repro.pisa.resources import tofino

        source = netcache_source()
        target = tofino()
        info, greedy = greedy_for(source, target)
        compiled = compile_source(source, target)
        opt = info.program.optimize().utility
        env = dict(info.consts)
        env.update(compiled.symbol_values)
        assert eval_static(opt, env) >= greedy.utility_value(opt, info.consts)
