"""Compiler-option behavior tests."""

import dataclasses

import pytest

from repro.core import CompileOptions, LayoutOptions, compile_source
from repro.pisa.resources import small_target
from repro.structures import CMS_SOURCE


class TestHashUnitLimits:
    SOURCE = """
    symbolic int n;
    struct metadata {
        bit<32> fkey;
        bit<32>[n] h;
    }
    register<bit<8>>[16][n] marks;
    action probe()[int i] {
        meta.h[i] = hash(i, meta.fkey);
        marks[i].write(meta.h[i], 1);
    }
    control Ingress(inout metadata meta) {
        apply { for (i < n) { probe()[i]; } }
    }
    optimize n;
    """

    def test_hash_units_cap_per_stage(self):
        # 1 hash unit per stage, 3 stages: at most 3 probes placeable.
        target = dataclasses.replace(
            small_target(stages=3, memory_kb=16), hash_units_per_stage=1
        )
        compiled = compile_source(self.SOURCE, target)
        assert compiled.symbol_values["n"] <= 3
        for stage in range(target.stages):
            hashes = sum(
                u.instance.cost.hash_ops for u in compiled.units_in_stage(stage)
            )
            assert hashes <= 1

    def test_disabling_the_limit_allows_more(self):
        target = dataclasses.replace(
            small_target(stages=3, memory_kb=16), hash_units_per_stage=1
        )
        relaxed = compile_source(
            self.SOURCE,
            target,
            options=CompileOptions(
                layout=LayoutOptions(hash_unit_limits=False)
            ),
        )
        strict = compile_source(self.SOURCE, target)
        assert relaxed.symbol_values["n"] >= strict.symbol_values["n"]


class TestStageBias:
    def test_bias_prefers_early_stages(self):
        target = small_target(stages=8, memory_kb=4)
        compiled = compile_source(CMS_SOURCE, target)
        # With a tiny memory budget the structures don't need the whole
        # pipeline; the stage bias should keep the layout at the front.
        assert min(compiled.stages_used()) == 0

    def test_determinism_across_runs(self):
        target = small_target(stages=6, memory_kb=16)
        a = compile_source(CMS_SOURCE, target)
        b = compile_source(CMS_SOURCE, target)
        assert a.symbol_values == b.symbol_values
        assert [(u.label, u.stage) for u in a.units] == [
            (u.label, u.stage) for u in b.units
        ]


class TestExclusionAsPrecedenceMode:
    def test_compiles_and_is_no_better(self):
        from repro.analysis.unroll import UnrollOptions

        target = small_target(stages=6, memory_kb=32)
        full = compile_source(CMS_SOURCE, target)
        degraded = compile_source(
            CMS_SOURCE,
            target,
            options=CompileOptions(
                layout=LayoutOptions(exclusion_as_precedence=True),
                unroll=UnrollOptions(exclusion_as_precedence=True),
            ),
        )
        assert degraded.solution.objective <= full.solution.objective + 1e-6
