"""Concrete-P4 code generation tests."""

import pytest

from repro.core import compile_source
from repro.eval.fig11_apps import count_loc
from repro.lang import check_program, parse_program
from repro.pisa.resources import small_target
from repro.structures import CMS_SOURCE


@pytest.fixture(scope="module")
def compiled():
    return compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))


class TestGeneratedP4:
    def test_elastic_metadata_flattened(self, compiled):
        rows = compiled.symbol_values["cms_rows"]
        for i in range(rows):
            assert f"bit<32> cms_index_{i};" in compiled.p4_source
        assert f"cms_index_{rows};" not in compiled.p4_source

    def test_registers_concrete_and_annotated(self, compiled):
        cols = compiled.symbol_values["cms_cols"]
        assert f"register<bit<32>>[{cols}] cms_sketch_0;" in compiled.p4_source
        assert "@stage(" in compiled.p4_source

    def test_actions_specialized_per_iteration(self, compiled):
        rows = compiled.symbol_values["cms_rows"]
        for i in range(rows):
            assert f"action cms_incr_{i}()" in compiled.p4_source

    def test_loops_fully_unrolled(self, compiled):
        assert "for (" not in compiled.p4_source
        assert "symbolic int" not in compiled.p4_source

    def test_guards_preserved(self, compiled):
        assert "if (meta.cms_count_0 < meta.cms_min)" in compiled.p4_source

    def test_stage_order_in_apply(self, compiled):
        # Units appear grouped by stage markers in increasing order.
        markers = [
            int(line.split("stage")[1].strip().rstrip("-").strip())
            for line in compiled.p4_source.splitlines()
            if line.strip().startswith("// ---- stage")
        ]
        assert markers == sorted(markers)

    def test_generated_p4_reparses_and_checks(self, compiled):
        program = parse_program(compiled.p4_source, "generated.p4")
        info = check_program(program)
        assert not info.symbolics  # fully concrete
        assert "Ingress" in info.controls

    def test_loc_reduction_vs_source(self, compiled):
        # The elastic source must be shorter than the unrolled output.
        assert count_loc(CMS_SOURCE) < count_loc(compiled.p4_source)


class TestTablePassthrough:
    def test_tables_render(self):
        from repro.apps import netcache_source
        from repro.pisa.resources import tofino

        compiled = compile_source(netcache_source(), tofino())
        assert "table route {" in compiled.p4_source
        assert "meta.dst : exact;" in compiled.p4_source
        assert "route.apply();" in compiled.p4_source
        # Generated NetCache re-parses too.
        check_program(parse_program(compiled.p4_source, "netcache.p4"))
