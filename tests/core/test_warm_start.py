"""Warm-started branch-and-bound ≡ cold solve (differential).

Seeding the solver's incumbent must never change the answer, only the
work to reach it. Objectives are compared with slack far below any real
utility step (>= 0.4 here) but above the ~1e-4 noise the LP relaxation
carries at these objective scales: stage-bias-level (1e-5) tie-breaks
can legitimately differ between runs.

The app set is the library modules the from-scratch ``bb`` backend
solves in under a second on the small 8-stage target (the others need
the HiGHS backend, which has no incumbent-seeding API).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import CompileOptions, compile_source
from repro.pisa import small_target
from repro.structures import LIBRARY_SOURCES

#: Library apps where bb terminates quickly (< 1 s cold).
BB_APPS = ["bloom", "cms", "idtable"]


@pytest.fixture(scope="module")
def target():
    return small_target(stages=8, memory_kb=64)


def _bb(source, target, name, warm_start=None):
    return compile_source(
        source, target,
        options=CompileOptions(backend="bb", warm_start=warm_start),
        source_name=name,
    )


class TestWarmStartDifferential:
    @pytest.mark.parametrize("name", BB_APPS)
    def test_same_answer_as_cold(self, name, target):
        source = LIBRARY_SOURCES[name]
        cold = _bb(source, target, name)
        warm = _bb(source, target, name, warm_start=cold.solution)
        assert warm.symbol_values == cold.symbol_values
        assert warm.solution.objective == pytest.approx(
            cold.solution.objective, abs=1e-3
        )
        # The seed is the previous optimum: the search can only confirm
        # it, never beat it, so warm never explores more than cold.
        assert warm.solution.nodes_explored <= cold.solution.nodes_explored

    def test_incumbent_provenance(self, target):
        source = LIBRARY_SOURCES["cms"]
        cold = _bb(source, target, "cms")
        warm = _bb(source, target, "cms", warm_start=cold.solution)
        assert warm.solution.incumbent_source == "warm-start"
        assert cold.solution.incumbent_source in ("search", "rounding")

    def test_warm_start_across_target_change(self, target):
        # The elastic-runtime case: the old layout seeds the re-solve
        # after a memory cut. The old sizes exceed the new bounds; the
        # encoder clamps them, and the answer matches a cold solve.
        source = LIBRARY_SOURCES["cms"]
        big = _bb(source, target, "cms")
        cut = dataclasses.replace(
            target, memory_bits_per_stage=target.memory_bits_per_stage // 2
        )
        cold_cut = _bb(source, cut, "cms")
        warm_cut = _bb(source, cut, "cms", warm_start=big.solution)
        assert warm_cut.symbol_values == cold_cut.symbol_values
        assert warm_cut.solution.objective == pytest.approx(
            cold_cut.solution.objective, abs=1e-3
        )

    def test_foreign_solution_ignored(self, target):
        # A warm start from a different program cannot be encoded onto
        # this model; the solver quietly falls back to an unseeded (or
        # greedy-seeded) search and still reaches the cold answer.
        other = _bb(LIBRARY_SOURCES["bloom"], target, "bloom")
        cold = _bb(LIBRARY_SOURCES["cms"], target, "cms")
        warm = _bb(LIBRARY_SOURCES["cms"], target, "cms",
                   warm_start=other.solution)
        assert warm.symbol_values == cold.symbol_values
        assert warm.solution.objective == pytest.approx(
            cold.solution.objective, abs=1e-3
        )

    def test_scipy_accepts_and_ignores_warm_start(self, target):
        # Backend interchangeability: passing a warm start to the HiGHS
        # backend is a no-op, not an error.
        source = LIBRARY_SOURCES["cms"]
        cold = compile_source(
            source, target, options=CompileOptions(backend="scipy"),
            source_name="cms",
        )
        warm = compile_source(
            source, target,
            options=CompileOptions(backend="scipy", warm_start=cold.solution),
            source_name="cms",
        )
        assert warm.symbol_values == cold.symbol_values
