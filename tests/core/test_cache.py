"""CompileCache correctness: tiered hits, misses, invalidation, LRU.

The cache key structure is the contract under test: a byte-identical
(source, target, options) recompile hits the layout tier outright; a
target change falls back to the front-end tiers (parse/IR reuse, bounds
and ILP re-run); any source-text change — including an edited utility,
which lives in the source — misses everything.
"""

import dataclasses

import pytest

from repro.core import (
    CompileCache,
    CompileOptions,
    compile_source,
    source_fingerprint,
)
from repro.pisa import small_target
from repro.runtime import TelemetryBus
from repro.structures import CMS_SOURCE


@pytest.fixture()
def cache():
    return CompileCache()


@pytest.fixture()
def target():
    return small_target(stages=8, memory_kb=64)


def _compile(source, target, cache, **opts):
    return compile_source(
        source, target,
        options=CompileOptions(backend="scipy", cache=cache, **opts),
        source_name="cms",
    )


class TestLayoutTier:
    def test_identical_recompile_hits(self, cache, target):
        cold = _compile(CMS_SOURCE, target, cache)
        warm = _compile(CMS_SOURCE, target, cache)
        assert warm.stats.layout_cached
        assert not cold.stats.layout_cached   # original stats not mutated
        assert warm.symbol_values == cold.symbol_values
        assert warm.p4_source == cold.p4_source
        assert cache.stats.layout_hits == 1
        assert cache.stats.layout_misses == 1

    def test_target_change_misses_layout_hits_frontend(self, cache, target):
        _compile(CMS_SOURCE, target, cache)
        smaller = dataclasses.replace(
            target, memory_bits_per_stage=target.memory_bits_per_stage // 2
        )
        cut = _compile(CMS_SOURCE, smaller, cache)
        assert not cut.stats.layout_cached
        assert cut.stats.frontend_cached       # parse/IR reused
        assert not cut.stats.bounds_cached     # bounds depend on the target
        assert cache.stats.layout_hits == 0
        assert cache.stats.frontend_hits == 1

    def test_source_change_misses_everything(self, cache, target):
        _compile(CMS_SOURCE, target, cache)
        # The utility lives in the source text, so editing it is a
        # source change — a different fingerprint, nothing reused.
        edited = CMS_SOURCE.replace(
            "optimize cms_rows * cms_cols;", "optimize cms_cols;"
        )
        assert edited != CMS_SOURCE
        assert source_fingerprint(edited) != source_fingerprint(CMS_SOURCE)
        other = _compile(edited, target, cache)
        assert not other.stats.layout_cached
        assert not other.stats.frontend_cached
        assert cache.stats.frontend_hits == 0
        assert cache.stats.layout_hits == 0

    def test_solver_options_are_part_of_the_key(self, cache, target):
        _compile(CMS_SOURCE, target, cache)
        limited = _compile(CMS_SOURCE, target, cache, time_limit=30.0)
        assert not limited.stats.layout_cached  # different time limit
        assert limited.stats.frontend_cached
        again = _compile(CMS_SOURCE, target, cache, time_limit=30.0)
        assert again.stats.layout_cached


class TestInvalidation:
    def test_invalidate_source_forces_recompile(self, cache, target):
        _compile(CMS_SOURCE, target, cache)
        cache.invalidate(CMS_SOURCE)
        assert cache.stats.invalidations == 1
        recompiled = _compile(CMS_SOURCE, target, cache)
        assert not recompiled.stats.layout_cached
        assert not recompiled.stats.frontend_cached

    def test_clear_drops_everything(self, cache, target):
        _compile(CMS_SOURCE, target, cache)
        cache.clear()
        snap = cache.snapshot()
        assert snap["frontend_entries"] == 0
        assert snap["bounds_entries"] == 0
        assert snap["layout_entries"] == 0


class TestCapacity:
    def test_zero_capacity_disables_layout_tier(self, target):
        cache = CompileCache(max_layouts=0)
        _compile(CMS_SOURCE, target, cache)
        warm = _compile(CMS_SOURCE, target, cache)
        assert not warm.stats.layout_cached    # always re-solved...
        assert warm.stats.frontend_cached      # ...but the front end hits

    def test_lru_eviction(self, target):
        cache = CompileCache(max_layouts=1)
        smaller = dataclasses.replace(
            target, memory_bits_per_stage=target.memory_bits_per_stage // 2
        )
        _compile(CMS_SOURCE, target, cache)
        _compile(CMS_SOURCE, smaller, cache)   # evicts the first layout
        assert cache.stats.evictions == 1
        assert cache.snapshot()["layout_entries"] == 1
        refetch = _compile(CMS_SOURCE, smaller, cache)
        assert refetch.stats.layout_cached     # the survivor is the MRU


class TestTelemetry:
    def test_emit_exports_counters(self, cache, target):
        _compile(CMS_SOURCE, target, cache)
        _compile(CMS_SOURCE, target, cache)
        bus = TelemetryBus()
        cache.emit(bus, cause="test")
        events = bus.events_of("compile_cache")
        assert len(events) == 1
        assert events[0].data["layout_hits"] == 1
        assert events[0].data["cause"] == "test"
