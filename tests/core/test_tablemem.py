"""Table-memory accounting tests (§4.4 extension)."""

import dataclasses

import pytest

from repro.core import CompileOptions, LayoutOptions, compile_source
from repro.core.tablemem import table_memory_bits
from repro.lang import check_program, parse_program
from repro.pisa.resources import small_target

SOURCE = """
struct metadata {
    bit<32> dst;
    bit<16> vlan;
    bit<9> egress;
}
action set_port(bit<9> port) {
    meta.egress = port;
}
table route {
    key = {
        meta.dst : exact;
        meta.vlan : ternary;
    }
    actions = { set_port; NoAction; }
    size = 256;
    default_action = NoAction;
}
control Ingress(inout metadata meta) {
    apply { route.apply(); }
}
"""


class TestTableMemoryBits:
    def test_width_computation(self):
        info = check_program(parse_program(SOURCE))
        bits = table_memory_bits(info.tables["route"], info)
        # 256 entries x (32 exact + 2*16 ternary + 32 overhead).
        assert bits == 256 * (32 + 32 + 32)

    def test_default_size_used_when_missing(self):
        source = SOURCE.replace("    size = 256;\n", "")
        info = check_program(parse_program(source))
        bits = table_memory_bits(info.tables["route"], info)
        assert bits == 1024 * 96


class TestLayoutIntegration:
    def test_table_memory_counted_against_stage(self):
        # A stage holds 16 kb; the table needs 24 kb -> infeasible with
        # accounting on, feasible with it off.
        from repro.core import LayoutInfeasibleError

        target = small_target(stages=1, memory_kb=16)
        with pytest.raises(LayoutInfeasibleError):
            compile_source(SOURCE, target)
        relaxed = compile_source(
            SOURCE,
            target,
            options=CompileOptions(layout=LayoutOptions(table_memory=False)),
        )
        assert any(u.instance.table for u in relaxed.units)

    def test_table_and_registers_share_stage_budget(self):
        source = SOURCE.replace(
            "control Ingress(inout metadata meta) {\n    apply { route.apply(); }\n}",
            """
symbolic int n;
register<bit<32>>[n] counter;
action count() {
    counter.add(meta.dst, 1);
}
control Ingress(inout metadata meta) {
    apply {
        route.apply();
        count();
    }
}

optimize n;
""",
        )
        target = small_target(stages=1, memory_kb=32)  # 32768 bits
        compiled = compile_source(source, target)
        cells = compiled.symbol_values["n"]
        # The table takes 256*96 = 24576 bits, leaving 8192 for counters.
        assert cells == (32 * 1024 - 24576) // 32
