"""CLI tests (driving main() in-process)."""

import pytest

from repro.cli import main
from repro.structures import CMS_SOURCE


@pytest.fixture()
def cms_file(tmp_path):
    path = tmp_path / "cms.p4all"
    path.write_text(CMS_SOURCE)
    return path


class TestCompileCommand:
    def test_compile_to_stdout(self, cms_file, capsys):
        code = main([
            "compile", str(cms_file), "--target", "small",
        ])
        assert code == 0
        out, err = capsys.readouterr()
        assert "register<bit<32>>" in out
        assert "cms_rows=" in err

    def test_compile_to_file_with_report(self, cms_file, tmp_path, capsys):
        out_path = tmp_path / "out.p4"
        code = main([
            "compile", str(cms_file), "--target", "small",
            "-o", str(out_path), "--report",
        ])
        assert code == 0
        assert out_path.exists()
        _out, err = capsys.readouterr()
        assert "stage 0" in err

    def test_target_overrides(self, cms_file, capsys):
        code = main([
            "compile", str(cms_file), "--target", "toy3", "--stages", "5",
        ])
        assert code == 0

    def test_error_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.p4all"
        bad.write_text("symbolic int ;")
        code = main(["compile", str(bad), "--target", "small"])
        assert code == 1
        _out, err = capsys.readouterr()
        assert "error" in err


class TestOtherCommands:
    def test_bounds(self, cms_file, capsys):
        assert main(["bounds", str(cms_file), "--target", "toy3"]) == 0
        out, _ = capsys.readouterr()
        assert "cms_rows: bound 2" in out

    def test_targets(self, capsys):
        assert main(["targets"]) == 0
        out, _ = capsys.readouterr()
        assert "tofino" in out and "toy3" in out

    def test_library_list_and_dump(self, capsys):
        assert main(["library"]) == 0
        out, _ = capsys.readouterr()
        assert "cms" in out and "bloom" in out
        assert main(["library", "cms"]) == 0
        out, _ = capsys.readouterr()
        assert "symbolic int cms_rows;" in out

    def test_library_unknown(self, capsys):
        assert main(["library", "nope"]) == 2
