"""CLI tests (driving main() in-process)."""

import pytest

from repro.cli import main
from repro.structures import CMS_SOURCE


@pytest.fixture()
def cms_file(tmp_path):
    path = tmp_path / "cms.p4all"
    path.write_text(CMS_SOURCE)
    return path


class TestCompileCommand:
    def test_compile_to_stdout(self, cms_file, capsys):
        code = main([
            "compile", str(cms_file), "--target", "small",
        ])
        assert code == 0
        out, err = capsys.readouterr()
        assert "register<bit<32>>" in out
        assert "cms_rows=" in err

    def test_compile_to_file_with_report(self, cms_file, tmp_path, capsys):
        out_path = tmp_path / "out.p4"
        code = main([
            "compile", str(cms_file), "--target", "small",
            "-o", str(out_path), "--report",
        ])
        assert code == 0
        assert out_path.exists()
        _out, err = capsys.readouterr()
        assert "stage 0" in err

    def test_target_overrides(self, cms_file, capsys):
        code = main([
            "compile", str(cms_file), "--target", "toy3", "--stages", "5",
        ])
        assert code == 0

    def test_error_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.p4all"
        bad.write_text("symbolic int ;")
        code = main(["compile", str(bad), "--target", "small"])
        assert code == 1
        _out, err = capsys.readouterr()
        assert "error" in err


class TestVerifyCommand:
    @pytest.fixture()
    def leaky_pair(self, tmp_path):
        from tests.property.generators import (
            leaky_reader_source,
            writer_module_source,
        )

        wr = tmp_path / "wr.p4all"
        wr.write_text(writer_module_source("wr"))
        rd = tmp_path / "rd.p4all"
        rd.write_text(leaky_reader_source("rd", "wr"))
        return wr, rd

    def test_verify_netcache_clean(self, capsys):
        code = main(["verify", "--netcache"])
        assert code == 0
        out, _err = capsys.readouterr()
        assert "kv" in out and "cms" in out
        assert "isolation verified" in out

    def test_verify_flags_leak_with_witness(self, leaky_pair, capsys):
        wr, rd = leaky_pair
        code = main([
            "verify", str(wr), str(rd), "--stages", "6",
            "--memory", "65536",
        ])
        assert code == 1
        out, _err = capsys.readouterr()
        assert "wr -> rd" in out
        assert "witness" in out and "wr_reg" in out

    def test_verify_allow_flag_reports_but_passes(self, leaky_pair, capsys):
        wr, rd = leaky_pair
        code = main([
            "verify", str(wr), str(rd), "--stages", "6",
            "--memory", "65536", "--allow-cross-module-state",
        ])
        assert code == 0
        out, err = capsys.readouterr()
        assert "cross-module flows" in out
        assert "allowed" in err

    def test_verify_without_input_is_usage_error(self, capsys):
        assert main(["verify"]) == 2


class TestOtherCommands:
    def test_bounds(self, cms_file, capsys):
        assert main(["bounds", str(cms_file), "--target", "toy3"]) == 0
        out, _ = capsys.readouterr()
        assert "cms_rows: bound 2" in out

    def test_targets(self, capsys):
        assert main(["targets"]) == 0
        out, _ = capsys.readouterr()
        assert "tofino" in out and "toy3" in out

    def test_library_list_and_dump(self, capsys):
        assert main(["library"]) == 0
        out, _ = capsys.readouterr()
        assert "cms" in out and "bloom" in out
        assert main(["library", "cms"]) == 0
        out, _ = capsys.readouterr()
        assert "symbolic int cms_rows;" in out

    def test_library_unknown(self, capsys):
        assert main(["library", "nope"]) == 2


class TestSolverFlags:
    def test_backend_choices_rejected(self, cms_file, capsys):
        with pytest.raises(SystemExit):
            main(["compile", str(cms_file), "--backend", "cplex"])

    def test_greedy_backend_compiles(self, cms_file, capsys):
        code = main([
            "compile", str(cms_file), "--target", "small",
            "--backend", "greedy",
        ])
        assert code == 0
        out, _err = capsys.readouterr()
        assert "register<bit<32>>" in out

    def test_tiny_time_limit_reports_structured_error(self, cms_file, capsys):
        code = main([
            "compile", str(cms_file), "--target", "small",
            "--time-limit", "0.00001",
        ])
        assert code == 1
        _out, err = capsys.readouterr()
        assert "time limit" in err

    def test_every_compiling_subcommand_accepts_solver_flags(self, cms_file):
        from repro.cli import build_parser

        parser = build_parser()
        for sub in ("compile", "bounds", "graph"):
            args = parser.parse_args(
                [sub, str(cms_file), "--backend", "bb", "--time-limit", "2"]
            )
            assert args.backend == "bb" and args.time_limit == 2.0
        args = parser.parse_args(["run", "--backend", "greedy"])
        assert args.backend == "greedy"


class TestRunCommand:
    def test_run_no_cut_smoke(self, capsys, tmp_path):
        json_path = tmp_path / "report.json"
        code = main([
            "run", "--stages", "6", "--memory", "65536",
            "--packets", "3000", "--window", "300", "--seed", "7",
            "--no-cut", "--json", str(json_path),
        ])
        assert code == 0
        out, _err = capsys.readouterr()
        assert "processed 3000 packets" in out
        assert "final layout" in out

        import json

        report = json.loads(json_path.read_text())
        assert report["packets"] == 3000
        assert report["reconfigs"] == []
        assert len(report["timeline"]) == 10

    def test_run_events_jsonl(self, capsys, tmp_path):
        import json

        events_path = tmp_path / "events.jsonl"
        code = main([
            "run", "--stages", "6", "--memory", "65536",
            "--packets", "1000", "--window", "500", "--no-cut",
            "--events", str(events_path),
        ])
        assert code == 0
        kinds = [json.loads(line)["kind"]
                 for line in events_path.read_text().strip().splitlines()]
        assert "configured" in kinds
        assert kinds.count("window") == 2
