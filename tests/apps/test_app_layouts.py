"""Cross-application layout invariants on the full Tofino-like target.

These compile each application once at full scale and assert the
structural facts the harnesses and benchmarks rely on.
"""

import pytest

from repro.apps import (
    conquest_source,
    netcache_source,
    precision_source,
    sketchlearn_source,
)
from repro.core import compile_source, validate_layout
from repro.pisa import Pipeline
from repro.pisa.resources import tofino


@pytest.fixture(scope="module")
def compiled_apps():
    target = tofino()
    return {
        name: compile_source(source, target, source_name=name)
        for name, source in (
            ("netcache", netcache_source()),
            ("sketchlearn", sketchlearn_source()),
            ("precision", precision_source()),
            ("conquest", conquest_source()),
        )
    }


class TestAllApps:
    def test_layouts_validate(self, compiled_apps):
        for compiled in compiled_apps.values():
            validate_layout(compiled)

    def test_pipelines_load(self, compiled_apps):
        for compiled in compiled_apps.values():
            Pipeline(compiled)

    def test_generated_p4_reparses(self, compiled_apps):
        from repro.lang import check_program, parse_program

        for name, compiled in compiled_apps.items():
            check_program(parse_program(compiled.p4_source, f"{name}.p4"))

    def test_every_app_stretches_something(self, compiled_apps):
        for name, compiled in compiled_apps.items():
            assert compiled.total_register_bits() > 1 << 20, name

    def test_netcache_specifics(self, compiled_apps):
        compiled = compiled_apps["netcache"]
        syms = compiled.symbol_values
        assert 1 <= syms["cms_rows"] <= 4
        assert syms["kv_rows"] >= 1
        # Both structures and the routing table placed.
        assert any(u.instance.table == "route" for u in compiled.units)

    def test_sketchlearn_levels_all_placed(self, compiled_apps):
        compiled = compiled_apps["sketchlearn"]
        levels = [u for u in compiled.units if u.instance.name.startswith("sl_count")]
        assert len(levels) == 9

    def test_precision_rows_spread(self, compiled_apps):
        compiled = compiled_apps["precision"]
        rows = compiled.symbol_values["ht_rows"]
        stages = {
            u.stage for u in compiled.units if u.instance.name == "ht_probe"
        }
        # Each probe touches two registers (2 stateful ALUs); with F = 4
        # at most two probes share a stage.
        assert len(stages) >= rows / 2

    def test_conquest_snapshots_isolated(self, compiled_apps):
        compiled = compiled_apps["conquest"]
        snap_regs = [r for r in compiled.registers if r.family == "cq_snap"]
        assert len(snap_regs) == 4
        assert len({r.cells for r in snap_regs}) == 1
