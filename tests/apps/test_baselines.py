"""Baseline/source file generation tests."""

from repro.apps.baselines import write_app_sources, write_baselines
from repro.eval.fig11_apps import count_loc
from repro.lang import check_program, parse_program


class TestGeneration:
    def test_app_sources_written_and_parse(self, tmp_path):
        paths = write_app_sources(tmp_path)
        assert {p.name for p in paths} == {
            "netcache.p4all", "sketchlearn.p4all",
            "precision.p4all", "conquest.p4all",
        }
        for path in paths:
            check_program(parse_program(path.read_text(), str(path)))

    def test_baselines_written_and_longer(self, tmp_path, mini_tofino):
        sources = {p.stem: p for p in write_app_sources(tmp_path / "src")}
        baselines = write_baselines(tmp_path / "p4", target=mini_tofino)
        assert len(baselines) == 4
        for baseline in baselines:
            elastic = sources[baseline.stem].read_text()
            concrete = baseline.read_text()
            # The unrolled baseline re-parses and is longer than the
            # elastic source.
            check_program(parse_program(concrete, str(baseline)))
            assert count_loc(concrete) > count_loc(elastic)
