"""ConQuest application tests."""

import pytest

from repro.apps import ConQuestApp, conquest_source
from repro.lang import check_program, parse_program


class TestSource:
    def test_parses_and_checks(self):
        info = check_program(parse_program(conquest_source()))
        assert "cq_cols" in info.symbolics
        assert info.consts["cq_snaps"] == 4


class TestCompiledApp:
    @pytest.fixture(scope="class")
    def app(self, mini_tofino):
        return ConQuestApp(mini_tofino)

    def test_estimate_grows_within_recent_windows(self, app):
        flow = 7
        # Window 0: flow sends 10 packets — estimate reads *other*
        # windows, so it stays 0 during the first window.
        for _ in range(10):
            est = app.process(flow, window=0)
        assert est == 0
        # Window 1: the flow's window-0 traffic is now part of the
        # estimate.
        est = app.process(flow, window=1)
        assert est == 10

    def test_rotation_cleans_old_snapshot(self, app):
        flow = 9
        base = app._last_window or 0
        for w in range(base + 1, base + 1 + app.snapshots):
            app.process(flow, window=w)
        # After a full rotation the snapshot for the original window has
        # been cleaned: the estimate only covers the last C-1 windows.
        est = app.process(flow, window=base + 1 + app.snapshots)
        assert est <= app.snapshots - 1

    def test_byte_amounts_accumulate(self, mini_tofino):
        app = ConQuestApp(mini_tofino)
        app.process(3, window=0, amount=500)
        app.process(3, window=0, amount=250)
        est = app.process(3, window=1, amount=1)
        assert est == 750
