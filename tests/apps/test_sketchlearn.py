"""SketchLearn application tests."""

import numpy as np
import pytest

from repro.apps import SketchLearnApp, extract_large_flows, sketchlearn_source
from repro.lang import check_program, parse_program
from repro.structures import HierarchicalSketch


class TestSource:
    def test_parses_and_checks(self):
        info = check_program(parse_program(sketchlearn_source()))
        assert "sl_cols" in info.symbolics
        assert "sl_lvl" in info.registers


class TestExtraction:
    def test_dominant_flow_extracted_with_count(self):
        sketch = HierarchicalSketch(key_bits=8, cols=2048)
        heavy, light_universe = 0b10110101, 200
        rng = np.random.default_rng(51)
        for _ in range(500):
            sketch.update(heavy)
        for key in rng.integers(1, light_universe, size=500):
            sketch.update(int(key))
        found = extract_large_flows(sketch, [heavy], theta=0.05)
        assert heavy in found
        assert found[heavy] >= 500

    def test_small_flows_not_extracted(self):
        sketch = HierarchicalSketch(key_bits=8, cols=2048)
        rng = np.random.default_rng(52)
        for key in rng.integers(1, 250, size=2000):
            sketch.update(int(key))
        # No flow holds >= 20% of traffic.
        found = extract_large_flows(sketch, list(range(1, 250)), theta=0.2)
        assert found == {}

    def test_empty_sketch(self):
        sketch = HierarchicalSketch(key_bits=4, cols=64)
        assert extract_large_flows(sketch, [1, 2, 3]) == {}


class TestCompiledApp:
    @pytest.fixture(scope="class")
    def app(self, mini_tofino):
        return SketchLearnApp(mini_tofino)

    def test_columns_stretched(self, app):
        assert app.cols >= 128

    def test_pipeline_extraction_end_to_end(self, app):
        heavy = 0b1100_1010
        rng = np.random.default_rng(53)
        trace = [heavy] * 400 + [int(k) for k in rng.integers(1, 200, size=400)]
        rng.shuffle(trace := np.array(trace))
        app.run_trace(trace)
        found = app.extract([heavy], theta=0.1)
        assert heavy in found

    def test_reference_view_matches_registers(self, app):
        ref = app.as_reference()
        assert ref.packets == app.packets
        assert np.array_equal(ref.levels[0], app.level_counts(0))
