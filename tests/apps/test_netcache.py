"""NetCache application tests."""

import pytest

from repro.apps import NetCacheApp, netcache_source, simulate_netcache
from repro.lang import check_program, parse_program
from repro.workloads import ZipfGenerator


class TestSource:
    def test_parses_and_checks(self):
        info = check_program(parse_program(netcache_source()))
        assert {"cms_rows", "cms_cols", "kv_rows", "kv_cols"} <= set(info.symbolics)
        assert "route" in info.tables

    def test_kv_floor_assume_rendered(self):
        source = netcache_source(kv_min_total_bits=8 * (1 << 20))
        assert "assume kv_rows * kv_cols * 160 >= 8388608;" in source

    def test_no_routing_variant(self):
        source = netcache_source(with_routing=False)
        assert "table route" not in source


@pytest.fixture(scope="module")
def app(mini_tofino):
    return NetCacheApp(mini_tofino, hot_threshold=4)


class TestCompiledApp:
    def test_both_structures_placed(self, app):
        assert app.cms_rows >= 1 and app.cms_cols > 0
        assert app.kv_rows >= 1 and app.kv_cols > 0

    def test_hot_keys_end_up_cached(self, app):
        gen = ZipfGenerator(2000, alpha=1.2, seed=31)
        stats = app.run_trace(gen.sample(4000))
        assert stats.insertions > 0
        assert stats.hits > 0
        # The hottest key must be cached by the end of a skewed trace.
        hottest = int(gen.hottest(1)[0])
        assert hottest in app._cached_keys

    def test_hit_rate_beats_no_cache_baseline(self, app):
        # Continuing the same app; hit rate over a fresh skewed trace
        # with a warm cache must be clearly positive.
        gen = ZipfGenerator(2000, alpha=1.2, seed=32)
        stats = app.run_trace(gen.sample(3000))
        assert stats.hit_rate > 0.2


class TestFastSimulation:
    def test_matches_expected_shape(self):
        gen = ZipfGenerator(5000, alpha=1.1, seed=33)
        keys = gen.sample(20_000)
        tiny = simulate_netcache(2, 512, 2, 16, keys, hot_threshold=8)
        big = simulate_netcache(2, 512, 4, 2048, keys, hot_threshold=8)
        # More cache capacity -> strictly better hit rate on a skewed trace.
        assert big.hit_rate > tiny.hit_rate

    def test_degenerate_configs_yield_zero(self):
        keys = [1, 2, 3]
        assert simulate_netcache(0, 0, 2, 16, keys).hit_rate == 0.0
        assert simulate_netcache(2, 16, 0, 0, keys).hit_rate == 0.0

    def test_accurate_sketch_beats_degenerate_sketch(self):
        # Evictions are driven by sketch reports: a one-cell sketch makes
        # every key look equally hot, so replacement can never identify a
        # colder victim and the cache freezes on its first occupants.
        gen = ZipfGenerator(5000, alpha=1.05, seed=34)
        keys = gen.sample(20_000)
        good = simulate_netcache(4, 4096, 2, 64, keys, hot_threshold=2)
        degenerate = simulate_netcache(1, 1, 2, 64, keys, hot_threshold=2)
        assert good.hit_rate >= degenerate.hit_rate
        assert good.evictions > 0

    def test_eviction_follows_estimates(self):
        # A capacity-1 cache with two keys: after the second key clearly
        # dominates, it must displace the first.
        keys = [1, 2] + [2] * 30
        stats = simulate_netcache(2, 1024, 1, 1, keys, hot_threshold=1)
        assert stats.evictions >= 1
        # Key 2 ends up cached: its later requests hit.
        assert stats.hits > 20

    def test_pipeline_and_reference_agree_roughly(self, app):
        # Same policy on the compiled pipeline and the reference
        # structures at identical sizes and seeds: hit rates must be
        # identical given identical hashing — run a modest trace.
        fresh = NetCacheApp(app.compiled.target, hot_threshold=4)
        gen = ZipfGenerator(500, alpha=1.2, seed=35)
        keys = [int(k) for k in gen.sample(1500)]
        pipeline_stats = fresh.run_trace(keys)
        ref_stats = simulate_netcache(
            fresh.cms_rows, fresh.cms_cols, fresh.kv_rows, fresh.kv_cols,
            keys, hot_threshold=4,
        )
        assert pipeline_stats.hits == ref_stats.hits
        assert pipeline_stats.insertions == ref_stats.insertions
