"""PRECISION application tests."""

import pytest

from repro.apps import PrecisionApp, precision_source, simulate_precision
from repro.lang import check_program, parse_program
from repro.workloads import synthesize_trace


class TestSource:
    def test_parses_and_checks(self):
        info = check_program(parse_program(precision_source()))
        assert {"ht_rows", "ht_cols"} <= set(info.symbolics)


@pytest.fixture(scope="module")
def app(mini_tofino):
    return PrecisionApp(mini_tofino, seed=41)


class TestCompiledApp:
    def test_table_dimensions(self, app):
        assert app.rows >= 1 and app.cols > 0

    def test_heavy_hitters_recall(self, app):
        trace = synthesize_trace(
            flows=300, mean_packets_per_flow=8, pareto_shape=1.1, seed=42
        )
        stats = app.run_trace(trace.flow_ids)
        assert stats.packets == len(trace)
        assert stats.installs > 0
        threshold = 100
        truth = trace.heavy_flows(threshold)
        if truth:
            # PRECISION detects at least 60% of heavy flows (its
            # advantage is exactly high recall under eviction pressure).
            detected = app.heavy_keys(threshold // 2)
            recall = len(truth & detected) / len(truth)
            assert recall >= 0.6

    def test_tracked_flow_counts_close_to_truth(self, app):
        # A very heavy flow's counter undercounts only by the packets
        # before its installation.
        trace = synthesize_trace(
            flows=50, mean_packets_per_flow=40, pareto_shape=1.1, seed=43
        )
        app.run_trace(trace.flow_ids)
        biggest = max(trace.flow_sizes, key=trace.flow_sizes.get)
        count = app.count_of(biggest)
        assert count > 0
        assert count <= trace.flow_sizes[biggest] * 2  # sanity (shared app state)


class TestFastSimulation:
    def test_recirculation_is_rare_for_tracked_flows(self):
        trace = synthesize_trace(
            flows=100, mean_packets_per_flow=30, pareto_shape=1.3, seed=44
        )
        _table, stats = simulate_precision(4, 512, trace.flow_ids, seed=45)
        # Probabilistic recirculation: a small fraction of packets.
        assert stats.recirculation_rate < 0.5
        assert stats.tracked_hits > 0

    def test_bigger_table_tracks_more(self):
        trace = synthesize_trace(
            flows=800, mean_packets_per_flow=12, pareto_shape=1.2, seed=46
        )
        _t1, small = simulate_precision(2, 64, trace.flow_ids, seed=47)
        _t2, large = simulate_precision(4, 2048, trace.flow_ids, seed=47)
        assert large.tracked_hits > small.tracked_hits
