"""App-test fixtures: compiled apps on a reduced Tofino-like target.

The reduced target keeps the Tofino's ALU/PHV profile but fewer stages
and less memory, so app compiles stay fast while exercising the same
layout machinery.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.pisa.resources import tofino


@pytest.fixture(scope="session")
def mini_tofino():
    return dataclasses.replace(
        tofino(),
        stages=6,
        memory_bits_per_stage=64 * 1024,
    )
