"""Shared fixtures.

Compilation fixtures are session-scoped: the compiler is deterministic,
so tests can share compiled artifacts safely (pipelines built from them
are per-test, since pipelines hold mutable register state).
"""

from __future__ import annotations

import pytest

from repro.core import CompiledProgram, compile_source
from repro.pisa import Pipeline, small_target, toy_three_stage
from repro.structures import CMS_SOURCE

try:  # hypothesis is a test-only dependency (see pyproject dev extras)
    from hypothesis import HealthCheck, settings as _hyp_settings

    # Registered at import time so `--hypothesis-profile=ci` resolves.
    # The CI verify-bench job runs the property suite under this profile:
    # more examples than the local default, no deadline flakiness.
    _hyp_settings.register_profile(
        "ci",
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
        derandomize=True,
    )
except ImportError:  # pragma: no cover
    pass


@pytest.fixture(scope="session")
def toy3():
    return toy_three_stage()


@pytest.fixture(scope="session")
def small8():
    """8-stage small target used across compile tests."""
    return small_target(stages=8, memory_kb=64)


@pytest.fixture(scope="session")
def compiled_cms(small8) -> CompiledProgram:
    """The standalone library CMS compiled for the small 8-stage target."""
    return compile_source(CMS_SOURCE, small8, source_name="cms")


@pytest.fixture()
def cms_pipeline(compiled_cms) -> Pipeline:
    """A fresh pipeline (clean registers) per test."""
    return Pipeline(compiled_cms)
