"""Telemetry bus tests."""

import json

from repro.runtime import TelemetryBus


class TestTelemetryBus:
    def test_emit_and_query(self):
        bus = TelemetryBus()
        bus.emit("window", packet_index=100, hit_rate=0.5)
        bus.emit("rollback", packet_index=200, error="boom")
        bus.emit("window", packet_index=300, hit_rate=0.6)
        assert len(bus) == 3
        assert [e.kind for e in bus.events] == ["window", "rollback", "window"]
        assert len(bus.events_of("window")) == 2
        assert bus.last_of("window").data["hit_rate"] == 0.6
        assert bus.last_of("missing") is None

    def test_sequence_is_monotone(self):
        bus = TelemetryBus()
        for _ in range(5):
            bus.emit("tick")
        assert [e.seq for e in bus.events] == list(range(5))

    def test_events_are_json_serializable(self):
        bus = TelemetryBus()
        event = bus.emit("migration", packet_index=1, kv_migrated=3,
                         notes=["a", "b"])
        decoded = json.loads(event.to_json())
        assert decoded["kind"] == "migration"
        assert decoded["kv_migrated"] == 3
        assert decoded["packet_index"] == 1

    def test_subscriber_sees_every_event(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.kind))
        bus.emit("a")
        bus.emit("b")
        assert seen == ["a", "b"]

    def test_jsonl_sink_streams(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = TelemetryBus(sink=path)
        bus.emit("a", x=1)
        bus.emit("b", y=2)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "b"

    def test_write_jsonl_dump(self, tmp_path):
        bus = TelemetryBus()
        bus.emit("a")
        bus.emit("b")
        path = tmp_path / "dump.jsonl"
        assert bus.write_jsonl(path) == 2
        assert len(path.read_text().strip().splitlines()) == 2

    def test_empty_bus_is_falsy_but_preserved(self):
        # Regression guard: an empty bus has len 0 (falsy), so consumers
        # must None-check instead of using `bus or TelemetryBus()`.
        bus = TelemetryBus()
        assert not bus
        from repro.runtime import ReconfigPlanner

        planner = ReconfigPlanner(telemetry=bus)
        assert planner.telemetry is bus
