"""Telemetry bus tests."""

import json

from repro.runtime import TelemetryBus


class TestTelemetryBus:
    def test_emit_and_query(self):
        bus = TelemetryBus()
        bus.emit("window", packet_index=100, hit_rate=0.5)
        bus.emit("rollback", packet_index=200, error="boom")
        bus.emit("window", packet_index=300, hit_rate=0.6)
        assert len(bus) == 3
        assert [e.kind for e in bus.events] == ["window", "rollback", "window"]
        assert len(bus.events_of("window")) == 2
        assert bus.last_of("window").data["hit_rate"] == 0.6
        assert bus.last_of("missing") is None

    def test_sequence_is_monotone(self):
        bus = TelemetryBus()
        for _ in range(5):
            bus.emit("tick")
        assert [e.seq for e in bus.events] == list(range(5))

    def test_events_are_json_serializable(self):
        bus = TelemetryBus()
        event = bus.emit("migration", packet_index=1, kv_migrated=3,
                         notes=["a", "b"])
        decoded = json.loads(event.to_json())
        assert decoded["kind"] == "migration"
        assert decoded["kv_migrated"] == 3
        assert decoded["packet_index"] == 1

    def test_subscriber_sees_every_event(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.kind))
        bus.emit("a")
        bus.emit("b")
        assert seen == ["a", "b"]

    def test_jsonl_sink_streams(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = TelemetryBus(sink=path)
        bus.emit("a", x=1)
        bus.emit("b", y=2)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "b"

    def test_write_jsonl_dump(self, tmp_path):
        bus = TelemetryBus()
        bus.emit("a")
        bus.emit("b")
        path = tmp_path / "dump.jsonl"
        assert bus.write_jsonl(path) == 2
        assert len(path.read_text().strip().splitlines()) == 2

    def test_sink_handle_is_held_open(self, tmp_path):
        # The sink is opened once (lazily) and reused — not reopened per
        # emit. Every event is flushed, so readers see it immediately.
        path = tmp_path / "events.jsonl"
        bus = TelemetryBus(sink=path)
        bus.emit("a")
        fh = bus._sink_fh
        assert fh is not None and not fh.closed
        bus.emit("b")
        assert bus._sink_fh is fh
        assert len(path.read_text().strip().splitlines()) == 2

    def test_close_and_reopen_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = TelemetryBus(sink=path)
        bus.emit("a")
        bus.close()
        assert bus._sink_fh is None
        bus.close()  # idempotent
        bus.emit("b")  # reopens, still appending
        bus.close()
        kinds = [json.loads(l)["kind"]
                 for l in path.read_text().strip().splitlines()]
        assert kinds == ["a", "b"]

    def test_context_manager_closes_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryBus(sink=path) as bus:
            bus.emit("a")
            fh = bus._sink_fh
        assert fh.closed and bus._sink_fh is None

    def test_no_sink_close_is_noop(self):
        bus = TelemetryBus()
        bus.emit("a")
        bus.close()  # nothing to close; must not raise

    def test_core_fields_survive_data_collisions(self):
        # Regression: `**data` used to spread last in to_dict(), letting
        # a payload key silently shadow seq/kind/packet_index/wall_time.
        bus = TelemetryBus()
        event = bus.emit("window", packet_index=7,
                         seq=999, wall_time=-1.0, hit_rate=0.5)
        # ``kind`` can't collide through emit() (it's the positional
        # parameter), so exercise that path on the dataclass directly.
        from repro.runtime.telemetry import TelemetryEvent

        direct = TelemetryEvent(seq=1, kind="window",
                                data={"kind": "fake"})
        assert direct.to_dict()["kind"] == "window"
        assert direct.to_dict()["data_kind"] == "fake"
        d = event.to_dict()
        assert d["kind"] == "window"
        assert d["seq"] == event.seq
        assert d["packet_index"] == 7
        assert d["wall_time"] == event.wall_time
        # Colliding payload keys are preserved under a data_ prefix.
        assert d["data_seq"] == 999
        assert d["data_wall_time"] == -1.0
        assert d["hit_rate"] == 0.5

    def test_perf_time_is_monotonic(self):
        bus = TelemetryBus()
        first = bus.emit("a")
        second = bus.emit("b")
        assert first.perf_time > 0.0
        assert second.perf_time >= first.perf_time
        assert second.to_dict()["perf_time"] == second.perf_time

    def test_empty_bus_is_falsy_but_preserved(self):
        # Regression guard: an empty bus has len 0 (falsy), so consumers
        # must None-check instead of using `bus or TelemetryBus()`.
        bus = TelemetryBus()
        assert not bus
        from repro.runtime import ReconfigPlanner

        planner = ReconfigPlanner(telemetry=bus)
        assert planner.telemetry is bus
