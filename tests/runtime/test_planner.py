"""Reconfiguration planner: retry, backoff, fallback, telemetry."""

import pytest

from repro.core import CompileOptions
from repro.pisa.resources import small_target
from repro.runtime import PlanError, ReconfigPlanner, TelemetryBus

from .conftest import RUNTIME_SOURCE


class TestIlpPath:
    def test_plan_solves_with_ilp(self, mini64):
        bus = TelemetryBus()
        planner = ReconfigPlanner(telemetry=bus)
        result = planner.plan(RUNTIME_SOURCE, mini64, cause="initial")
        assert result.backend == "ilp"
        assert not result.fallback
        assert result.symbol_values["kv_cols"] > 0
        assert result.attempts[-1]["outcome"] == "ok"
        assert bus.events_of("compile_attempt")
        assert not bus.events_of("ilp_fallback")


class TestTimeoutFallback:
    def test_forced_timeout_degrades_to_greedy(self, mini64):
        """The acceptance scenario: an impossibly small ILP time limit
        must degrade to the greedy layout with no unhandled exception,
        and the telemetry must record the fallback."""
        bus = TelemetryBus()
        planner = ReconfigPlanner(
            options=CompileOptions(time_limit=1e-4),
            telemetry=bus,
            max_retries=1,
            backoff=2.0,
        )
        result = planner.plan(RUNTIME_SOURCE, mini64, cause="target-change")
        assert result.backend == "greedy"
        assert result.fallback
        assert result.compiled.units          # a real, populated layout
        assert result.symbol_values["kv_cols"] >= 1

        # Two ILP attempts (initial + one retry with backoff), then greedy.
        timeouts = [a for a in result.attempts
                    if a["outcome"].startswith("timeout")
                    or a["outcome"] == "degenerate-incumbent"]
        assert len(timeouts) == 2
        assert result.attempts[-1]["backend"] == "greedy"
        assert result.attempts[-1]["outcome"] == "ok"

        fallbacks = bus.events_of("ilp_fallback")
        assert len(fallbacks) == 1
        assert fallbacks[0].data["attempts"] == 2

    def test_backoff_scales_time_limit(self, mini64):
        planner = ReconfigPlanner(
            options=CompileOptions(time_limit=1e-4),
            max_retries=2,
            backoff=4.0,
        )
        result = planner.plan(RUNTIME_SOURCE, mini64)
        ilp_attempts = [a for a in result.attempts if a["backend"] != "greedy"]
        limits = [a["time_limit"] for a in ilp_attempts]
        assert limits == [pytest.approx(1e-4), pytest.approx(4e-4),
                          pytest.approx(1.6e-3)]

    def test_greedy_backend_skips_ilp(self, mini64):
        bus = TelemetryBus()
        planner = ReconfigPlanner(
            options=CompileOptions(backend="greedy"), telemetry=bus
        )
        result = planner.plan(RUNTIME_SOURCE, mini64)
        assert result.backend == "greedy"
        assert not result.fallback            # greedy was requested, not forced
        assert len(result.attempts) == 1
        assert not bus.events_of("ilp_fallback")


class TestInfeasible:
    def test_infeasible_target_raises_plan_error(self):
        # small_target has 2 stateful ALUs/stage — NetCache genuinely
        # does not fit, so even greedy cannot help.
        bus = TelemetryBus()
        planner = ReconfigPlanner(telemetry=bus)
        with pytest.raises(PlanError):
            planner.plan(RUNTIME_SOURCE, small_target(stages=6, memory_kb=64))
        attempts = bus.events_of("compile_attempt")
        assert attempts[-1].data["outcome"] == "infeasible"


class TestCacheAndWarmStart:
    def test_second_plan_reuses_frontend(self, mini64, mini32):
        """The memory-cut recompile skips parse/IR via the planner's
        shared cache; its solver stats record the reuse."""
        planner = ReconfigPlanner()
        planner.plan(RUNTIME_SOURCE, mini64, cause="initial")
        result = planner.plan(RUNTIME_SOURCE, mini32, cause="target-change")
        assert result.compiled.stats.frontend_cached
        assert not result.compiled.stats.layout_cached  # new target
        assert result.solver_stats["frontend_hits"] >= 1

    def test_identical_replan_hits_layout_cache(self, mini64):
        planner = ReconfigPlanner()
        first = planner.plan(RUNTIME_SOURCE, mini64)
        again = planner.plan(RUNTIME_SOURCE, mini64)
        assert again.compiled.stats.layout_cached
        assert again.symbol_values == first.symbol_values
        assert again.solver_stats["layout_hits"] >= 1

    def test_cache_telemetry_emitted_per_cycle(self, mini64):
        bus = TelemetryBus()
        planner = ReconfigPlanner(telemetry=bus)
        planner.plan(RUNTIME_SOURCE, mini64, cause="initial")
        events = bus.events_of("compile_cache")
        assert len(events) == 1
        assert events[0].data["cause"] == "initial"


class TestRace:
    def test_generous_limit_prefers_ilp(self, mini64):
        bus = TelemetryBus()
        planner = ReconfigPlanner(
            options=CompileOptions(time_limit=120.0),
            telemetry=bus, race=True,
        )
        result = planner.plan(RUNTIME_SOURCE, mini64, cause="initial")
        assert result.backend == "ilp"
        assert not result.fallback
        assert result.compiled.units
        races = bus.events_of("race_result")
        assert len(races) == 1 and races[0].data["winner"] == "ilp"
        assert not bus.events_of("ilp_fallback")

    def test_tiny_limit_adopts_concurrent_greedy(self, mini64):
        """The race replaces the retry ladder: on ILP timeout the
        already-running greedy candidate is adopted with no backoff."""
        bus = TelemetryBus()
        planner = ReconfigPlanner(
            options=CompileOptions(time_limit=1e-4),
            telemetry=bus, race=True,
        )
        result = planner.plan(RUNTIME_SOURCE, mini64, cause="target-change")
        assert result.backend == "greedy"
        assert result.fallback
        assert result.compiled.units
        # Exactly one ILP attempt (no retries in race mode) + greedy.
        ilp_attempts = [a for a in result.attempts if a["backend"] != "greedy"]
        assert len(ilp_attempts) == 1
        assert all(a.get("race") for a in result.attempts)
        races = bus.events_of("race_result")
        assert races[0].data["winner"] == "greedy"
        fallbacks = bus.events_of("ilp_fallback")
        assert len(fallbacks) == 1 and fallbacks[0].data["race"] is True

    def test_no_limit_takes_first_usable(self, mini64):
        planner = ReconfigPlanner(race=True)
        result = planner.plan(RUNTIME_SOURCE, mini64)
        assert result.compiled.units          # some usable layout, fast
        assert result.backend in ("ilp", "greedy")

    def test_race_infeasible_still_raises(self):
        planner = ReconfigPlanner(
            options=CompileOptions(time_limit=60.0), race=True
        )
        with pytest.raises(PlanError):
            planner.plan(RUNTIME_SOURCE, small_target(stages=6, memory_kb=64))
