"""Traffic monitor tests: windows, baseline, drift, warmup."""

import pytest

from repro.runtime import TrafficMonitor


def feed(monitor, rates, packets=100):
    for rate in rates:
        monitor.record(int(rate * packets), packets)


class TestRecording:
    def test_window_samples(self):
        mon = TrafficMonitor()
        sample = mon.record(40, 100)
        assert sample.index == 0
        assert sample.hit_rate == 0.4
        assert mon.current_rate() == 0.4
        assert mon.windows_recorded == 1

    def test_timeline(self):
        mon = TrafficMonitor()
        feed(mon, [0.1, 0.2, 0.3])
        assert mon.timeline == [0.1, 0.2, 0.3]

    def test_history_bounded(self):
        mon = TrafficMonitor(history=4)
        feed(mon, [0.1] * 10)
        assert len(mon.samples) == 4
        assert mon.windows_recorded == 10

    def test_steady_and_baseline_rates(self):
        mon = TrafficMonitor(baseline_windows=3)
        feed(mon, [0.2, 0.4, 0.6, 0.8])
        # steady includes the newest window, baseline excludes it.
        assert mon.steady_rate() == pytest.approx((0.4 + 0.6 + 0.8) / 3)
        assert mon.baseline_rate() == pytest.approx((0.2 + 0.4 + 0.6) / 3)

    def test_empty_monitor_rates(self):
        mon = TrafficMonitor()
        assert mon.current_rate() == 0.0
        assert mon.steady_rate() == 0.0
        assert mon.baseline_rate() == 0.0


class TestDrift:
    def test_drop_below_threshold_detected(self):
        mon = TrafficMonitor(baseline_windows=3, drop_threshold=0.2,
                             warmup_windows=2)
        feed(mon, [0.8] * 6)
        assert not mon.drift_detected()
        mon.record(50, 100)  # 0.5 < 0.8 * 0.8
        assert mon.drift_detected()

    def test_small_dip_not_drift(self):
        mon = TrafficMonitor(baseline_windows=3, drop_threshold=0.2,
                             warmup_windows=2)
        feed(mon, [0.8] * 6)
        mon.record(70, 100)  # 0.7 >= 0.8 * 0.8
        assert not mon.drift_detected()

    def test_warmup_suppresses_drift(self):
        mon = TrafficMonitor(baseline_windows=2, drop_threshold=0.2,
                             warmup_windows=8)
        feed(mon, [0.8, 0.8, 0.8, 0.1])
        assert not mon.drift_detected()

    def test_reset_baseline_restarts_warmup(self):
        mon = TrafficMonitor(baseline_windows=2, drop_threshold=0.2,
                             warmup_windows=3)
        feed(mon, [0.8] * 6)
        mon.record(10, 100)
        assert mon.drift_detected()
        mon.reset_baseline()
        mon.record(10, 100)  # would be drift, but warmup restarted
        assert not mon.drift_detected()

    def test_zero_baseline_never_drifts(self):
        mon = TrafficMonitor(baseline_windows=2, warmup_windows=1)
        feed(mon, [0.0] * 8)
        assert not mon.drift_detected()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            TrafficMonitor(drop_threshold=0.0)
        with pytest.raises(ValueError):
            TrafficMonitor(drop_threshold=1.0)
