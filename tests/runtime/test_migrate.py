"""State migration: counter folds and the compile→populate→shrink→
migrate→validate round trip."""

import numpy as np
import pytest

from repro.apps.netcache import NetCacheApp
from repro.core import validate_layout
from repro.runtime import fold_counters, migrate_netcache_state
from repro.workloads import ZipfGenerator

MASK32 = (1 << 32) - 1


class TestFoldCounters:
    def test_same_size_is_copy(self):
        old = np.arange(8, dtype=np.uint64)
        folded, exact = fold_counters(old, 8, MASK32)
        assert exact
        assert np.array_equal(folded, old)
        folded[0] = 99
        assert old[0] == 0  # a copy, not a view

    def test_exact_fold_when_divisible(self):
        old = np.arange(8, dtype=np.uint64)
        folded, exact = fold_counters(old, 4, MASK32)
        assert exact
        # cell j aggregates old cells j and j+4
        assert folded.tolist() == [0 + 4, 1 + 5, 2 + 6, 3 + 7]

    def test_total_mass_preserved(self):
        rng = np.random.default_rng(0)
        old = rng.integers(0, 1000, size=48).astype(np.uint64)
        for new_cells in (48, 24, 16, 7, 5):
            folded, _ = fold_counters(old, new_cells, MASK32)
            assert folded.sum() == old.sum()

    def test_inexact_when_not_divisible(self):
        old = np.ones(10, dtype=np.uint64)
        _folded, exact = fold_counters(old, 3, MASK32)
        assert not exact

    def test_growth_is_inexact(self):
        old = np.ones(4, dtype=np.uint64)
        folded, exact = fold_counters(old, 8, MASK32)
        assert not exact
        assert folded.sum() == old.sum()


@pytest.fixture()
def warm_old_app(compiled64, mini64):
    """A 64KB NetCache that served a Zipf trace (cache warm, sketch full)."""
    app = NetCacheApp(mini64, hot_threshold=4, compiled=compiled64)
    keys = ZipfGenerator(2000, alpha=1.3, seed=5).sample(4000)
    app.run_trace(keys)
    assert app.cached_entries()
    return app


class TestMigrationRoundTrip:
    def test_round_trip_shrink(self, warm_old_app, compiled32, mini32):
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        report = migrate_netcache_state(warm_old_app, new_app)

        # Accounting adds up and something actually moved.
        assert report.kv_entries_old == len(warm_old_app.cached_entries())
        assert report.kv_migrated + report.kv_dropped == report.kv_entries_old
        assert report.kv_migrated > 0
        assert 0.0 <= report.kv_loss_fraction <= 1.0

        # 2048 -> 1024 columns divides evenly: the fold is exact and
        # mass-preserving.
        assert report.cms_exact_fold
        assert report.cms_mass_new == report.cms_mass_old
        assert report.cms_rows_migrated == min(warm_old_app.cms_rows,
                                               new_app.cms_rows)

        # The migrated layout still validates against the real target.
        validate_layout(new_app.compiled)

        # Every migrated entry is servable: the data plane hits on it.
        migrated = {key for _row, key, _v in new_app.cached_entries()}
        assert len(migrated) == report.kv_migrated
        stats = new_app.run_trace(sorted(migrated))
        assert stats.hits == len(migrated)

    def test_exact_fold_preserves_overestimate(self, warm_old_app,
                                               compiled32, mini32):
        # Count-min invariant: after an exact fold, a key's estimate in
        # the new sketch is at least its estimate in the old one.
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        migrate_netcache_state(warm_old_app, new_app)
        for key in list(warm_old_app._cached_keys)[:50]:
            assert new_app._cms_estimate(key) >= warm_old_app._cms_estimate(key)

    def test_hottest_entries_survive(self, warm_old_app, compiled32, mini32):
        # Re-admission is heat-ranked: any dropped entry must be no
        # hotter than the coldest migrated one.
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        report = migrate_netcache_state(warm_old_app, new_app)
        if report.kv_dropped == 0:
            pytest.skip("nothing dropped at this cache ratio")
        migrated = {key for _r, key, _v in new_app.cached_entries()}
        dropped = {key for _r, key, _v in warm_old_app.cached_entries()
                   if key not in migrated}
        max_dropped = max(warm_old_app._cms_estimate(k) for k in dropped)
        min_migrated = min(warm_old_app._cms_estimate(k) for k in migrated)
        # Hash collisions can strand a hot key, but the orderings must
        # broadly agree; with exact heat ranking the boundary estimates
        # cannot invert by more than the collision slack.
        assert min_migrated >= 1
        assert max_dropped <= max(
            warm_old_app._cms_estimate(k) for k in migrated
        )

    def test_values_preserved(self, warm_old_app, compiled32, mini32):
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        migrate_netcache_state(warm_old_app, new_app)
        old_values = {key: value
                      for _r, key, value in warm_old_app.cached_entries()}
        for _row, key, value in new_app.cached_entries():
            assert old_values[key] == value

    def test_old_app_untouched(self, warm_old_app, compiled32, mini32):
        before_entries = sorted(warm_old_app.cached_entries())
        before_sketch = [
            warm_old_app.pipeline.registers.get(f"cms_sketch[{r}]").dump().copy()
            for r in range(warm_old_app.cms_rows)
        ]
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        migrate_netcache_state(warm_old_app, new_app)
        assert sorted(warm_old_app.cached_entries()) == before_entries
        for row, dump in enumerate(before_sketch):
            now = warm_old_app.pipeline.registers.get(
                f"cms_sketch[{row}]").dump()
            assert np.array_equal(now, dump)

    def test_migrate_to_same_layout_is_lossless(self, warm_old_app,
                                                compiled64, mini64):
        new_app = NetCacheApp(mini64, hot_threshold=4, compiled=compiled64)
        report = migrate_netcache_state(warm_old_app, new_app)
        assert report.kv_dropped == 0
        assert report.kv_migrated == report.kv_entries_old
        assert report.cms_exact_fold
        assert sorted(new_app.cached_entries()) == sorted(
            warm_old_app.cached_entries()
        )
