"""State migration: counter folds and the compile→populate→shrink→
migrate→validate round trip."""

import numpy as np
import pytest

from repro.apps.netcache import NetCacheApp
from repro.core import validate_layout
from repro.runtime import (
    fold_counters,
    migrate_netcache_state,
    readmit_by_heat,
    restore_registers,
    snapshot_registers,
)
from repro.workloads import ZipfGenerator

MASK32 = (1 << 32) - 1


class TestFoldCounters:
    def test_same_size_is_copy(self):
        old = np.arange(8, dtype=np.uint64)
        folded, exact = fold_counters(old, 8, MASK32)
        assert exact
        assert np.array_equal(folded, old)
        folded[0] = 99
        assert old[0] == 0  # a copy, not a view

    def test_exact_fold_when_divisible(self):
        old = np.arange(8, dtype=np.uint64)
        folded, exact = fold_counters(old, 4, MASK32)
        assert exact
        # cell j aggregates old cells j and j+4
        assert folded.tolist() == [0 + 4, 1 + 5, 2 + 6, 3 + 7]

    def test_total_mass_preserved(self):
        rng = np.random.default_rng(0)
        old = rng.integers(0, 1000, size=48).astype(np.uint64)
        for new_cells in (48, 24, 16, 7, 5):
            folded, _ = fold_counters(old, new_cells, MASK32)
            assert folded.sum() == old.sum()

    def test_inexact_when_not_divisible(self):
        old = np.ones(10, dtype=np.uint64)
        _folded, exact = fold_counters(old, 3, MASK32)
        assert not exact

    def test_growth_is_inexact(self):
        old = np.ones(4, dtype=np.uint64)
        folded, exact = fold_counters(old, 8, MASK32)
        assert not exact
        assert folded.sum() == old.sum()


@pytest.fixture()
def warm_old_app(compiled64, mini64):
    """A 64KB NetCache that served a Zipf trace (cache warm, sketch full)."""
    app = NetCacheApp(mini64, hot_threshold=4, compiled=compiled64)
    keys = ZipfGenerator(2000, alpha=1.3, seed=5).sample(4000)
    app.run_trace(keys)
    assert app.cached_entries()
    return app


class TestMigrationRoundTrip:
    def test_round_trip_shrink(self, warm_old_app, compiled32, mini32):
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        report = migrate_netcache_state(warm_old_app, new_app)

        # Accounting adds up and something actually moved.
        assert report.kv_entries_old == len(warm_old_app.cached_entries())
        assert report.kv_migrated + report.kv_dropped == report.kv_entries_old
        assert report.kv_migrated > 0
        assert 0.0 <= report.kv_loss_fraction <= 1.0

        # 2048 -> 1024 columns divides evenly: the fold is exact and
        # mass-preserving.
        assert report.cms_exact_fold
        assert report.cms_mass_new == report.cms_mass_old
        assert report.cms_rows_migrated == min(warm_old_app.cms_rows,
                                               new_app.cms_rows)

        # The migrated layout still validates against the real target.
        validate_layout(new_app.compiled)

        # Every migrated entry is servable: the data plane hits on it.
        migrated = {key for _row, key, _v in new_app.cached_entries()}
        assert len(migrated) == report.kv_migrated
        stats = new_app.run_trace(sorted(migrated))
        assert stats.hits == len(migrated)

    def test_exact_fold_preserves_overestimate(self, warm_old_app,
                                               compiled32, mini32):
        # Count-min invariant: after an exact fold, a key's estimate in
        # the new sketch is at least its estimate in the old one.
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        migrate_netcache_state(warm_old_app, new_app)
        for key in list(warm_old_app._cached_keys)[:50]:
            assert new_app._cms_estimate(key) >= warm_old_app._cms_estimate(key)

    def test_hottest_entries_survive(self, warm_old_app, compiled32, mini32):
        # Re-admission is heat-ranked: any dropped entry must be no
        # hotter than the coldest migrated one.
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        report = migrate_netcache_state(warm_old_app, new_app)
        if report.kv_dropped == 0:
            pytest.skip("nothing dropped at this cache ratio")
        migrated = {key for _r, key, _v in new_app.cached_entries()}
        dropped = {key for _r, key, _v in warm_old_app.cached_entries()
                   if key not in migrated}
        max_dropped = max(warm_old_app._cms_estimate(k) for k in dropped)
        min_migrated = min(warm_old_app._cms_estimate(k) for k in migrated)
        # Hash collisions can strand a hot key, but the orderings must
        # broadly agree; with exact heat ranking the boundary estimates
        # cannot invert by more than the collision slack.
        assert min_migrated >= 1
        assert max_dropped <= max(
            warm_old_app._cms_estimate(k) for k in migrated
        )

    def test_values_preserved(self, warm_old_app, compiled32, mini32):
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        migrate_netcache_state(warm_old_app, new_app)
        old_values = {key: value
                      for _r, key, value in warm_old_app.cached_entries()}
        for _row, key, value in new_app.cached_entries():
            assert old_values[key] == value

    def test_old_app_untouched(self, warm_old_app, compiled32, mini32):
        before_entries = sorted(warm_old_app.cached_entries())
        before_sketch = [
            warm_old_app.pipeline.registers.get(f"cms_sketch[{r}]").dump().copy()
            for r in range(warm_old_app.cms_rows)
        ]
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        migrate_netcache_state(warm_old_app, new_app)
        assert sorted(warm_old_app.cached_entries()) == before_entries
        for row, dump in enumerate(before_sketch):
            now = warm_old_app.pipeline.registers.get(
                f"cms_sketch[{row}]").dump()
            assert np.array_equal(now, dump)

    def test_migrate_to_same_layout_is_lossless(self, warm_old_app,
                                                compiled64, mini64):
        new_app = NetCacheApp(mini64, hot_threshold=4, compiled=compiled64)
        report = migrate_netcache_state(warm_old_app, new_app)
        assert report.kv_dropped == 0
        assert report.kv_migrated == report.kv_entries_old
        assert report.cms_exact_fold
        assert sorted(new_app.cached_entries()) == sorted(
            warm_old_app.cached_entries()
        )


class TestGenericSnapshotRestore:
    """The structure-generic snapshot/restore API under the hot-swap
    wrapper (new in the fabric PR; the wrapper composes these)."""

    def test_snapshot_captures_all_families(self, warm_old_app):
        snap = snapshot_registers(warm_old_app.pipeline)
        assert "cms_sketch" in snap.families()
        assert "kv_keys" in snap.families()
        assert snap.total_cells > 0
        assert snap.packets_processed == warm_old_app.pipeline.packets_processed

    def test_snapshot_family_filter(self, warm_old_app):
        snap = snapshot_registers(warm_old_app.pipeline,
                                  families=("cms_sketch",))
        assert snap.families() == ["cms_sketch"]
        assert snap.mass("cms_sketch") == snap.mass()

    def test_snapshot_is_a_copy(self, warm_old_app):
        snap = snapshot_registers(warm_old_app.pipeline,
                                  families=("cms_sketch",))
        name = next(iter(snap.arrays))
        before = warm_old_app.pipeline.registers.get(name).dump().copy()
        snap.arrays[name][:] = 0
        assert np.array_equal(
            warm_old_app.pipeline.registers.get(name).dump(), before
        )

    def test_restore_same_geometry_exact(self, warm_old_app, compiled64,
                                         mini64):
        new_app = NetCacheApp(mini64, hot_threshold=4, compiled=compiled64)
        snap = snapshot_registers(warm_old_app.pipeline)
        report = restore_registers(snap, new_app.pipeline)
        assert report.exact
        assert report.folded == 0
        assert report.dropped == 0
        assert report.mass_out == report.mass_in == snap.mass()

    def test_restore_folds_on_shrink(self, warm_old_app, compiled32,
                                     mini32):
        new_app = NetCacheApp(mini32, hot_threshold=4, compiled=compiled32)
        snap = snapshot_registers(warm_old_app.pipeline,
                                  families=("cms_sketch",))
        report = restore_registers(snap, new_app.pipeline,
                                   families=("cms_sketch",))
        assert report.folded > 0
        # 2048 -> 1024 columns divides evenly: exact, mass-preserving.
        assert report.exact
        assert report.mass_out == report.mass_in

    def test_restore_accumulate_adds(self, warm_old_app, compiled64,
                                     mini64):
        new_app = NetCacheApp(mini64, hot_threshold=4, compiled=compiled64)
        snap = snapshot_registers(warm_old_app.pipeline,
                                  families=("cms_sketch",))
        restore_registers(snap, new_app.pipeline, families=("cms_sketch",))
        report = restore_registers(snap, new_app.pipeline,
                                   families=("cms_sketch",),
                                   accumulate=True)
        # Second restore accumulates on top of the first: doubled mass.
        name = next(iter(snap.arrays))
        assert np.array_equal(
            new_app.pipeline.registers.get(name).dump(),
            (snap.arrays[name].astype(np.uint64) * 2)
        )
        assert report.mass_out == 2 * snap.mass()

    def test_restore_unknown_instances_dropped(self, warm_old_app,
                                               compiled64, mini64):
        new_app = NetCacheApp(mini64, hot_threshold=4, compiled=compiled64)
        snap = snapshot_registers(warm_old_app.pipeline)
        snap.arrays["ghost[0]"] = np.ones(4, dtype=np.uint64)
        snap.widths["ghost[0]"] = 32
        report = restore_registers(snap, new_app.pipeline)
        assert report.dropped == 1

    def test_readmit_by_heat_ranks_and_dedups(self):
        installed = []

        def install(key, value):
            if len(installed) == 2:
                return False
            installed.append((key, value))
            return True

        migrated, dropped = readmit_by_heat(
            [(1, 10), (2, 20), (3, 30), (2, 99)],
            heat={1: 5, 2: 50, 3: 7}.__getitem__,
            install=install,
        )
        assert migrated == 2 and dropped == 1
        # Hottest first; the duplicate key installs only once.
        assert installed == [(2, 99), (3, 30)]
