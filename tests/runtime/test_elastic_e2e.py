"""End-to-end elastic runtime: the ISSUE acceptance scenario.

A NetCache pipeline serves a churning Zipf stream; mid-run the per-stage
memory is cut in half. The runtime must detect, recompile, migrate, and
hot-swap — and the post-swap hit rate must recover to within 10% of the
pre-cut steady state. Rollback and the forced-timeout fallback are
exercised on the same machinery.
"""

import dataclasses

import pytest

from repro.core import CompileOptions
from repro.runtime import (
    ElasticRuntime,
    ReconfigPlanner,
    RuntimeConfig,
    TelemetryBus,
)
from repro.workloads import ChurningZipf


def make_stream():
    return ChurningZipf(2000, alpha=1.3, phase_packets=4000, churn=0.2,
                        hot_ranks=200, seed=11)


@pytest.fixture(scope="module")
def cut_run(mini64, mini32):
    """One full memory-cut run shared by the assertions below."""
    bus = TelemetryBus()
    runtime = ElasticRuntime(
        mini64,
        config=RuntimeConfig(window_packets=500, drift_reconfig=False),
        telemetry=bus,
    )
    runtime.schedule_target_change(6000, mini32)
    report = runtime.run(make_stream(), packets=12_000)
    return runtime, report, bus


class TestMemoryCutRecovery:
    def test_reconfig_committed(self, cut_run):
        _rt, report, _bus = cut_run
        committed = [r for r in report.reconfigs if r.committed]
        assert len(committed) == 1
        rec = committed[0]
        assert rec.cause == "target-change"
        assert rec.packet_index == 6000
        assert rec.backend == "ilp"
        assert rec.migration is not None
        assert rec.migration.kv_migrated > 0

    def test_layout_actually_shrank(self, cut_run, mini32):
        rt, report, _bus = cut_run
        assert rt.target is mini32
        # Half the memory: the cache and sketch both shrank.
        assert report.final_symbols["kv_cols"] < 409
        assert report.final_symbols["cms_cols"] < 2048

    def test_hit_rate_recovers_within_10_percent(self, cut_run):
        """The acceptance bar: post-swap steady hit rate within 10% of
        the pre-cut steady baseline despite half the memory."""
        _rt, report, _bus = cut_run
        assert report.recovery_ratio() >= 0.9

    def test_no_cold_start_collapse(self, cut_run):
        # The first window served by the swapped pipeline must stay near
        # the baseline (migration kept the cache warm); a cold swap
        # measures ~0.57 here vs a ~0.82 baseline.
        _rt, report, _bus = cut_run
        committed = [r for r in report.reconfigs if r.committed][0]
        first_after = report.timeline[6000 // 500]
        assert first_after >= committed.baseline_rate * 0.9

    def test_telemetry_narrates_the_cycle(self, cut_run):
        _rt, _report, bus = cut_run
        kinds = [e.kind for e in bus.events]
        for expected in ("configured", "target_change_requested",
                         "reconfig_triggered", "migration",
                         "swap_committed", "window"):
            assert expected in kinds
        swap = bus.last_of("swap_committed")
        assert swap.data["symbols"]["kv_cols"] < 409
        assert 0.0 <= swap.data["kv_loss"] <= 1.0
        # The trigger precedes the swap which precedes the next window.
        assert (bus.last_of("reconfig_triggered").seq < swap.seq)

    def test_report_serializes(self, cut_run):
        import json

        _rt, report, _bus = cut_run
        decoded = json.loads(json.dumps(report.to_dict()))
        assert decoded["packets"] == 12_000
        assert decoded["reconfigs"][0]["committed"] is True
        assert "recovery_ratio" in decoded


class TestRollback:
    def test_injected_failure_rolls_back(self, mini64, mini32):
        bus = TelemetryBus()
        runtime = ElasticRuntime(
            mini64,
            config=RuntimeConfig(window_packets=500, drift_reconfig=False),
            telemetry=bus,
        )
        old_app = runtime.app
        stream = make_stream()
        runtime.run(stream, packets=2000)

        def fail(_app):
            raise RuntimeError("injected pre-commit failure")

        runtime.pre_commit_check = fail
        runtime.set_target(mini32)
        report = runtime.run(stream, packets=1000)

        # The swap aborted: old app and old target still in place,
        # rollback recorded, and the run continued serving packets.
        assert runtime.app is old_app
        assert runtime.target is mini64
        rolled = [r for r in report.reconfigs if not r.committed]
        assert len(rolled) == 1
        assert "injected pre-commit failure" in rolled[0].error
        assert bus.events_of("rollback")
        assert not bus.events_of("swap_committed")
        assert report.packets == 1000

        # The failed attempt is not retried in a loop: one record only.
        assert len(report.reconfigs) == 1

    def test_runtime_survives_rollback_and_keeps_serving(self, mini64, mini32):
        runtime = ElasticRuntime(
            mini64,
            config=RuntimeConfig(window_packets=500, drift_reconfig=False),
        )
        stream = make_stream()
        runtime.run(stream, packets=2000)
        runtime.pre_commit_check = lambda app: (_ for _ in ()).throw(
            ValueError("no")
        )
        runtime.set_target(mini32)
        runtime.run(stream, packets=500)
        runtime.pre_commit_check = None
        report = runtime.run(stream, packets=1500)
        assert report.hit_rate > 0.0


class TestTimeoutFallbackAtRuntime:
    def test_forced_timeout_configures_via_greedy(self, mini64):
        """Acceptance: a forced ILP timeout degrades to greedy without
        an unhandled exception, recorded in telemetry."""
        bus = TelemetryBus()
        planner = ReconfigPlanner(
            options=CompileOptions(time_limit=1e-4),
            telemetry=bus,
            max_retries=1,
        )
        runtime = ElasticRuntime(
            mini64,
            config=RuntimeConfig(window_packets=500, drift_reconfig=False),
            telemetry=bus,
            planner=planner,
        )
        assert bus.events_of("ilp_fallback")
        configured = bus.last_of("configured")
        assert configured.data["backend"] == "greedy"
        assert configured.data["fallback"] is True
        # The greedy-configured pipeline actually serves traffic.
        report = runtime.run(make_stream(), packets=2000)
        assert report.hit_rate > 0.3
