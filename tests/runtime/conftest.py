"""Runtime test fixtures.

The runtime targets are mini-Tofinos (6 stages) so NetCache compiles in
about two seconds; the compiled artifacts are session-scoped because the
compiler is deterministic, while every runtime/app built from them is
per-test (mutable register state).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps.netcache import netcache_source
from repro.core import compile_source
from repro.pisa.resources import tofino

RUNTIME_SOURCE = netcache_source(with_routing=False)


@pytest.fixture(scope="session")
def mini64():
    """6-stage target with 64KB of register memory per stage."""
    return dataclasses.replace(
        tofino(), stages=6, memory_bits_per_stage=64 * 1024
    )


@pytest.fixture(scope="session")
def mini32(mini64):
    """The same target after the memory cut: 32KB per stage."""
    return dataclasses.replace(mini64, memory_bits_per_stage=32 * 1024)


@pytest.fixture(scope="session")
def compiled64(mini64):
    return compile_source(RUNTIME_SOURCE, mini64, source_name="netcache")


@pytest.fixture(scope="session")
def compiled32(mini32):
    return compile_source(RUNTIME_SOURCE, mini32, source_name="netcache")
