"""Lexer unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_eof_only(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("foo _bar x1") == [TokenKind.IDENT] * 3
        assert values("foo _bar x1") == ["foo", "_bar", "x1"]

    def test_keywords_are_distinguished(self):
        assert kinds("symbolic assume optimize") == [
            TokenKind.KW_SYMBOLIC, TokenKind.KW_ASSUME, TokenKind.KW_OPTIMIZE,
        ]

    def test_keyword_prefix_is_identifier(self):
        # 'symbolically' must not lex as the keyword 'symbolic'.
        assert kinds("symbolically") == [TokenKind.IDENT]

    def test_decimal_int(self):
        assert values("0 7 2048 4294967295") == [0, 7, 2048, 4294967295]

    def test_hex_int(self):
        assert values("0x10 0xFF 0xdead_beef") == [16, 255, 0xDEADBEEF]

    def test_binary_int(self):
        assert values("0b101 0b1111_0000") == [5, 0xF0]

    def test_underscore_separated_decimal(self):
        assert values("1_000_000") == [1000000]

    def test_width_prefixed_literal(self):
        # P4-style 8w255: width is informational; value is 255.
        assert values("8w255") == [255]

    def test_float_literal(self):
        assert values("0.4 12.5") == [0.4, 12.5]
        assert kinds("0.4") == [TokenKind.FLOAT]

    def test_bool_literals(self):
        toks = tokenize("true false")
        assert toks[0].value is True
        assert toks[1].value is False

    def test_string_literal(self):
        assert values('"hello"') == ["hello"]

    def test_string_escapes(self):
        assert values(r'"a\nb\"c"') == ['a\nb"c']


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<<", TokenKind.SHL), (">>", TokenKind.SHR),
            ("<=", TokenKind.LE), (">=", TokenKind.GE),
            ("==", TokenKind.EQ), ("!=", TokenKind.NE),
            ("&&", TokenKind.AND), ("||", TokenKind.OR),
        ],
    )
    def test_two_char_operators(self, text, kind):
        assert kinds(text) == [kind]

    def test_adjacent_angle_brackets_lex_as_shr(self):
        # The parser, not the lexer, splits '>>' in register<bit<32>>.
        assert kinds("bit<32>>") == [
            TokenKind.KW_BIT, TokenKind.LT, TokenKind.INT, TokenKind.SHR,
        ]

    def test_single_char_operators(self):
        assert kinds("+-*/%") == [
            TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR,
            TokenKind.SLASH, TokenKind.PERCENT,
        ]


class TestComments:
    def test_line_comment(self):
        assert kinds("x // comment here\ny") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment(self):
        assert kinds("x /* multi\nline */ y") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError, match="unterminated block comment"):
            tokenize("x /* oops")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"oops')


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].loc.line, toks[0].loc.column) == (1, 1)
        assert (toks[1].loc.line, toks[1].loc.column) == (2, 3)

    def test_error_includes_location_and_snippet(self):
        with pytest.raises(LexError) as exc:
            tokenize("x = `;")
        assert ":1:5" in str(exc.value)
        assert "^" in str(exc.value)

    def test_unknown_character_raises(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("`")


class TestLexerProperties:
    @given(st.integers(min_value=0, max_value=2**63))
    def test_integer_round_trip(self, value):
        assert values(str(value)) == [value]

    @given(
        st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,20}", fullmatch=True)
    )
    def test_identifier_or_keyword_round_trip(self, name):
        toks = tokenize(name)
        assert len(toks) == 2  # token + EOF
        if toks[0].kind is TokenKind.IDENT:
            assert toks[0].value == name

    @given(st.lists(st.sampled_from(
        ["foo", "42", "+", "(", ")", "<=", "if", "0x1F", "&&"]
    ), max_size=30))
    def test_whitespace_insensitivity(self, parts):
        a = tokenize(" ".join(parts))
        b = tokenize("  \n\t ".join(parts))
        assert [(t.kind, t.value) for t in a] == [(t.kind, t.value) for t in b]
