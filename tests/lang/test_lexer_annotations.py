"""Annotation-skipping lexer tests (generated-P4 re-parsing support)."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]


class TestAnnotations:
    def test_stage_annotation_skipped(self):
        toks = kinds("@stage(3) register<bit<8>>[4] r;")
        assert toks[0] is TokenKind.KW_REGISTER

    def test_bare_annotation_skipped(self):
        assert kinds("@pragma x") == [TokenKind.IDENT]

    def test_annotation_with_nested_parens(self):
        assert kinds("@anno(f(1, 2), g(3)) y") == [TokenKind.IDENT]

    def test_unterminated_annotation_raises(self):
        with pytest.raises(LexError, match="unterminated annotation"):
            tokenize("@stage(3")

    def test_annotation_between_tokens(self):
        assert kinds("a @stage(0) b") == [TokenKind.IDENT, TokenKind.IDENT]
