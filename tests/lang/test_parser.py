"""Parser unit tests."""

import pytest

from repro.lang import ParseError, ast, parse_expression, parse_program


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expression("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "-"
        assert isinstance(expr.right, ast.IntLit) and expr.right.value == 3

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinaryOp) and expr.left.op == "+"

    def test_comparison_and_logic(self):
        expr = parse_expression("a < 4 && b >= 2")
        assert expr.op == "&&"
        assert expr.left.op == "<"
        assert expr.right.op == ">="

    def test_ternary(self):
        expr = parse_expression("a == 1 ? x : y")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.cond, ast.BinaryOp)

    def test_member_and_index_chain(self):
        expr = parse_expression("meta.count[i]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Member)
        assert expr.base.name == "count"

    def test_call_with_iter_index(self):
        expr = parse_expression("incr()[i]")
        assert isinstance(expr, ast.Call)
        assert isinstance(expr.iter_index, ast.Name)
        assert expr.iter_index.ident == "i"

    def test_call_result_can_be_compared(self):
        expr = parse_expression("hash(1, x) < 10")
        assert expr.op == "<"
        assert isinstance(expr.left, ast.Call)

    def test_unary_operators(self):
        expr = parse_expression("!(-x)")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "!"
        assert isinstance(expr.operand, ast.UnaryOp)

    def test_float_in_expression(self):
        expr = parse_expression("0.4 * rows")
        assert isinstance(expr.left, ast.FloatLit)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")


class TestDeclarations:
    def test_symbolic_decl(self):
        prog = parse_program("symbolic int rows;")
        assert prog.symbolics()[0].name == "rows"

    def test_assume_and_optimize(self):
        prog = parse_program(
            "symbolic int r;\nassume r >= 1 && r < 4;\noptimize r * 10;"
        )
        assert len(prog.assumes()) == 1
        assert prog.optimize() is not None

    def test_register_with_two_extents(self):
        prog = parse_program("symbolic int c;\nregister<bit<32>>[c][4] cms;")
        reg = prog.registers()[0]
        assert isinstance(reg.size, ast.Name) and reg.size.ident == "c"
        assert isinstance(reg.count, ast.IntLit) and reg.count.value == 4

    def test_register_single_extent(self):
        prog = parse_program("register<bit<1>>[1024] bloom;")
        reg = prog.registers()[0]
        assert reg.count is None
        assert reg.cell_type.width == 1

    def test_nested_angle_brackets_split(self):
        # register<bit<32>> requires splitting the '>>' token.
        prog = parse_program("register<bit<32>>[8] r;")
        assert prog.registers()[0].cell_type.width == 32

    def test_struct_with_elastic_field(self):
        prog = parse_program(
            "symbolic int rows;\nstruct metadata { bit<32>[rows] count; bit<8> x; }"
        )
        fields = prog.structs()[0].fields
        assert fields[0].array_size is not None
        assert fields[1].array_size is None

    def test_action_with_iter_param(self):
        prog = parse_program("action incr()[int i] { meta.x = i; }")
        action = prog.actions()[0]
        assert action.iter_param == "i"

    def test_action_with_params(self):
        prog = parse_program("action set_port(bit<9> port) { meta.egress = port; }")
        action = prog.actions()[0]
        assert action.params[0].name == "port"
        assert action.params[0].ty.width == 9

    def test_table_declaration(self):
        prog = parse_program(
            "action a() { meta.x = 1; }\n"
            "table t {\n"
            "  key = { meta.dst : exact; meta.src : ternary; }\n"
            "  actions = { a; NoAction; }\n"
            "  size = 512;\n"
            "  default_action = NoAction;\n"
            "}"
        )
        table = prog.tables()[0]
        assert [k.match_kind for k in table.keys] == ["exact", "ternary"]
        assert table.actions == ["a", "NoAction"]
        assert table.size.value == 512
        assert table.default_action == "NoAction"

    def test_control_with_locals_and_apply(self):
        prog = parse_program(
            "control C(inout metadata meta) {\n"
            "  action a() { meta.x = 1; }\n"
            "  apply { a(); }\n"
            "}"
        )
        ctrl = prog.control("C")
        assert len(ctrl.locals) == 1
        assert len(ctrl.apply.stmts) == 1

    def test_control_without_apply_rejected(self):
        with pytest.raises(ParseError, match="no apply block"):
            parse_program("control C() { action a() { meta.x = 1; } }")

    def test_const_decl(self):
        prog = parse_program("const int LEVELS = 8;")
        assert prog.decls[0].name == "LEVELS"


class TestStatements:
    def _stmts(self, body: str):
        prog = parse_program(f"control C(inout metadata meta) {{ apply {{ {body} }} }}")
        return prog.control("C").apply.stmts

    def test_assignment(self):
        (stmt,) = self._stmts("meta.x = 4;")
        assert isinstance(stmt, ast.Assign)

    def test_for_loop(self):
        (stmt,) = self._stmts("for (i < rows) { incr()[i]; }")
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.var == "i"
        assert stmt.bound.ident == "rows"

    def test_if_else_chain(self):
        (stmt,) = self._stmts(
            "if (meta.a == 1) { meta.x = 1; } else if (meta.a == 2) { meta.x = 2; }"
            " else { meta.x = 3; }"
        )
        assert isinstance(stmt, ast.IfStmt)
        nested = stmt.else_block.stmts[0]
        assert isinstance(nested, ast.IfStmt)
        assert nested.else_block is not None

    def test_register_method_statement(self):
        (stmt,) = self._stmts("cms[i].add_read(meta.count[i], meta.index[i], 1);")
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.call.func.name == "add_read"

    def test_table_apply_statement(self):
        (stmt,) = self._stmts("route.apply();")
        assert stmt.call.func.name == "apply"

    def test_non_call_expression_statement_rejected(self):
        with pytest.raises(ParseError):
            self._stmts("meta.x + 1;")

    def test_bare_field_statement_rejected(self):
        with pytest.raises(ParseError, match="call or assignment"):
            self._stmts("meta.x;")


class TestErrorQuality:
    def test_error_mentions_expected_token(self):
        with pytest.raises(ParseError, match="expected"):
            parse_program("symbolic rows;")

    def test_error_has_caret_snippet(self):
        with pytest.raises(ParseError) as exc:
            parse_program("symbolic int ;")
        message = str(exc.value)
        assert "^" in message and "symbolic int ;" in message
