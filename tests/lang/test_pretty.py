"""Pretty-printer round-trip tests: parse(pretty(ast)) == ast."""

import pytest
from hypothesis import given, strategies as st

from repro.lang import ast, parse_expression, parse_program, pretty_expr, pretty_program
from repro.structures import LIBRARY_SOURCES
from repro.apps import APP_SOURCES


def round_trip_program(source: str):
    prog = parse_program(source)
    text = pretty_program(prog)
    again = parse_program(text)
    assert again.decls == prog.decls, f"pretty output re-parsed differently:\n{text}"


class TestProgramRoundTrips:
    @pytest.mark.parametrize("name", sorted(LIBRARY_SOURCES))
    def test_library_sources_round_trip(self, name):
        round_trip_program(LIBRARY_SOURCES[name])

    @pytest.mark.parametrize("name", ["netcache", "sketchlearn", "precision", "conquest"])
    def test_app_sources_round_trip(self, name):
        round_trip_program(APP_SOURCES()[name])

    def test_table_round_trip(self):
        round_trip_program(
            "action a() { meta.x = 1; }\n"
            "table t { key = { meta.d : lpm; } actions = { a; } size = 16; }"
        )


# --- expression round-trip via hypothesis-generated ASTs -------------------

_names = st.sampled_from(["a", "b", "rows", "cols", "x9"])


def _expr_strategy():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=1 << 20).map(lambda v: ast.IntLit(value=v)),
        _names.map(lambda n: ast.Name(ident=n)),
        st.booleans().map(lambda b: ast.BoolLit(value=b)),
    )

    def extend(children):
        binop = st.builds(
            lambda op, left, right: ast.BinaryOp(op=op, left=left, right=right),
            st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^",
                             "<<", ">>", "<", ">", "<=", ">=", "==", "!=",
                             "&&", "||"]),
            children,
            children,
        )
        unop = st.builds(
            lambda op, operand: ast.UnaryOp(op=op, operand=operand),
            st.sampled_from(["-", "!", "~"]),
            children,
        )
        ternary = st.builds(
            lambda c, t, f: ast.Ternary(cond=c, if_true=t, if_false=f),
            children, children, children,
        )
        member = st.builds(
            lambda base, name: ast.Member(base=ast.Name(ident=base), name=name),
            _names, _names,
        )
        index = st.builds(
            lambda base, idx: ast.Index(base=base, index=idx),
            member, children,
        )
        call = st.builds(
            lambda args: ast.Call(func=ast.Name(ident="hash"), args=args),
            st.lists(children, min_size=1, max_size=3),
        )
        return st.one_of(binop, unop, ternary, index, call)

    return st.recursive(leaves, extend, max_leaves=12)


class TestExpressionRoundTrips:
    @given(_expr_strategy())
    def test_pretty_then_parse_preserves_structure(self, expr):
        text = pretty_expr(expr)
        reparsed = parse_expression(text)
        assert reparsed == expr, f"{text!r} reparsed differently"

    def test_precedence_needs_parens(self):
        # (1 + 2) * 3 must not print as 1 + 2 * 3.
        expr = ast.BinaryOp(
            op="*",
            left=ast.BinaryOp(op="+", left=ast.IntLit(value=1), right=ast.IntLit(value=2)),
            right=ast.IntLit(value=3),
        )
        assert parse_expression(pretty_expr(expr)) == expr

    def test_nested_same_precedence_right_side(self):
        # 10 - (4 - 3) must keep its parentheses.
        expr = ast.BinaryOp(
            op="-",
            left=ast.IntLit(value=10),
            right=ast.BinaryOp(op="-", left=ast.IntLit(value=4), right=ast.IntLit(value=3)),
        )
        text = pretty_expr(expr)
        assert parse_expression(text) == expr
