"""Semantic-check unit tests."""

import pytest

from repro.lang import SemanticError, check_program, eval_static, parse_program
from repro.lang.symbols import ProgramInfo


def check(source: str) -> ProgramInfo:
    return check_program(parse_program(source))


VALID = """
symbolic int rows;
const int W = 32;
struct metadata {
    bit<32> flow_id;
    bit<32>[rows] count;
}
register<bit<32>>[1024][rows] sketch;
action touch()[int i] {
    sketch[i].add_read(meta.count[i], meta.flow_id, 1);
}
control Ingress(inout metadata meta) {
    apply { for (i < rows) { touch()[i]; } }
}
"""


class TestCollection:
    def test_valid_program_summary(self):
        info = check(VALID)
        assert info.symbolics == ["rows"]
        assert info.consts == {"W": 32}
        assert "sketch" in info.registers
        assert info.metadata["count"].is_elastic
        assert not info.metadata["flow_id"].is_elastic
        assert info.metadata_fixed_bits() == 32

    def test_register_facts(self):
        info = check(VALID)
        reg = info.registers["sketch"]
        assert reg.cell_bits == 32
        assert reg.is_elastic_count
        assert not reg.is_elastic_size


class TestRejections:
    def test_duplicate_symbolic(self):
        with pytest.raises(SemanticError, match="declared twice"):
            check("symbolic int r;\nsymbolic int r;")

    def test_duplicate_register(self):
        with pytest.raises(SemanticError, match="declared twice"):
            check("register<bit<8>>[4] r;\nregister<bit<8>>[4] r;")

    def test_unknown_name_in_extent(self):
        with pytest.raises(SemanticError, match="neither a constant nor a symbolic"):
            check("register<bit<8>>[mystery] r;")

    def test_elastic_header_field_rejected(self):
        with pytest.raises(SemanticError, match="header fields cannot be elastic"):
            check("symbolic int n;\nheader h { bit<8>[n] xs; }")

    def test_unknown_action_call(self):
        with pytest.raises(SemanticError, match="unknown action"):
            check("control Ingress(inout metadata m) { apply { ghost(); } }")

    def test_action_arity_mismatch(self):
        with pytest.raises(SemanticError, match="takes 1 argument"):
            check(
                "action a(bit<8> x) { meta.y = x; }\n"
                "control Ingress(inout metadata m) { apply { a(); } }"
            )

    def test_missing_iteration_index(self):
        with pytest.raises(SemanticError, match="needs an iteration index"):
            check(
                "symbolic int n;\n"
                "action a()[int i] { meta.y = i; }\n"
                "control Ingress(inout metadata m) { apply { a(); } }"
            )

    def test_unexpected_iteration_index(self):
        with pytest.raises(SemanticError, match="takes no iteration index"):
            check(
                "action a() { meta.y = 1; }\n"
                "control Ingress(inout metadata m) { apply { a()[0]; } }"
            )

    def test_unknown_register_method(self):
        with pytest.raises(SemanticError, match="unknown register method"):
            check(
                "register<bit<8>>[4] r;\n"
                "control Ingress(inout metadata m) { apply { r.frob(1, 2); } }"
            )

    def test_register_method_arity(self):
        with pytest.raises(SemanticError, match="takes 3 argument"):
            check(
                "register<bit<8>>[4] r;\n"
                "control Ingress(inout metadata m) { apply { r.add_read(m.x, 0); } }"
            )

    def test_loop_inside_action_rejected(self):
        with pytest.raises(SemanticError, match="not allowed inside actions"):
            check(
                "symbolic int n;\n"
                "action a() { for (i < n) { meta.x = i; } }"
            )

    def test_table_with_unknown_action(self):
        with pytest.raises(SemanticError, match="unknown action"):
            check("table t { key = { m.x : exact; } actions = { ghost; } }")

    def test_assume_with_unknown_name(self):
        with pytest.raises(SemanticError, match="not a symbolic or constant"):
            check("assume bogus <= 4;")

    def test_utility_with_unknown_name(self):
        with pytest.raises(SemanticError, match="utility function references"):
            check("optimize bogus * 2;")

    def test_unknown_function_in_expression(self):
        with pytest.raises(SemanticError, match="unknown function"):
            check(
                "control Ingress(inout metadata m) { apply { m.x = frob(1); } }"
            )


class TestEvalStatic:
    def test_arithmetic(self):
        from repro.lang import parse_expression

        assert eval_static(parse_expression("2 * (3 + 4)"), {}) == 14
        assert eval_static(parse_expression("10 / 3"), {}) == 3
        assert eval_static(parse_expression("1 << 10"), {}) == 1024

    def test_names_from_env(self):
        from repro.lang import parse_expression

        assert eval_static(parse_expression("n * 2"), {"n": 21}) == 42

    def test_comparison_and_ternary(self):
        from repro.lang import parse_expression

        assert eval_static(parse_expression("3 < 4 ? 10 : 20"), {}) == 10

    def test_division_by_zero(self):
        from repro.lang import parse_expression

        with pytest.raises(SemanticError, match="division by zero"):
            eval_static(parse_expression("1 / 0"), {})

    def test_non_static_raises(self):
        from repro.lang import parse_expression

        with pytest.raises(SemanticError, match="not a compile-time constant"):
            eval_static(parse_expression("n + 1"), {})
