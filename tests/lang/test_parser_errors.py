"""Parser diagnostics: every grammar corner reports a usable error."""

import pytest

from repro.lang import ParseError, parse_program


@pytest.mark.parametrize(
    "source,fragment",
    [
        ("symbolic float x;", "'int' after 'symbolic'"),
        ("symbolic int 5;", "symbolic value name"),
        ("register<bit<32> [4] r;", ""),
        ("register<bit<32>>[4", ""),
        ("register<bit<32>>[4] ;", "register name"),
        ("action a(bit<8>) { }", "parameter name"),
        ("action a()[int] { }", "iteration parameter name"),
        ("table t { key = { x.y exact; } }", ""),
        ("table t { key = { x.y : range; } }", "match kind"),
        ("table t { frobnicate = 1; }", "unexpected token"),
        ("control C() { banana }", "unexpected token"),
        ("struct s { bit<8> }", "field name"),
        ("const int = 4;", "constant name"),
        ("header h { bit<8> f }", ""),
        ("optimize ;", ""),
        ("assume ;", ""),
    ],
)
def test_malformed_declarations_raise(source, fragment):
    with pytest.raises(ParseError) as excinfo:
        parse_program(source)
    if fragment:
        assert fragment in str(excinfo.value)


@pytest.mark.parametrize(
    "body,fragment",
    [
        ("for i < n) { }", ""),
        ("for (i) { }", "'<' in loop header"),
        ("if meta.x == 1 { }", ""),
        ("meta.x = ;", ""),
        ("meta.x 4;", ""),
        ("foo(;", ""),
    ],
)
def test_malformed_statements_raise(body, fragment):
    source = f"control C(inout metadata m) {{ apply {{ {body} }} }}"
    with pytest.raises(ParseError) as excinfo:
        parse_program(source)
    if fragment:
        assert fragment in str(excinfo.value)


def test_errors_carry_position_and_snippet():
    source = "symbolic int rows;\nregister<bit<32>>[cols] ;"
    with pytest.raises(ParseError) as excinfo:
        parse_program(source)
    message = str(excinfo.value)
    assert ":2:" in message          # correct line
    assert "register" in message     # snippet included
    assert "^" in message            # caret marker


def test_eof_inside_block_reports_cleanly():
    with pytest.raises(ParseError):
        parse_program("control C() { apply { meta.x = 1;")
