"""Loop-unrolling upper-bound tests (§4.2)."""

import dataclasses

import pytest

from repro.analysis import UnrollOptions, build_ir, compute_upper_bounds
from repro.lang import check_program, parse_program
from repro.pisa.resources import small_target, toy_three_stage
from repro.structures import CMS_SOURCE


def bounds_for(source: str, target, options=None):
    ir = build_ir(check_program(parse_program(source)), "Ingress")
    return compute_upper_bounds(ir, target, options)


class TestFigure9:
    def test_worked_example_bound_is_two(self):
        result = bounds_for(CMS_SOURCE, toy_three_stage()).results["cms_rows"]
        assert result.bound == 2
        assert result.criterion == "stages"
        # Path lengths grow 2, 3, 4 with K = 1, 2, 3 (Figure 9).
        assert result.path_lengths == [2, 3, 4]

    def test_more_stages_relax_the_bound(self):
        five = dataclasses.replace(toy_three_stage(), stages=5)
        result = bounds_for(CMS_SOURCE, five).results["cms_rows"]
        assert result.bound == 4  # path length K+1 <= 5


INDEPENDENT = """
symbolic int n;
struct metadata {
    bit<32> fkey;
    bit<32>[n] slot;
}
register<bit<8>>[64][n] arr;
action mark()[int i] {
    meta.slot[i] = hash(i, meta.fkey);
    arr[i].write(meta.slot[i], 1);
}
control Ingress(inout metadata meta) {
    apply { for (i < n) { mark()[i]; } }
}
"""


class TestResourceCriteria:
    def test_alu_criterion_for_independent_iterations(self):
        # No cross-iteration dependencies: the chain criterion never
        # fires; ALUs (or PHV) must bound the loop.
        target = small_target(stages=2, memory_kb=512)
        result = bounds_for(
            INDEPENDENT,
            target,
            UnrollOptions(use_phv_criterion=False, use_memory_criterion=False),
        ).results["n"]
        assert result.criterion == "alus"
        # Each iteration: hf=1, hl=2 -> 3 ALUs; budget (2+8)*2 = 20 -> 6 fit.
        assert result.bound == 6

    def test_phv_criterion(self):
        target = small_target(stages=2, memory_kb=512)
        # PHV budget: 1024 - 32 fixed = 992; 32 bits/iter -> 31 iterations.
        result = bounds_for(INDEPENDENT, target).results["n"]
        assert result.bound <= 31

    def test_memory_criterion(self):
        source = INDEPENDENT.replace("[64][n]", "[8192][n]")
        tiny = small_target(stages=2, memory_kb=1)  # 1024 bits/stage
        result = bounds_for(
            source,
            tiny,
            UnrollOptions(use_phv_criterion=False),
        ).results["n"]
        # >= 1 cell of 8 bits per iteration, 2048 bits total -> 256 cap,
        # but ALU criterion may fire earlier; either way it's bounded.
        assert result.bound <= 256

    def test_assume_cap_short_circuits(self):
        source = INDEPENDENT + "\nassume n <= 3;"
        target = small_target(stages=8, memory_kb=512)
        result = bounds_for(source, target).results["n"]
        assert result.bound == 3
        assert result.criterion == "assume"

    def test_hard_cap_backstop(self):
        target = small_target(stages=8, memory_kb=512)
        result = bounds_for(
            INDEPENDENT,
            target,
            UnrollOptions(
                use_phv_criterion=False,
                use_memory_criterion=False,
                hard_cap=10,
            ),
        ).results["n"]
        assert result.bound <= 10


class TestExclusionHandling:
    def test_all_precedence_mode_tightens_bound(self):
        # With exclusion edges the min-chain gives bound S-1; treating
        # them as precedence forces a strict order with the same length,
        # so bounds can only shrink or stay equal.
        target = toy_three_stage()
        full = bounds_for(CMS_SOURCE, target).results["cms_rows"].bound
        degraded = bounds_for(
            CMS_SOURCE,
            target,
            UnrollOptions(exclusion_as_precedence=True),
        ).results["cms_rows"].bound
        assert degraded <= full


class TestNoLoops:
    def test_program_without_loops_has_no_bounds(self):
        source = """
        struct metadata { bit<32> x; }
        control Ingress(inout metadata meta) {
            apply { meta.x = 1; }
        }
        """
        assert bounds_for(source, toy_three_stage()).results == {}
