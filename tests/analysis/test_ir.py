"""Elaboration and effect-analysis tests."""

import pytest

from repro.lang import SemanticError, ast, check_program, parse_program
from repro.analysis import (
    ElasticSegment,
    InelasticSegment,
    UpdateKind,
    build_ir,
    instantiate,
    substitute,
)


def make_ir(source: str, entry: str = "Ingress"):
    return build_ir(check_program(parse_program(source)), entry)


CMS_LIKE = """
symbolic int rows;
struct metadata {
    bit<32> flow_id;
    bit<32>[rows] count;
    bit<32> min;
}
register<bit<32>>[256][rows] sk;
action touch()[int i] {
    sk[i].add_read(meta.count[i], meta.flow_id, 1);
}
action pick()[int i] {
    meta.min = meta.count[i];
}
control Ingress(inout metadata meta) {
    apply {
        meta.min = 4294967295;
        for (i < rows) { touch()[i]; }
        for (i < rows) {
            if (meta.count[i] < meta.min) { pick()[i]; }
        }
    }
}
"""


class TestElaboration:
    def test_segment_structure(self):
        ir = make_ir(CMS_LIKE)
        kinds = [type(s).__name__ for s in ir.segments]
        assert kinds == ["InelasticSegment", "ElasticSegment", "ElasticSegment"]
        assert ir.loop_symbolics == ["rows"]

    def test_nested_control_inlining(self):
        ir = make_ir(
            """
            struct metadata { bit<32> x; }
            control Inner(inout metadata meta) {
                apply { meta.x = 1; }
            }
            control Ingress(inout metadata meta) {
                apply { Inner.apply(meta); }
            }
            """
        )
        assert len(ir.segments) == 1
        assert isinstance(ir.segments[0], InelasticSegment)

    def test_missing_entry_control(self):
        with pytest.raises(SemanticError, match="no control named"):
            make_ir("struct metadata { bit<32> x; }", entry="Ingress")

    def test_constant_bound_loop_unrolls_statically(self):
        ir = make_ir(
            """
            const int N = 3;
            struct metadata { bit<32> x; bit<32>[N] y; }
            register<bit<8>>[16][N] regs;
            action t()[int i] { regs[i].write(meta.x, i); }
            control Ingress(inout metadata meta) {
                apply { for (i < N) { t()[i]; } }
            }
            """
        )
        assert all(isinstance(s, InelasticSegment) for s in ir.segments)
        instances = instantiate(ir, {})
        assert [i.name for i in instances] == ["t_0", "t_1", "t_2"]
        assert [sorted(i.registers) for i in instances] == [
            [("regs", 0)], [("regs", 1)], [("regs", 2)],
        ]

    def test_directly_nested_loops_rejected(self):
        with pytest.raises(SemanticError, match="nested"):
            make_ir(
                """
                symbolic int a;
                symbolic int b;
                struct metadata { bit<32> x; }
                control Ingress(inout metadata meta) {
                    apply {
                        for (i < a) { for (j < b) { meta.x = 1; } }
                    }
                }
                """
            )


class TestInstantiation:
    def test_iteration_substitution(self):
        ir = make_ir(CMS_LIKE)
        instances = instantiate(ir, {"rows": 2})
        touch1 = next(i for i in instances if i.label == "touch[1]")
        assert ("sk", 1) in touch1.registers
        assert "meta.count[1]" in touch1.writes

    def test_program_order_preserved(self):
        ir = make_ir(CMS_LIKE)
        instances = instantiate(ir, {"rows": 2})
        labels = [i.label for i in instances]
        assert labels == ["op1", "touch[0]", "touch[1]", "pick[0]", "pick[1]"]
        orders = [i.source_order for i in instances]
        assert orders == sorted(orders)

    def test_guard_specialized_per_iteration(self):
        ir = make_ir(CMS_LIKE)
        pick0 = next(
            i for i in instantiate(ir, {"rows": 1}) if i.label == "pick[0]"
        )
        assert pick0.guard is not None
        assert "meta.count[0]" in pick0.reads
        assert "meta.min" in pick0.reads

    def test_missing_count_defaults_to_one(self):
        ir = make_ir(CMS_LIKE)
        instances = instantiate(ir, {})
        assert sum(1 for i in instances if i.name == "touch") == 1


class TestEffects:
    def test_costs(self):
        ir = make_ir(CMS_LIKE)
        instances = instantiate(ir, {"rows": 1})
        touch = next(i for i in instances if i.name == "touch")
        assert touch.cost.stateful_ops == 1
        pick = next(i for i in instances if i.name == "pick")
        assert pick.cost.stateful_ops == 0
        assert pick.cost.stateless_ops == 1

    def test_hash_counted(self):
        ir = make_ir(
            """
            struct metadata { bit<32> a; bit<32> b; }
            control Ingress(inout metadata meta) {
                apply { meta.b = hash(1, meta.a); }
            }
            """
        )
        (inst,) = instantiate(ir, {})
        assert inst.cost.hash_ops == 1

    def test_guarded_min_classified(self):
        ir = make_ir(CMS_LIKE)
        pick = next(
            i for i in instantiate(ir, {"rows": 1}) if i.name == "pick"
        )
        assert pick.commutative["meta.min"] == UpdateKind.MIN

    def test_increment_classified(self):
        ir = make_ir(
            """
            struct metadata { bit<32> acc; bit<32> x; }
            control Ingress(inout metadata meta) {
                apply { meta.acc = meta.acc + meta.x; }
            }
            """
        )
        (inst,) = instantiate(ir, {})
        assert inst.commutative["meta.acc"] == UpdateKind.ADD

    def test_or_fold_classified(self):
        ir = make_ir(
            """
            struct metadata { bit<1> hit; bit<32> x; }
            control Ingress(inout metadata meta) {
                apply { meta.hit = meta.hit | (meta.x == 3 ? 1 : 0); }
            }
            """
        )
        (inst,) = instantiate(ir, {})
        assert inst.commutative["meta.hit"] == UpdateKind.OR

    def test_plain_overwrite_classified(self):
        ir = make_ir(
            """
            struct metadata { bit<32> a; bit<32> b; }
            control Ingress(inout metadata meta) {
                apply { meta.a = meta.b; }
            }
            """
        )
        (inst,) = instantiate(ir, {})
        assert inst.commutative["meta.a"] == UpdateKind.PLAIN


class TestSubstitute:
    def test_name_replacement_is_deep(self):
        expr = parse_program(
            "control C(inout metadata m) { apply { m.a = i + i * 2; } }"
        ).control("C").apply.stmts[0]
        replaced = substitute(expr, {"i": ast.IntLit(value=3)})
        names = [n.ident for n in ast.walk(replaced) if isinstance(n, ast.Name)]
        assert "i" not in names

    def test_original_ast_untouched(self):
        stmt = parse_program(
            "control C(inout metadata m) { apply { m.a = i; } }"
        ).control("C").apply.stmts[0]
        substitute(stmt, {"i": ast.IntLit(value=1)})
        assert isinstance(stmt.value, ast.Name)
