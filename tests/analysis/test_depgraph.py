"""Dependency-graph structure and longest-simple-path tests."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.analysis.depgraph import DependencyGraph
from repro.analysis.ir import ActionInstance


def make_instance(uid: int, name: str) -> ActionInstance:
    return ActionInstance(uid=uid, name=name, body=[], source_order=uid)


def build_graph(num_nodes: int, precedence=(), exclusion=(), names=None):
    g = DependencyGraph()
    nodes = []
    for i in range(num_nodes):
        name = names[i] if names else f"n{i}"
        nodes.append(g.add_node([make_instance(i, name)]))
    for a, b in precedence:
        g.add_precedence(nodes[a], nodes[b])
    for a, b in exclusion:
        g.add_exclusion(nodes[a], nodes[b])
    return g, nodes


def brute_force_longest_path(num_nodes, precedence, exclusion) -> int:
    """Reference longest-simple-path by trying every node permutation
    prefix (exponential — keep num_nodes tiny)."""
    succ = {i: set() for i in range(num_nodes)}
    for a, b in precedence:
        succ[a].add(b)
    for a, b in exclusion:
        succ[a].add(b)
        succ[b].add(a)

    best = 0

    def dfs(node, visited):
        nonlocal best
        best = max(best, len(visited))
        for nxt in succ[node]:
            if nxt not in visited:
                dfs(nxt, visited | {nxt})

    for start in range(num_nodes):
        dfs(start, {start})
    return best if num_nodes else 0


class TestStructure:
    def test_precedence_dominates_exclusion(self):
        g, nodes = build_graph(2, precedence=[(0, 1)])
        g.add_exclusion(nodes[0], nodes[1])  # should be ignored
        assert len(g.exclusion_edges()) == 0
        assert len(g.precedence_edges()) == 1

    def test_self_edges_ignored(self):
        g, nodes = build_graph(1)
        g.add_precedence(nodes[0], nodes[0])
        g.add_exclusion(nodes[0], nodes[0])
        assert not g.precedence_edges() and not g.exclusion_edges()

    def test_cycle_detection(self):
        g, _ = build_graph(3, precedence=[(0, 1), (1, 2), (2, 0)])
        assert g.has_cycle()
        g2, _ = build_graph(3, precedence=[(0, 1), (1, 2)])
        assert not g2.has_cycle()


class TestLongestPath:
    def test_empty_graph(self):
        g = DependencyGraph()
        assert g.longest_simple_path() == 0

    def test_single_node(self):
        g, _ = build_graph(1)
        assert g.longest_simple_path() == 1

    def test_chain(self):
        g, _ = build_graph(4, precedence=[(0, 1), (1, 2), (2, 3)])
        assert g.longest_simple_path() == 4

    def test_exclusion_clique_traversable(self):
        # A clique of k mutually-excluded nodes admits a k-node path.
        g, _ = build_graph(4, exclusion=list(itertools.combinations(range(4), 2)))
        assert g.longest_simple_path() == 4

    def test_figure9_shape(self):
        # incr_i -> min_i; min_i <-> min_j: path incr,min,min,min = K+1.
        k = 3
        precedence = [(i, k + i) for i in range(k)]
        exclusion = list(
            itertools.combinations(range(k, 2 * k), 2)
        )
        names = [f"incr" for _ in range(k)] + [f"min" for _ in range(k)]
        g, _ = build_graph(2 * k, precedence=precedence, exclusion=exclusion,
                           names=names)
        assert g.longest_simple_path() == k + 1

    def test_cutoff_early_exit(self):
        g, _ = build_graph(6, precedence=[(i, i + 1) for i in range(5)])
        # With cutoff 3, anything > 3 may be reported as 4.
        assert g.longest_simple_path(cutoff=3) == 4

    def test_disconnected_components(self):
        g, _ = build_graph(5, precedence=[(0, 1), (2, 3)])
        assert g.longest_simple_path() == 2

    @settings(max_examples=60, deadline=None)
    @given(
        num_nodes=st.integers(min_value=1, max_value=6),
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.booleans()),
            max_size=10,
        ),
    )
    def test_matches_brute_force(self, num_nodes, edges):
        """Exact search (with symmetry pruning) never *exceeds* brute force
        and matches it when node templates are distinct (no symmetry)."""
        precedence, exclusion = [], []
        for a, b, is_prec in edges:
            a %= num_nodes
            b %= num_nodes
            if a == b:
                continue
            if is_prec:
                precedence.append((a, b))
            else:
                exclusion.append(tuple(sorted((a, b))))
        # Distinct names -> no symmetry classes -> search must be exact.
        g, _ = build_graph(num_nodes, precedence=precedence,
                           exclusion=exclusion)
        # Recompute the edges the graph actually kept (precedence dominates).
        kept_prec = [(a.node_id, b.node_id) for a, b in g.precedence_edges()]
        kept_excl = [(a.node_id, b.node_id) for a, b in g.exclusion_edges()]
        expected = brute_force_longest_path(num_nodes, kept_prec, kept_excl)
        assert g.longest_simple_path() == expected

    @settings(max_examples=30, deadline=None)
    @given(k=st.integers(min_value=1, max_value=8))
    def test_symmetric_clique_paths_exact_under_pruning(self, k):
        # All nodes share a template -> symmetry pruning engaged; the
        # result must still be exact for the clique.
        g, _ = build_graph(
            k,
            exclusion=list(itertools.combinations(range(k), 2)),
            names=["same"] * k,
        )
        assert g.longest_simple_path() == k
