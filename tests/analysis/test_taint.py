"""Unit tests for the module-ownership taint analysis.

The star witness is the acceptance-criterion pair: tenant A deposits
register-derived state into a metadata field that feeds tenant B's hash
key. No register is *named* across the module boundary, so the legacy
name-based isolation check accepts the pair — the semantic taint pass
must reject it with a witness path.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_ir, instantiate
from repro.analysis.taint import (
    APP_MODULE,
    FlowDiagnostic,
    cross_module_flows,
    field_owner,
    propagate_taint,
    taint_program,
)
from repro.lang import check_program, parse_program
from repro.lang.symbols import ModuleNamespace

#: Pre-linked view of the leak: alpha's register value lands in
#: ``meta.shared_val``; beta hashes on it.
LEAKY_SOURCE = """\
symbolic int a_rows;
assume a_rows >= 1 && a_rows <= 1;
symbolic int b_slots;
assume b_slots >= 256 && b_slots <= 256;

struct metadata {
    bit<32> flow_id;
    bit<32> shared_val;
    bit<1> b_seen;
}

register<bit<32>>[1024][a_rows] a_reg;
register<bit<1>>[b_slots][1] b_reg;

action a_bump()[int i] {
    a_reg[i].add_read(meta.shared_val, hash(i, meta.flow_id), 1);
}

action b_set() {
    b_reg[0].swap(meta.b_seen, hash(7, meta.shared_val), 1);
}

control Ingress(inout metadata meta) {
    apply {
        for (i < a_rows) { a_bump()[i]; }
        b_set();
    }
}

optimize(a_rows * 1024 + b_slots);
"""


def _namespace(beta_owner: str = "beta") -> ModuleNamespace:
    return ModuleNamespace(
        modules=["alpha", "beta"],
        registers={"a_reg": "alpha", "b_reg": "beta"},
        actions={"a_bump": "alpha", "b_set": beta_owner},
        fields={"shared_val": "alpha", "b_seen": "beta"},
    )


def _instances(counts=None):
    info = check_program(parse_program(LEAKY_SOURCE, "leaky"))
    ir = build_ir(info, "Ingress")
    return ir, instantiate(ir, counts or {"a_rows": 1})


class TestPropagation:
    def test_registers_seed_their_owner(self):
        _, instances = _instances()
        result = propagate_taint(instances, _namespace())
        assert result.register_taint["a_reg"] >= {"alpha"}
        assert result.register_taint["b_reg"] >= {"beta"}

    def test_state_flows_through_metadata_into_foreign_sinks(self):
        _, instances = _instances()
        result = propagate_taint(instances, _namespace())
        # alpha's register value reaches its own output field...
        assert "alpha" in result.field_taint["meta.shared_val"]
        # ...and from there beta's hash key carries it into beta's state.
        assert "alpha" in result.field_taint["meta.b_seen"]
        assert "alpha" in result.register_taint["b_reg"]

    def test_taint_program_matches_manual_instantiation(self):
        ir, instances = _instances()
        ns = _namespace()
        via_helper = taint_program(ir, {"a_rows": 1}, ns)
        manual = propagate_taint(instances, ns)
        assert via_helper.normalized() == manual.normalized()


class TestFlows:
    def test_semantic_pass_rejects_what_name_check_accepts(self):
        """The acceptance criterion: A writes a field feeding B's hash
        key. The name-based sweep sees no foreign register reference;
        the taint pass reports the flow with a witness."""
        from repro.link.linker import _check_isolation_names
        from repro.link.moduleir import module_ir_from_source

        from tests.property.generators import (
            leaky_reader_source,
            writer_module_source,
        )

        irs = [
            module_ir_from_source("alpha", writer_module_source("alpha")),
            module_ir_from_source(
                "beta", leaky_reader_source("beta", "alpha")),
        ]
        owner = {
            name: mod
            for ir in irs
            for name, (kind, mod) in ir.symbol_labels().items()
            if kind == "register"
        }
        assert _check_isolation_names(irs, owner, False, frozenset()) == []

        _, instances = _instances()
        ns = _namespace()
        flows = cross_module_flows(propagate_taint(instances, ns), ns)
        assert flows, "semantic pass must report the metadata leak"
        assert {(f.source, f.sink_module) for f in flows} == {
            ("alpha", "beta")
        }

    def test_witness_path_traces_back_to_the_register(self):
        _, instances = _instances()
        ns = _namespace()
        flows = cross_module_flows(propagate_taint(instances, ns), ns)
        by_sink = {f.sink: f for f in flows}
        flow = by_sink["meta.b_seen"]
        assert flow.witness[0] == "a_reg"
        assert flow.witness[-1] == "meta.b_seen"
        assert "meta.shared_val" in flow.witness
        assert any(v.startswith("b_set") for v in flow.via)
        text = flow.witness_text()
        assert text.startswith("a_reg") and "-[" in text

    def test_flows_are_deterministically_ordered(self):
        _, instances = _instances()
        ns = _namespace()
        result = propagate_taint(instances, ns)
        first = cross_module_flows(result, ns)
        second = cross_module_flows(result, ns)
        assert first == second
        assert first == sorted(
            first,
            key=lambda f: (f.source, f.sink_module, f.sink_kind, f.sink),
        )


class TestDeclassification:
    def test_app_owned_instances_propagate_nothing(self):
        """When the reader is app glue, combining modules is sanctioned:
        the same dataflow produces zero cross-module flows."""
        _, instances = _instances()
        ns = _namespace(beta_owner=APP_MODULE)
        result = propagate_taint(instances, ns)
        flows = cross_module_flows(result, ns)
        assert flows == []
        assert "alpha" not in result.register_taint["b_reg"]

    def test_unattributed_instances_propagate_nothing(self):
        _, instances = _instances()
        ns = _namespace()
        ns.actions.pop("b_set")  # b_set now resolves to no module
        ns.registers.pop("b_reg")
        ns.fields.pop("b_seen")
        result = propagate_taint(instances, ns)
        assert cross_module_flows(result, ns) == []


class TestHelpers:
    def test_field_owner_strips_prefix_and_index(self):
        ns = _namespace()
        assert field_owner("meta.shared_val", ns) == "alpha"
        assert field_owner("shared_val", ns) == "alpha"
        assert field_owner("meta.b_seen[2]", ns) == "beta"
        assert field_owner("meta.unknown", ns) is None

    def test_flow_diagnostic_render(self):
        flow = FlowDiagnostic(
            source="ctr", sink_module="spy", sink_kind="field",
            sink="meta.spy_val",
            witness=("ctr_reg", "meta.spy_val"), via=("spy_read[0]",),
        )
        assert flow.witness_text() == (
            "ctr_reg -[spy_read[0]]-> meta.spy_val"
        )
        rendered = str(flow)
        assert "'ctr'" in rendered and "'spy'" in rendered

    def test_empty_witness_falls_back_to_sink(self):
        flow = FlowDiagnostic(source="a", sink_module="b",
                              sink_kind="register", sink="b_reg")
        assert flow.witness_text() == "b_reg"
