"""PHV liveness-analysis tests."""

import pytest

from repro.analysis.liveness import analyze_phv_liveness
from repro.core import compile_source
from repro.pisa.resources import small_target
from repro.structures import CMS_SOURCE


@pytest.fixture(scope="module")
def cms_report():
    compiled = compile_source(CMS_SOURCE, small_target(stages=6, memory_kb=32))
    return compiled, analyze_phv_liveness(compiled)


class TestLiveIntervals:
    def test_allocated_bits_match_layout(self, cms_report):
        compiled, report = cms_report
        rows = compiled.symbol_values["cms_rows"]
        # flow_id + min + rows x (index + count), all 32-bit.
        assert report.allocated_bits == 32 * (2 + 2 * rows)

    def test_input_field_live_from_stage_zero(self, cms_report):
        _compiled, report = cms_report
        flow = report.fields["meta.flow_id"]
        assert flow.first_def is None          # never written by the program
        assert flow.live_range[0] == 0

    def test_per_iteration_count_lives_incr_to_min(self, cms_report):
        compiled, report = cms_report
        stages = {u.label: u.stage for u in compiled.units}
        count0 = report.fields["meta.cms_count[0]"]
        assert count0.live_range == (
            stages["cms_incr[0]"], stages["cms_take_min[0]"]
        )

    def test_min_live_to_last_take(self, cms_report):
        compiled, report = cms_report
        last_take = max(
            u.stage for u in compiled.units if u.instance.name == "cms_take_min"
        )
        assert report.fields["meta.cms_min"].live_range[1] == last_take

    def test_peak_never_exceeds_allocation(self, cms_report):
        _compiled, report = cms_report
        assert 0 < report.peak_bits <= report.allocated_bits

    def test_reuse_savings_positive_for_staggered_fields(self, cms_report):
        # Per-iteration index/count fields die as soon as their take_min
        # consumes them, so recycling must save something.
        _compiled, report = cms_report
        assert report.reuse_savings_bits > 0
        assert 0 < report.reuse_savings_fraction < 1

    def test_format_lists_fields(self, cms_report):
        _compiled, report = cms_report
        text = report.format()
        assert "meta.cms_min" in text
        assert "reuse would save" in text


class TestUnusedField:
    def test_declared_but_untouched_field(self):
        source = """
        struct metadata { bit<32> a; bit<32> b; bit<16> ghost; }
        control Ingress(inout metadata meta) {
            apply { meta.b = meta.a + 1; }
        }
        """
        compiled = compile_source(source, small_target(stages=4, memory_kb=8))
        report = analyze_phv_liveness(compiled)
        assert report.fields["meta.ghost"].live_range is None
        assert not report.fields["meta.ghost"].live_at(0)
