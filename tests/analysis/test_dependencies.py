"""Pair classification and graph construction from instances."""

import pytest

from repro.analysis import (
    AnalysisError,
    build_dependency_graph,
    build_ir,
    classify_pair,
    instantiate,
)
from repro.lang import check_program, parse_program


def instances_of(source: str, counts=None):
    ir = build_ir(check_program(parse_program(source)), "Ingress")
    return instantiate(ir, counts or {})


class TestClassifyPair:
    def _pair(self, source, counts=None):
        insts = instances_of(source, counts)
        assert len(insts) >= 2
        return insts[0], insts[1]

    def test_raw_is_precedence(self):
        a, b = self._pair(
            """
            struct metadata { bit<32> x; bit<32> y; bit<32> z; }
            control Ingress(inout metadata meta) {
                apply { meta.x = meta.z; meta.y = meta.x; }
            }
            """
        )
        assert classify_pair(a, b) == "precedence"

    def test_war_is_precedence(self):
        a, b = self._pair(
            """
            struct metadata { bit<32> x; bit<32> y; bit<32> z; }
            control Ingress(inout metadata meta) {
                apply { meta.y = meta.x; meta.x = meta.z; }
            }
            """
        )
        assert classify_pair(a, b) == "precedence"

    def test_plain_waw_is_precedence(self):
        a, b = self._pair(
            """
            struct metadata { bit<32> x; bit<32> a; bit<32> b; }
            control Ingress(inout metadata meta) {
                apply { meta.x = meta.a; meta.x = meta.b; }
            }
            """
        )
        assert classify_pair(a, b) == "precedence"

    def test_commutative_adds_are_exclusion(self):
        a, b = self._pair(
            """
            struct metadata { bit<32> acc; bit<32> u; bit<32> v; }
            control Ingress(inout metadata meta) {
                apply { meta.acc = meta.acc + meta.u; meta.acc = meta.acc + meta.v; }
            }
            """
        )
        assert classify_pair(a, b) == "exclusion"

    def test_mixed_update_kinds_are_precedence(self):
        a, b = self._pair(
            """
            struct metadata { bit<32> acc; bit<32> u; }
            control Ingress(inout metadata meta) {
                apply { meta.acc = meta.acc + meta.u; meta.acc = min(meta.acc, meta.u); }
            }
            """
        )
        assert classify_pair(a, b) == "precedence"

    def test_independent_is_none(self):
        a, b = self._pair(
            """
            struct metadata { bit<32> a; bit<32> b; bit<32> c; bit<32> d; }
            control Ingress(inout metadata meta) {
                apply { meta.a = meta.c; meta.b = meta.d; }
            }
            """
        )
        assert classify_pair(a, b) is None


class TestGraphConstruction:
    SHARED_REGISTER = """
    struct metadata { bit<32> k; bit<32> a; bit<32> b; }
    register<bit<32>>[64] shared;
    action first() { shared.add(meta.k, 1); }
    action second() { shared.add(meta.a, 1); }
    control Ingress(inout metadata meta) {
        apply { first(); second(); }
    }
    """

    def test_same_register_merges_nodes(self):
        graph = build_dependency_graph(instances_of(self.SHARED_REGISTER))
        assert graph.num_nodes == 1
        assert len(graph.nodes[0].instances) == 2

    def test_intra_node_ordering_conflict_raises(self):
        source = """
        struct metadata { bit<32> k; bit<32> a; }
        register<bit<32>>[64] shared;
        action first() { shared.read(meta.a, meta.k); }
        action second() { shared.write(meta.k, meta.a); }
        control Ingress(inout metadata meta) {
            apply { first(); second(); }
        }
        """
        # second reads meta.a written by first, yet both must share a
        # stage (common register) — contradiction.
        with pytest.raises(AnalysisError, match="ordering dependency"):
            build_dependency_graph(instances_of(source))

    def test_exclusion_as_precedence_mode(self):
        source = """
        symbolic int n;
        struct metadata { bit<32> acc; bit<32>[n] v; }
        action fold()[int i] { meta.acc = meta.acc + meta.v[i]; }
        control Ingress(inout metadata meta) {
            apply { for (i < n) { fold()[i]; } }
        }
        """
        insts = instances_of(source, {"n": 3})
        full = build_dependency_graph(insts)
        assert len(full.exclusion_edges()) == 3
        assert len(full.precedence_edges()) == 0
        degraded = build_dependency_graph(insts, exclusion_as_precedence=True)
        assert len(degraded.exclusion_edges()) == 0
        assert len(degraded.precedence_edges()) == 3

    def test_guard_read_creates_control_dependency(self):
        source = """
        struct metadata { bit<32> a; bit<32> b; bit<32> c; }
        control Ingress(inout metadata meta) {
            apply {
                meta.a = meta.c;
                if (meta.a == 1) { meta.b = 2; }
            }
        }
        """
        graph = build_dependency_graph(instances_of(source))
        assert len(graph.precedence_edges()) == 1
