"""Elastic-array index bounds verification tests (§7 future work)."""

import pytest

from repro.analysis import build_ir
from repro.analysis.bounds_check import (
    IndexBoundsError,
    check_index_bounds,
    collect_index_diagnostics,
)
from repro.lang import check_program, parse_program
from repro.structures import CMS_SOURCE


def ir_for(source: str):
    return build_ir(check_program(parse_program(source)), "Ingress")


class TestCleanPrograms:
    def test_cms_is_in_bounds_at_any_count(self):
        ir = ir_for(CMS_SOURCE)
        for rows in (1, 2, 4):
            assert collect_index_diagnostics(ir, {"cms_rows": rows}) == []

    def test_constant_indexing_within_extent(self):
        ir = ir_for(
            """
            const int N = 3;
            struct metadata { bit<32> x; bit<32>[N] arr; }
            control Ingress(inout metadata meta) {
                apply { meta.arr[2] = meta.x; }
            }
            """
        )
        assert collect_index_diagnostics(ir, {}) == []


class TestViolations:
    OOB = """
    const int N = 3;
    struct metadata { bit<32> x; bit<32>[N] arr; }
    control Ingress(inout metadata meta) {
        apply { meta.arr[5] = meta.x; }
    }
    """

    def test_constant_out_of_bounds_detected(self):
        ir = ir_for(self.OOB)
        (diag,) = collect_index_diagnostics(ir, {})
        assert diag.index == 5 and diag.extent == 3
        assert "out of bounds" in str(diag)
        with pytest.raises(IndexBoundsError, match="out of bounds"):
            check_index_bounds(ir, {})

    def test_register_instance_out_of_bounds(self):
        ir = ir_for(
            """
            const int N = 2;
            struct metadata { bit<32> x; }
            register<bit<8>>[16][N] regs;
            control Ingress(inout metadata meta) {
                apply { regs[3].write(meta.x, 1); }
            }
            """
        )
        (diag,) = collect_index_diagnostics(ir, {})
        assert diag.array == "regs" and diag.index == 3 and diag.extent == 2

    def test_data_dependent_index_reported(self):
        ir = ir_for(
            """
            const int N = 4;
            struct metadata { bit<32> x; bit<32>[N] arr; }
            control Ingress(inout metadata meta) {
                apply { meta.arr[meta.x] = 1; }
            }
            """
        )
        (diag,) = collect_index_diagnostics(ir, {})
        assert diag.index is None
        assert "not a compile-time constant" in str(diag)

    def test_loop_variable_stays_in_bounds(self):
        # The iteration index is exactly the array extent's symbolic, so
        # every unrolled instance indexes within bounds by construction —
        # the checker proves it.
        ir = ir_for(
            """
            symbolic int n;
            struct metadata { bit<32> x; bit<32>[n] arr; }
            action put()[int i] { meta.arr[i] = meta.x; }
            control Ingress(inout metadata meta) {
                apply { for (i < n) { put()[i]; } }
            }
            """
        )
        assert collect_index_diagnostics(ir, {"n": 8}) == []

    def test_off_by_one_via_offset_index(self):
        ir = ir_for(
            """
            symbolic int n;
            struct metadata { bit<32> x; bit<32>[n] arr; }
            action put()[int i] { meta.arr[i + 1] = meta.x; }
            control Ingress(inout metadata meta) {
                apply { for (i < n) { put()[i]; } }
            }
            """
        )
        diags = collect_index_diagnostics(ir, {"n": 3})
        # Only the final iteration (i = 2 -> index 3) escapes the extent.
        assert len(diags) == 1
        assert diags[0].index == 3 and diags[0].extent == 3
