"""DOT-export tests."""

from repro.analysis import (
    build_dependency_graph,
    build_ir,
    graph_to_dot,
    instantiate,
)
from repro.lang import check_program, parse_program
from repro.structures import CMS_SOURCE


def cms_graph(rows: int):
    ir = build_ir(check_program(parse_program(CMS_SOURCE)), "Ingress")
    insts = [i for i in instantiate(ir, {"cms_rows": rows})
             if i.symbolic == "cms_rows"]
    return build_dependency_graph(insts)


class TestGraphToDot:
    def test_structure(self):
        dot = graph_to_dot(cms_graph(2), title="cms")
        assert dot.startswith('digraph "cms" {')
        assert dot.rstrip().endswith("}")

    def test_all_nodes_present(self):
        graph = cms_graph(3)
        dot = graph_to_dot(graph)
        for node in graph.nodes:
            assert f'label="{node.label}"' in dot

    def test_edge_styles(self):
        dot = graph_to_dot(cms_graph(2))
        directed = [l for l in dot.splitlines()
                    if "->" in l and "style=dashed" not in l and "label" not in l]
        dashed = [l for l in dot.splitlines() if "style=dashed" in l]
        assert len(directed) == 2   # incr_i -> min_i
        assert len(dashed) == 1     # min_0 <-> min_1

    def test_quotes_escaped(self):
        from repro.analysis.depgraph import DependencyGraph
        from repro.analysis.ir import ActionInstance

        g = DependencyGraph()
        g.add_node([ActionInstance(uid=0, name='odd"name', body=[])])
        dot = graph_to_dot(g)
        assert '\\"' in dot


class TestTaintRendering:
    def _flow(self):
        from repro.analysis.taint import FlowDiagnostic

        return FlowDiagnostic(
            source="ctr", sink_module="spy", sink_kind="field",
            sink="meta.spy_val",
            witness=("ctr_reg", "meta.spy_val"),
            via=("spy_read[0]",),
        )

    def test_module_coloring(self):
        graph = cms_graph(2)
        modules = {i.label: "cms" for n in graph.nodes
                   for i in n.instances}
        dot = graph_to_dot(graph, modules=modules)
        assert "style=filled" in dot and "fillcolor=" in dot
        # Every node line carries the module's fill color.
        node_lines = [l for l in dot.splitlines()
                      if l.strip().startswith("n") and "label=" in l
                      and "->" not in l]
        assert all("fillcolor=" in l for l in node_lines)

    def test_distinct_modules_get_distinct_colors(self):
        graph = cms_graph(2)
        labels = sorted(i.label for n in graph.nodes
                        for i in n.instances)
        half = len(labels) // 2
        modules = {l: ("a" if i < half else "b")
                   for i, l in enumerate(labels)}
        dot = graph_to_dot(graph, modules=modules)
        colors = {l.split("fillcolor=")[1] for l in dot.splitlines()
                  if "fillcolor=" in l}
        assert len(colors) == 2

    def test_default_rendering_unchanged(self):
        graph = cms_graph(2)
        assert graph_to_dot(graph) == graph_to_dot(
            graph, modules=None, flow_edges=None
        )

    def test_flow_edges_highlighted(self):
        graph = cms_graph(2)
        edges = list(graph.precedence_edges())
        src, dst = edges[0]
        pair = (src.instances[0].label, dst.instances[0].label)
        dot = graph_to_dot(graph, flow_edges={pair})
        hot = [l for l in dot.splitlines()
               if "color=red" in l and "penwidth" in l]
        assert len(hot) == 1

    def test_flow_to_dot_witness_path(self):
        from repro.analysis import flow_to_dot

        dot = flow_to_dot(self._flow())
        assert dot.startswith("digraph")
        assert 'label="ctr_reg", shape=cylinder' in dot
        assert 'label="meta.spy_val", shape=ellipse' in dot
        assert 'label="spy_read[0]", color=red' in dot
        # The sink is outlined.
        assert "color=red, penwidth=2.0" in dot

    def test_flow_to_dot_handles_empty_witness(self):
        from repro.analysis import flow_to_dot
        from repro.analysis.taint import FlowDiagnostic

        flow = FlowDiagnostic(source="a", sink_module="b",
                              sink_kind="register", sink="b_reg")
        dot = flow_to_dot(flow)
        assert 'label="b_reg", shape=cylinder' in dot

    def test_witness_edges_pairs_consecutive_carriers(self):
        from repro.analysis import witness_edges
        from repro.analysis.taint import FlowDiagnostic

        flow = FlowDiagnostic(
            source="a", sink_module="b", sink_kind="field", sink="f",
            witness=("a_reg", "meta.x", "meta.y"),
            via=("a_act[0]", "b_act"),
        )
        assert witness_edges([flow]) == {("a_act[0]", "b_act")}
        assert witness_edges([self._flow()]) == set()
