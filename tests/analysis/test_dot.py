"""DOT-export tests."""

from repro.analysis import (
    build_dependency_graph,
    build_ir,
    graph_to_dot,
    instantiate,
)
from repro.lang import check_program, parse_program
from repro.structures import CMS_SOURCE


def cms_graph(rows: int):
    ir = build_ir(check_program(parse_program(CMS_SOURCE)), "Ingress")
    insts = [i for i in instantiate(ir, {"cms_rows": rows})
             if i.symbolic == "cms_rows"]
    return build_dependency_graph(insts)


class TestGraphToDot:
    def test_structure(self):
        dot = graph_to_dot(cms_graph(2), title="cms")
        assert dot.startswith('digraph "cms" {')
        assert dot.rstrip().endswith("}")

    def test_all_nodes_present(self):
        graph = cms_graph(3)
        dot = graph_to_dot(graph)
        for node in graph.nodes:
            assert f'label="{node.label}"' in dot

    def test_edge_styles(self):
        dot = graph_to_dot(cms_graph(2))
        directed = [l for l in dot.splitlines()
                    if "->" in l and "style=dashed" not in l and "label" not in l]
        dashed = [l for l in dot.splitlines() if "style=dashed" in l]
        assert len(directed) == 2   # incr_i -> min_i
        assert len(dashed) == 1     # min_0 <-> min_1

    def test_quotes_escaped(self):
        from repro.analysis.depgraph import DependencyGraph
        from repro.analysis.ir import ActionInstance

        g = DependencyGraph()
        g.add_node([ActionInstance(uid=0, name='odd"name', body=[])])
        dot = graph_to_dot(g)
        assert '\\"' in dot
