"""Zipf workload tests."""

import numpy as np
import pytest

from repro.workloads import ZipfGenerator, zipf_trace


class TestZipfGenerator:
    def test_deterministic_for_seed(self):
        a = ZipfGenerator(1000, alpha=1.0, seed=3).sample(500)
        b = ZipfGenerator(1000, alpha=1.0, seed=3).sample(500)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ZipfGenerator(1000, seed=1).sample(500)
        b = ZipfGenerator(1000, seed=2).sample(500)
        assert not np.array_equal(a, b)

    def test_keys_in_universe_and_nonzero(self):
        keys = ZipfGenerator(100, seed=4).sample(2000)
        assert keys.min() >= 1
        assert keys.max() <= 100

    def test_skew_orders_frequencies(self):
        gen = ZipfGenerator(1000, alpha=1.2, seed=5)
        keys = gen.sample(50_000)
        unique, counts = np.unique(keys, return_counts=True)
        freq = dict(zip(unique, counts))
        hottest = gen.hottest(10)
        cold = [k for k in range(1, 1001) if k not in set(hottest[:100])][:10]
        hot_mass = sum(freq.get(k, 0) for k in hottest)
        cold_mass = sum(freq.get(k, 0) for k in cold)
        assert hot_mass > 10 * max(cold_mass, 1)

    def test_alpha_zero_is_uniformish(self):
        gen = ZipfGenerator(50, alpha=0.0, seed=6)
        keys = gen.sample(50_000)
        _, counts = np.unique(keys, return_counts=True)
        assert counts.max() < 2 * counts.min()

    def test_popularity_sums_to_one(self):
        gen = ZipfGenerator(20, alpha=1.0, seed=7)
        total = sum(gen.popularity(k) for k in range(1, 21))
        assert total == pytest.approx(1.0)

    def test_oracle_hit_rate_monotone(self):
        gen = ZipfGenerator(1000, alpha=1.0, seed=8)
        rates = [gen.optimal_hit_rate(n) for n in (0, 10, 100, 1000)]
        assert rates == sorted(rates)
        assert rates[0] == 0.0
        assert rates[-1] == pytest.approx(1.0)

    def test_oracle_matches_empirical(self):
        gen = ZipfGenerator(500, alpha=1.1, seed=9)
        keys = gen.sample(100_000)
        top = set(int(k) for k in gen.hottest(50))
        empirical = np.isin(keys, list(top)).mean()
        assert empirical == pytest.approx(gen.optimal_hit_rate(50), abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, alpha=-1)


def test_zipf_trace_convenience():
    trace = zipf_trace(1000, universe=100, seed=1)
    assert len(trace) == 1000
    assert trace.min() >= 1
