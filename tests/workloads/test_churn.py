"""Churning-Zipf workload tests."""

import numpy as np
import pytest

from repro.workloads.churn import ChurningZipf


class TestChurningZipf:
    def test_deterministic(self):
        a = ChurningZipf(1000, phase_packets=100, seed=3).sample(500)
        b = ChurningZipf(1000, phase_packets=100, seed=3).sample(500)
        assert np.array_equal(a, b)

    def test_rotations_counted(self):
        gen = ChurningZipf(1000, phase_packets=100, seed=4)
        gen.sample(450)
        assert gen.rotations == 4

    def test_hot_set_changes_after_rotation(self):
        gen = ChurningZipf(5000, phase_packets=100, churn=0.5,
                           hot_ranks=100, seed=5)
        before = set(int(k) for k in gen.hottest(100))
        gen.sample(100)  # triggers one rotation
        after = set(int(k) for k in gen.hottest(100))
        assert before != after
        # Roughly half the hot set survived.
        assert len(before & after) >= 20

    def test_zero_churn_is_stable(self):
        gen = ChurningZipf(1000, phase_packets=50, churn=0.0, seed=6)
        before = list(gen.hottest(50))
        gen.sample(500)
        assert list(gen.hottest(50)) == before

    def test_keys_stay_in_universe(self):
        gen = ChurningZipf(200, phase_packets=64, seed=7)
        keys = gen.sample(1000)
        assert keys.min() >= 1 and keys.max() <= 200

    def test_invalid_churn(self):
        with pytest.raises(ValueError):
            ChurningZipf(100, churn=1.5)
        with pytest.raises(ValueError):
            ChurningZipf(100, churn=-0.1)

    def test_churn_bounds_accepted(self):
        # Both endpoints of [0, 1] are legal.
        ChurningZipf(100, churn=0.0).sample(10)
        ChurningZipf(100, churn=1.0).sample(10)

    def test_split_sampling_matches_one_shot(self):
        # Drawing in pieces crosses phase boundaries at the same points
        # as one big draw, so the streams must be identical.
        one = ChurningZipf(1000, phase_packets=100, churn=0.4, seed=9)
        split = ChurningZipf(1000, phase_packets=100, churn=0.4, seed=9)
        whole = one.sample(450)
        parts = np.concatenate([split.sample(n) for n in (50, 200, 120, 80)])
        assert np.array_equal(whole, parts)
        assert one.rotations == split.rotations == 4

    def test_full_churn_replaces_hot_set(self):
        gen = ChurningZipf(5000, phase_packets=50, churn=1.0,
                           hot_ranks=100, seed=8)
        before = gen.hot_set()
        gen.sample(50)  # one rotation at churn=1.0
        after = gen.hot_set()
        assert before.isdisjoint(after)

    def test_churn_fraction_swaps_expected_count(self):
        gen = ChurningZipf(5000, phase_packets=50, churn=0.25,
                           hot_ranks=200, seed=10)
        before = gen.hot_set()
        gen.sample(50)
        survivors = before & gen.hot_set()
        # Exactly churn*hot_ranks ranks were swapped out; a swapped-in
        # cold key cannot collide with a surviving hot key.
        assert len(survivors) == 150

    def test_rotation_preserves_key_universe(self):
        gen = ChurningZipf(300, phase_packets=20, churn=0.5,
                           hot_ranks=50, seed=11)
        gen.sample(200)  # several rotations
        mapping = gen.generator._rank_to_key
        assert sorted(int(k) for k in mapping) == list(range(1, 301))

    def test_packets_sampled_counter(self):
        gen = ChurningZipf(100, phase_packets=64, seed=12)
        gen.sample(10)
        gen.sample(25)
        assert gen.packets_sampled == 35

    def test_hot_set_helper_defaults_to_hot_ranks(self):
        gen = ChurningZipf(1000, hot_ranks=40, seed=13)
        hot = gen.hot_set()
        assert len(hot) == 40
        assert hot == {int(k) for k in gen.hottest(40)}
