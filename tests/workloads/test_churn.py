"""Churning-Zipf workload tests."""

import numpy as np
import pytest

from repro.workloads.churn import ChurningZipf


class TestChurningZipf:
    def test_deterministic(self):
        a = ChurningZipf(1000, phase_packets=100, seed=3).sample(500)
        b = ChurningZipf(1000, phase_packets=100, seed=3).sample(500)
        assert np.array_equal(a, b)

    def test_rotations_counted(self):
        gen = ChurningZipf(1000, phase_packets=100, seed=4)
        gen.sample(450)
        assert gen.rotations == 4

    def test_hot_set_changes_after_rotation(self):
        gen = ChurningZipf(5000, phase_packets=100, churn=0.5,
                           hot_ranks=100, seed=5)
        before = set(int(k) for k in gen.hottest(100))
        gen.sample(100)  # triggers one rotation
        after = set(int(k) for k in gen.hottest(100))
        assert before != after
        # Roughly half the hot set survived.
        assert len(before & after) >= 20

    def test_zero_churn_is_stable(self):
        gen = ChurningZipf(1000, phase_packets=50, churn=0.0, seed=6)
        before = list(gen.hottest(50))
        gen.sample(500)
        assert list(gen.hottest(50)) == before

    def test_keys_stay_in_universe(self):
        gen = ChurningZipf(200, phase_packets=64, seed=7)
        keys = gen.sample(1000)
        assert keys.min() >= 1 and keys.max() <= 200

    def test_invalid_churn(self):
        with pytest.raises(ValueError):
            ChurningZipf(100, churn=1.5)
