"""Synthetic flow-trace tests."""

import numpy as np

from repro.workloads import synthesize_trace, true_flow_counts


class TestSynthesizeTrace:
    def test_ground_truth_consistent(self):
        trace = synthesize_trace(flows=100, mean_packets_per_flow=5, seed=1)
        counted = true_flow_counts(trace.flow_ids)
        assert counted == trace.flow_sizes

    def test_deterministic(self):
        a = synthesize_trace(flows=50, seed=2)
        b = synthesize_trace(flows=50, seed=2)
        assert np.array_equal(a.flow_ids, b.flow_ids)

    def test_heavy_tail_present(self):
        trace = synthesize_trace(flows=2000, mean_packets_per_flow=10,
                                 pareto_shape=1.2, seed=3)
        sizes = np.array(sorted(trace.flow_sizes.values(), reverse=True))
        top1pct = sizes[: max(len(sizes) // 100, 1)].sum()
        # The top 1% of flows should carry well above 1% of packets.
        assert top1pct > 0.1 * sizes.sum()

    def test_timestamps_sorted_and_bounded(self):
        trace = synthesize_trace(flows=50, duration=2.0, seed=4)
        ts = trace.timestamps
        assert np.all(np.diff(ts) >= 0)
        assert ts.max() <= 2.0

    def test_packet_iteration(self):
        trace = synthesize_trace(flows=10, mean_packets_per_flow=3, seed=5)
        packets = list(trace.packets())
        assert len(packets) == len(trace)
        assert all(p.fields["flow_id"] >= 1 for p in packets)
        assert all(64 <= p.length <= 1500 for p in packets)

    def test_heavy_flows_threshold(self):
        trace = synthesize_trace(flows=100, seed=6)
        heavy = trace.heavy_flows(threshold=50)
        for flow in heavy:
            assert trace.flow_sizes[flow] >= 50
