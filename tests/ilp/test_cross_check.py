"""Property test: both exact solvers agree on random small MILPs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ilp import LinExpr, Model, SolveStatus, VarType, solve


@st.composite
def random_milp(draw):
    """A small bounded MILP with random constraints and objective."""
    num_vars = draw(st.integers(min_value=1, max_value=4))
    m = Model("random")
    xs = []
    for i in range(num_vars):
        vartype = draw(st.sampled_from([VarType.BINARY, VarType.INTEGER]))
        ub = 1 if vartype is VarType.BINARY else draw(st.integers(1, 8))
        xs.append(m.add_var(f"x{i}", lb=0, ub=ub, vartype=vartype))
    num_constrs = draw(st.integers(min_value=0, max_value=4))
    for _ in range(num_constrs):
        coefs = [draw(st.integers(-3, 3)) for _ in xs]
        rhs = draw(st.integers(-5, 15))
        expr = LinExpr.total(c * x for c, x in zip(coefs, xs))
        sense = draw(st.sampled_from(["<=", ">="]))
        m.add_constr(expr <= rhs if sense == "<=" else expr >= rhs)
    obj_coefs = [draw(st.integers(-4, 4)) for _ in xs]
    m.maximize(LinExpr.total(c * x for c, x in zip(obj_coefs, xs)))
    return m


class TestSolverAgreement:
    @settings(max_examples=40, deadline=None)
    @given(random_milp())
    def test_backends_agree_on_objective(self, model):
        a = solve(model, backend="scipy")
        b = solve(model, backend="bb")
        assert a.status == b.status
        if a.status is SolveStatus.OPTIMAL:
            assert a.objective == pytest.approx(b.objective, abs=1e-5)
            assert a.check(model)
            assert b.check(model)
