"""Exact-solver tests for both backends."""

import math

import pytest

from repro.ilp import (
    LinExpr,
    Model,
    Solution,
    SolveStatus,
    SolverError,
    VarType,
    available_backends,
    solve,
)

BACKENDS = ("scipy", "bb")


def knapsack_model():
    m = Model("knapsack")
    weights = [3, 4, 5, 9, 4]
    values = [3, 6, 8, 10, 5]
    xs = [m.add_var(f"x{i}", vartype=VarType.BINARY) for i in range(5)]
    m.add_constr(LinExpr.total(w * x for w, x in zip(weights, xs)) <= 12)
    m.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
    return m, xs


@pytest.mark.parametrize("backend", BACKENDS)
class TestBothBackends:
    def test_knapsack_optimum(self, backend):
        m, xs = knapsack_model()
        sol = solve(m, backend=backend)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(17.0)
        assert [sol.int_value(x) for x in xs] == [1, 1, 1, 0, 0]
        assert sol.check(m)

    def test_infeasible(self, backend):
        m = Model()
        x = m.add_var("x", lb=0, ub=5, vartype=VarType.INTEGER)
        m.add_constr(x >= 3)
        m.add_constr(x <= 2)
        m.maximize(1 * x)
        assert solve(m, backend=backend).status is SolveStatus.INFEASIBLE

    def test_minimization(self, backend):
        m = Model()
        x = m.add_var("x", lb=0, ub=10, vartype=VarType.INTEGER)
        m.add_constr(2 * x >= 7)
        m.minimize(1 * x)
        sol = solve(m, backend=backend)
        assert sol.int_value(x) == 4

    def test_equality_constraints(self, backend):
        m = Model()
        x = m.add_var("x", ub=10, vartype=VarType.INTEGER)
        y = m.add_var("y", ub=10, vartype=VarType.INTEGER)
        m.add_constr(x + y == 7)
        m.add_constr(x - y == 1)
        m.maximize(1 * x)
        sol = solve(m, backend=backend)
        assert (sol.int_value(x), sol.int_value(y)) == (4, 3)

    def test_mixed_integer_continuous(self, backend):
        m = Model()
        x = m.add_var("x", ub=10)  # continuous
        y = m.add_var("y", ub=10, vartype=VarType.INTEGER)
        m.add_constr(x + y <= 5.5)
        m.maximize(x + 2 * y)
        sol = solve(m, backend=backend)
        assert sol.int_value(y) == 5
        assert sol.value(x) == pytest.approx(0.5)

    def test_pure_lp(self, backend):
        m = Model()
        x = m.add_var("x", ub=4.5)
        m.maximize(3 * x)
        sol = solve(m, backend=backend)
        assert sol.objective == pytest.approx(13.5)

    def test_big_m_indicator_pattern(self, backend):
        # The layout ILP's main linearization pattern must be exact.
        m = Model()
        placed = m.add_var("placed", vartype=VarType.BINARY)
        amount = m.add_var("amount", ub=100, vartype=VarType.INTEGER)
        m.add_constr(amount <= 100 * placed)
        m.add_constr(amount >= 30 - 100 * (1 - placed))
        m.maximize(amount - 20 * placed)
        sol = solve(m, backend=backend)
        assert sol.int_value(placed) == 1
        assert sol.int_value(amount) == 100


class TestBranchAndBoundSpecifics:
    def test_requires_finite_integer_bounds(self):
        m = Model()
        m.add_var("x", vartype=VarType.INTEGER)  # unbounded above
        m.maximize(LinExpr())
        with pytest.raises(SolverError, match="finite bounds"):
            solve(m, backend="bb")

    def test_node_limit_returns_timeout(self):
        m, _ = knapsack_model()
        from repro.ilp.solver_bb import solve_branch_and_bound

        sol = solve_branch_and_bound(m, max_nodes=0)
        assert sol.status in (SolveStatus.TIMEOUT, SolveStatus.OPTIMAL)

    def test_unbounded_lp_detected(self):
        m = Model()
        x = m.add_var("x")  # continuous unbounded
        m.maximize(1 * x)
        assert solve(m, backend="bb").status is SolveStatus.UNBOUNDED


class TestDispatcher:
    def test_available_backends_prefers_scipy(self):
        assert available_backends()[0] == "scipy"

    def test_unknown_backend(self):
        m, _ = knapsack_model()
        with pytest.raises(SolverError, match="unknown ILP backend"):
            solve(m, backend="cplex")

    def test_auto_resolves(self):
        m, _ = knapsack_model()
        assert solve(m, backend="auto").status is SolveStatus.OPTIMAL
