"""Solution-object helper tests."""

import pytest

from repro.ilp import LinExpr, Model, Solution, SolveStatus, VarType, solve


@pytest.fixture()
def solved():
    m = Model()
    x = m.add_var("x", ub=10, vartype=VarType.INTEGER)
    y = m.add_var("y", ub=10)
    m.add_constr(x + y <= 7.5)
    m.maximize(2 * x + y)
    return m, x, y, solve(m)


class TestSolution:
    def test_status_ok(self, solved):
        _m, _x, _y, sol = solved
        assert sol.status.ok
        assert not SolveStatus.INFEASIBLE.ok

    def test_value_accessors(self, solved):
        _m, x, y, sol = solved
        assert sol[x] == sol.value(x)
        assert sol.int_value(x) == 7
        assert isinstance(sol.int_value(x), int)

    def test_missing_var_default(self, solved):
        m2 = Model()
        other = m2.add_var("other")
        _m, _x, _y, sol = solved
        assert sol.value(other, default=3.5) == 3.5

    def test_check_against_model(self, solved):
        m, x, _y, sol = solved
        assert sol.check(m)
        # Tampering breaks feasibility.
        sol.values[x] = 99.0
        assert not sol.check(m)

    def test_repr_mentions_backend(self, solved):
        _m, _x, _y, sol = solved
        assert sol.backend in repr(sol)
