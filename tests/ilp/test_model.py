"""ILP modeling-layer tests."""

import math

import numpy as np
import pytest

from repro.ilp import LinExpr, Model, ModelError, Sense, VarType


class TestLinExpr:
    def test_arithmetic(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        expr = 2 * x + 3 * y - 4
        assert expr.terms[x] == 2
        assert expr.terms[y] == 3
        assert expr.constant == -4

    def test_subtraction_and_negation(self):
        m = Model()
        x = m.add_var("x")
        expr = 5 - x
        assert expr.terms[x] == -1 and expr.constant == 5
        assert (-expr).terms[x] == 1

    def test_total(self):
        m = Model()
        xs = [m.add_var(f"x{i}") for i in range(4)]
        expr = LinExpr.total(xs)
        assert all(expr.terms[x] == 1 for x in xs)

    def test_value_evaluation(self):
        m = Model()
        x = m.add_var("x")
        expr = 3 * x + 1
        assert expr.value({x: 2.0}) == 7.0
        assert expr.value({}) == 1.0

    def test_nonlinear_product_rejected(self):
        m = Model()
        x = m.add_var("x")
        with pytest.raises(ModelError, match="scalar"):
            (1 * x) * (1 * x)


class TestConstraints:
    def test_senses(self):
        m = Model()
        x = m.add_var("x")
        le = x <= 5
        ge = x >= 2
        eq = 1 * x == 3
        assert le.sense is Sense.LE
        assert ge.sense is Sense.GE
        assert eq.sense is Sense.EQ

    def test_satisfaction(self):
        m = Model()
        x = m.add_var("x")
        c = 2 * x <= 10
        assert c.satisfied({x: 5.0})
        assert not c.satisfied({x: 5.1})

    def test_cross_model_variable_rejected(self):
        m1, m2 = Model(), Model()
        x1 = m1.add_var("x")
        with pytest.raises(ModelError, match="another model"):
            m2.add_constr(x1 <= 1)

    def test_non_constraint_rejected(self):
        with pytest.raises(ModelError, match="expects a Constraint"):
            Model().add_constr(True)  # e.g. accidental `x == y` on floats


class TestModel:
    def test_binary_bounds_forced(self):
        m = Model()
        b = m.add_var("b", lb=-5, ub=9, vartype=VarType.BINARY)
        assert (b.lb, b.ub) == (0.0, 1.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ModelError, match="lb"):
            Model().add_var("x", lb=2, ub=1)

    def test_duplicate_names_disambiguated(self):
        m = Model()
        a = m.add_var("x")
        b = m.add_var("x")
        assert a.name != b.name

    def test_is_feasible_checks_everything(self):
        m = Model()
        x = m.add_var("x", lb=0, ub=4, vartype=VarType.INTEGER)
        m.add_constr(x >= 2)
        assert m.is_feasible({x: 3.0})
        assert not m.is_feasible({x: 1.0})   # constraint
        assert not m.is_feasible({x: 5.0})   # bound
        assert not m.is_feasible({x: 2.5})   # integrality

    def test_matrix_form(self):
        m = Model()
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10, vartype=VarType.INTEGER)
        m.add_constr(x + 2 * y <= 8)
        m.add_constr(x - y >= 1)
        m.add_constr(1 * x == 4)
        m.maximize(x + y)
        c, a, lo, hi, (lbs, ubs), integrality = m.to_matrix_form()
        assert c.tolist() == [-1, -1]  # negated for maximization
        assert a.shape == (3, 2)
        assert hi[0] == 8 and math.isinf(lo[0])
        assert lo[1] == 1 and math.isinf(hi[1])
        assert lo[2] == hi[2] == 4
        assert integrality.tolist() == [0, 1]
        assert ubs.tolist() == [10, 10]
