"""LP-format writer tests."""

import pytest

from repro.ilp import LinExpr, Model, VarType
from repro.ilp.lpwriter import model_to_lp, write_lp


@pytest.fixture()
def model():
    m = Model("demo")
    x = m.add_var("x[a@0]", vartype=VarType.BINARY)
    y = m.add_var("y", lb=0, ub=7, vartype=VarType.INTEGER)
    z = m.add_var("z", lb=0.5, ub=2.5)
    m.add_constr(x + 2 * y <= 10, name="cap")
    m.add_constr(y - z >= 1)
    m.add_constr(1 * z == 2)
    m.maximize(3 * x + y + 0.5 * z)
    return m


class TestLpFormat:
    def test_sections_present(self, model):
        text = model_to_lp(model)
        for section in ("Maximize", "Subject To", "Bounds", "General",
                        "Binary", "End"):
            assert section in text

    def test_names_sanitized(self, model):
        text = model_to_lp(model)
        assert "x[a@0]" not in text
        assert "x_a_0_" in text

    def test_constraints_rendered(self, model):
        text = model_to_lp(model)
        assert "cap_0: x_a_0_ + 2 y <= 10" in text
        assert "y - z >= 1" in text
        assert "z = 2" in text

    def test_bounds_rendered(self, model):
        text = model_to_lp(model)
        assert "0 <= y <= 7" in text
        assert "0.5 <= z <= 2.5" in text

    def test_minimize_sense(self):
        m = Model()
        x = m.add_var("x", ub=4)
        m.minimize(2 * x)
        assert "Minimize" in model_to_lp(m)

    def test_duplicate_sanitized_names_disambiguated(self):
        m = Model()
        a = m.add_var("v@1")
        b = m.add_var("v#1")
        m.maximize(a + b)
        text = model_to_lp(m)
        assert "v_1" in text and "v_1__1" in text

    def test_write_to_file(self, model, tmp_path):
        path = tmp_path / "model.lp"
        write_lp(model, path)
        assert path.read_text().endswith("End\n")

    def test_layout_model_exports(self, compiled_cms, tmp_path):
        # A real layout ILP serializes without error and is non-trivial.
        from repro.analysis import build_ir, compute_upper_bounds
        from repro.core.layout import LayoutBuilder

        ir = compiled_cms.ir
        builder = LayoutBuilder(
            ir, compiled_cms.bounds, compiled_cms.target
        )
        builder.build()
        text = model_to_lp(builder.layout.model)
        assert text.count("\n") > 50
        assert "mem_0" in text


class TestDeterminism:
    """The LP text doubles as a model fingerprint: two builds of the
    same layout model must serialize byte-identically, regardless of
    construction order or the process hash seed."""

    @staticmethod
    def _layout_lp_text() -> str:
        from repro.core.layout import LayoutBuilder
        from repro.lang import check_program, parse_program
        from repro.analysis import build_ir, compute_upper_bounds
        from repro.pisa import small_target
        from repro.structures import CMS_SOURCE

        target = small_target(stages=8, memory_kb=64)
        info = check_program(parse_program(CMS_SOURCE, "cms"))
        ir = build_ir(info, "Ingress")
        bounds = compute_upper_bounds(ir, target)
        builder = LayoutBuilder(ir, bounds, target)
        builder.build()
        return model_to_lp(builder.layout.model)

    def test_two_builds_byte_identical(self):
        assert self._layout_lp_text() == self._layout_lp_text()

    def test_stable_across_hash_seeds(self, tmp_path):
        # Set-iteration order (frozensets of size symbolics, dict views)
        # varies with PYTHONHASHSEED; the serialized model must not.
        import os
        import subprocess
        import sys

        script = (
            "from tests.ilp.test_lpwriter import TestDeterminism\n"
            "import sys\n"
            "sys.stdout.write(TestDeterminism._layout_lp_text())\n"
        )
        texts = []
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                cwd=os.getcwd(), env=env,
            )
            texts.append(out.stdout)
        assert texts[0] == texts[1]
        assert texts[0] == self._layout_lp_text()